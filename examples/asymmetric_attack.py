#!/usr/bin/env python3
"""§3.3 end-to-end: deanonymise a flow using only TCP ACK observations.

The adversary monitors a destination (it sees the exit→server segment) and
a set of candidate client-side vantage points (it sees client→guard ACK
streams — not the data!).  Several clients are active simultaneously with
different traffic patterns; the attack must pick which client-side ACK
stream matches the monitored server flow.

This is the paper's asymmetric setting: opposite directions at the two
ends, no packet-level correspondence (ACKs are cumulative and delayed),
and it still works.

Run:  python examples/asymmetric_attack.py
"""

import random

from repro.core.asymmetric import FlowMatcher, correlate_segments
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig
from repro.traffic.tcp import TcpConfig


def burst_schedule(rng: random.Random, total: int, duration: float):
    """A random bursty workload summing to ``total`` bytes."""
    n_bursts = rng.randint(4, 8)
    cuts = sorted(rng.random() for _ in range(n_bursts - 1))
    sizes = []
    last = 0.0
    for c in cuts + [1.0]:
        sizes.append(max(1, int(total * (c - last))))
        last = c
    sizes[-1] = total - sum(sizes[:-1])
    times = sorted(rng.uniform(0, duration) for _ in sizes)
    times[0] = 0.0
    return tuple(zip(times, sizes))


def run_flow(seed: int, total: int = 1_500_000) -> "TransferResult":
    rng = random.Random(seed)
    return CircuitTransfer(
        TransferConfig(
            file_size=total,
            writes=burst_schedule(rng, total, duration=10.0),
            server_tcp=TcpConfig(latency=0.02 + rng.random() * 0.04, rate=6e6, seed=seed),
            client_tcp=TcpConfig(latency=0.01 + rng.random() * 0.04, rate=4e6, seed=seed + 1),
            seed=seed,
        )
    ).run()


def main() -> None:
    print("== Simulating 6 concurrent Tor downloads (distinct burst patterns) ==")
    flows = {f"client-{i}": run_flow(seed=100 + i) for i in range(6)}
    for name, flow in flows.items():
        print(f"   {name}: {flow.bytes_delivered/1e6:.1f} MB in {flow.duration:5.1f}s, "
              f"{flow.cells_forwarded} cells")

    target_name = "client-3"
    target_flow = flows[target_name]

    print(f"\n== The adversary monitors {target_name}'s destination ==")
    print("   observation A: exit->server ACK stream (server side)")
    print("   observation B: client->guard ACK streams (all six candidates)")

    # All four direction combinations for the true flow:
    print("\n   direction-combination correlations for the true pair:")
    for pair, r in correlate_segments(target_flow.taps, bin_width=1.0).items():
        print(f"     {pair[0]:15s} vs {pair[1]:15s}: {r:+.3f}")

    # The matching attack: server-side ACKs vs every client's ACK stream.
    matcher = FlowMatcher(bin_width=1.0)
    result = matcher.match(
        target=target_flow.taps.exit_to_server,
        candidates={name: f.taps.client_to_guard for name, f in flows.items()},
    )
    print("\n== Ranking candidate clients against the monitored flow ==")
    for name, score in result.scores:
        marker = "  <-- TRUE MATCH" if name == target_name else ""
        print(f"   {name}: {score:+.3f}{marker}")
    print(f"\n   best match: {result.best} "
          f"(margin over runner-up: {result.margin:.3f})")
    assert result.best == target_name, "the attack failed?!"
    print("   deanonymisation successful using ACK streams alone.")


if __name__ == "__main__":
    main()
