#!/usr/bin/env python3
"""§3.1 end-to-end: guard relays don't protect against AS-level observers.

Compares two clients over a simulated month of BGP churn:

- one with Tor's 2014 default of three guards,
- one with the "one fast guard for 9 months" proposal (fewer guards =
  smaller AS union = less exposure, exactly the trade-off §2/§3.1 discuss).

For each, the script reports the growth of ``x`` (distinct ASes seen on
the client→guard paths, with the 5-minute dwell filter) and the resulting
compromise probability ``1 - (1-f)^x`` for a range of adversary strengths.

Run:  python examples/temporal_exposure.py
"""

import random

from repro import Scenario, ScenarioConfig
from repro.core.anonymity import compromise_probability, guard_amplification
from repro.core.temporal import client_exposure
from repro.tor.client import TorClient

DAY = 86_400.0


def main() -> None:
    scenario = Scenario(ScenarioConfig.small(seed=11))
    consensus = scenario.consensus
    client_asn = scenario.client_ases(1)[0]

    three_guards = TorClient(client_asn, consensus, rng=random.Random(1), num_guards=3)
    one_guard = TorClient(client_asn, consensus, rng=random.Random(2), num_guards=1)

    def prefixes(client):
        return [scenario.tor.relay_prefix[g.fingerprint] for g in client.guards]

    print(f"Client AS{client_asn}")
    print(f"  3-guard set: {[str(p) for p in prefixes(three_guards)]}")
    print(f"  1-guard set: {[str(p) for p in prefixes(one_guard)]}")

    print("\nSimulating one month of BGP dynamics...")
    trace = scenario.run_trace(observer_asns=[client_asn])

    exposures = {
        "3 guards (2014 default)": client_exposure(
            trace, client_asn, prefixes(three_guards), num_samples=31
        ),
        "1 guard  (9-month prop)": client_exposure(
            trace, client_asn, prefixes(one_guard), num_samples=31
        ),
    }

    print("\n== Growth of x = |ASes on client->guard paths| ==")
    print("   day:      " + "".join(f"{d:5d}" for d in (1, 5, 10, 15, 20, 25, 31)))
    for label, exposure in exposures.items():
        row = [exposure.x_over_time[d - 1] for d in (1, 5, 10, 15, 20, 25, 31)]
        print(f"   {label}: " + "".join(f"{x:5d}" for x in row))

    print("\n== P(at least one on-path AS is malicious) after the month ==")
    print("   f:        " + "".join(f"{f:8.2f}" for f in (0.01, 0.02, 0.05, 0.10)))
    for label, exposure in exposures.items():
        x = exposure.final_exposure
        row = [compromise_probability(f, x) for f in (0.01, 0.02, 0.05, 0.10)]
        print(f"   {label}: " + "".join(f"{p:8.2f}" for p in row))

    x3 = exposures["3 guards (2014 default)"].final_exposure
    x1 = exposures["1 guard  (9-month prop)"].final_exposure
    print(f"\nAnalytical guard amplification at x={x1}, f=0.05, l=3: "
          f"{guard_amplification(0.05, x1, 3):.2f}x")
    print(f"Measured exposure ratio (3 guards vs 1): {x3 / max(1, x1):.2f}x")
    print("\nGuards pin the relay, but BGP keeps rotating the ASes underneath —")
    print("the fixed guard set does not bound the AS-level adversary's view.")


if __name__ == "__main__":
    main()
