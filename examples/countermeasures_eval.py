#!/usr/bin/env python3
"""§5 end-to-end: do the proposed countermeasures actually help?

Evaluates the three implementable defences on one world:

1. **Dynamics-aware relay selection** — clients reject circuits whose
   entry- and exit-side segments share an AS (using month-long historical
   AS sets, not just current paths); measures the compromised-circuit rate
   before and after against a fixed adversary.
2. **Control-plane monitoring** — a hijack is injected into collector
   streams; the monitor must flag it (and we count the false alarms the
   paper says are acceptable).
3. **Short-AS-PATH guard preference** — measures how much a stealth
   (community-scoped) hijacker's expected capture drops when clients bias
   guard choice towards short AS paths.

Run:  python examples/countermeasures_eval.py
"""

import random

from repro import Scenario, ScenarioConfig
from repro.bgpsim.attacks import simulate_community_scoped_hijack
from repro.core.countermeasures import PrefixMonitor, dynamics_aware_filter, short_path_guard_weights
from repro.core.surveillance import ObservationMode, SurveillanceModel
from repro.bgpsim.collector import UpdateRecord
from repro.tor.client import TorClient
from repro.tor.consensus import Position
from repro.tor.pathsel import PathConstraints, PathSelector


def main() -> None:
    scenario = Scenario(ScenarioConfig.small(seed=21))
    graph = scenario.graph
    consensus = scenario.consensus
    model = SurveillanceModel(graph)
    rng = random.Random(0)

    clients = scenario.client_ases(8)
    dests = scenario.destination_ases(4)
    # a colluding adversary: one mid-tier transit AS plus a tier-1
    adversaries = {scenario.adversary_as(), 0}
    print(f"Colluding adversary ASes: {sorted(adversaries)}\n")

    # ---- 1. dynamics-aware relay selection -------------------------------
    print("== 1. Dynamics-aware relay selection ==")
    relay_asn = scenario.relay_asn

    def historical_ases(relay, peer_asns):
        """Union of path AS-sets between the relay's AS and peers — the
        'ASes used to reach each destination prefix in the last month'
        that relays would publish (§5)."""
        ases = set()
        for peer in peer_asns:
            view = model.segment_view(peer, relay_asn(relay.fingerprint))
            ases |= view.either
        return frozenset(ases)

    entry_hist = {
        g.fingerprint: historical_ases(g, clients) for g in consensus.guards()
    }
    exit_hist = {
        e.fingerprint: historical_ases(e, dests) for e in consensus.exits()
    }

    def compromised_rate(constraints):
        hits = total = 0
        for client_asn in clients:
            client = TorClient(client_asn, consensus, rng=random.Random(client_asn), constraints=constraints)
            for circuit in client.build_circuits(10):
                dest = rng.choice(dests)
                total += 1
                hits += model.compromised_by(
                    adversaries,
                    client_asn,
                    relay_asn(circuit.guard.fingerprint),
                    relay_asn(circuit.exit.fingerprint),
                    dest,
                    ObservationMode.EITHER,
                )
        return hits / total if total else 0.0

    baseline = compromised_rate(PathConstraints())
    aware = compromised_rate(
        PathConstraints(circuit_filter=dynamics_aware_filter(entry_hist, exit_hist))
    )
    print(f"   compromised-circuit rate, vanilla Tor:        {baseline:6.1%}")
    print(f"   compromised-circuit rate, dynamics-aware:     {aware:6.1%}\n")

    # ---- 2. control-plane monitor ------------------------------------------
    print("== 2. Control-plane hijack monitor (aggressive by design) ==")
    trace = scenario.run_trace()
    monitor = PrefixMonitor({p: trace.prefix_origins[p] for p in trace.tor_prefixes})
    session = trace.collector_sessions[0]
    stream = trace.streams[session]
    target = sorted(stream.prefixes() & trace.tor_prefixes, key=str)[0]
    hijack_record = UpdateRecord(
        stream.records[-1].time + 1.0, target, (session[1], 666_666)
    )
    for record in list(stream) + [hijack_record]:
        monitor.observe(record, session=session)
    caught = target in monitor.suspected_prefixes
    false_alarms = sum(1 for a in monitor.alerts if a.prefix != target)
    print(f"   injected hijack of {target}: detected = {caught}")
    print(f"   alerts on other prefixes over the month: {false_alarms} "
          f"(false positives are acceptable, missed hijacks are not)\n")

    # ---- 3. short-AS-PATH guard preference ------------------------------------
    print("== 3. Short-AS-PATH guard preference vs stealth hijacks ==")
    client_asn = clients[0]
    guards = consensus.guards()
    path_len = lambda g: len(model.path(client_asn, relay_asn(g.fingerprint)) or ()) or None
    spw = short_path_guard_weights(guards, path_len, alpha=2.0)

    def expected_capture(weight_fn):
        """E[stealth hijacker captures the client's route to its guard],
        over the guard-selection distribution."""
        attacker = scenario.adversary_as()
        total_w = sum(weight_fn(g) for g in guards)
        if total_w == 0:
            return 0.0
        exposure = 0.0
        for g in guards:
            w = weight_fn(g) / total_w
            if w == 0:
                continue
            victim = relay_asn(g.fingerprint)
            if victim == attacker:
                continue
            result = simulate_community_scoped_hijack(graph, victim, attacker)
            client_path = model.path(client_asn, victim) or ()
            captured = bool(set(client_path) & (result.capture_set - {attacker}))
            exposure += w * (1.0 if captured else 0.0)
        return exposure

    bw_only = expected_capture(lambda g: consensus.position_weight(g, Position.GUARD))
    combined = expected_capture(
        lambda g: consensus.position_weight(g, Position.GUARD) * spw[g.fingerprint]
    )
    print(f"   P(client's guard route crosses the stealth capture set):")
    print(f"     bandwidth-weighted guards only:       {bw_only:6.2%}")
    print(f"     + short-AS-PATH preference (alpha=2): {combined:6.2%}")
    print("\nShorter paths leave fewer ASes where a scoped bogus route can win.")


if __name__ == "__main__":
    main()
