#!/usr/bin/env python3
"""Quickstart: build a world, run every attack from the paper once.

Builds a small synthetic Internet with a Tor network on top, then walks
through the paper's three findings in ~a minute:

1. §3.1 — BGP temporal dynamics grow the set of ASes that can observe a
   client's traffic to its guards;
2. §3.2 — an AS can hijack or intercept a guard prefix and capture a
   measurable share of the Internet's routes to it;
3. §3.3 — correlating data bytes against TCP-acknowledged bytes works in
   any direction combination.

Run:  python examples/quickstart.py
"""

import random

from repro import Scenario, ScenarioConfig
from repro.bgpsim.attacks import AttackKind, simulate_hijack
from repro.core.anonymity import compromise_probability
from repro.core.asymmetric import correlate_segments
from repro.core.temporal import client_exposure
from repro.tor.client import TorClient
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig


def main() -> None:
    print("== Building a synthetic Internet + Tor network (1/10 scale) ==")
    scenario = Scenario(ScenarioConfig.small(seed=42))
    consensus = scenario.consensus
    print(
        f"   {len(scenario.graph)} ASes, {len(consensus)} relays "
        f"({len(consensus.guards())} guards / {len(consensus.exits())} exits), "
        f"{len(scenario.tor_prefixes)} Tor prefixes"
    )

    # --- a Tor client with three guards --------------------------------
    client_asn = scenario.client_ases(1)[0]
    client = TorClient(client_asn, consensus, rng=random.Random(7))
    guard_prefixes = [
        scenario.tor.relay_prefix[g.fingerprint] for g in client.guards
    ]
    print(f"\n== Client in AS{client_asn}, guards in prefixes: "
          + ", ".join(str(p) for p in guard_prefixes))

    # --- 1. temporal dynamics (§3.1) ------------------------------------
    print("\n== 1. A month of BGP churn, observed from the client's AS ==")
    trace = scenario.run_trace(observer_asns=[client_asn])
    exposure = client_exposure(trace, client_asn, guard_prefixes, num_samples=8)
    for t, x in zip(exposure.sample_times, exposure.x_over_time):
        day = t / 86_400
        p = compromise_probability(0.05, x)
        print(f"   day {day:4.1f}: {x:3d} distinct ASes on client->guard paths"
              f"  -> P(compromise | f=0.05) = {p:.2f}")

    # --- 2. active attacks (§3.2) ----------------------------------------
    print("\n== 2. Hijacking the client's first guard prefix ==")
    attacker = scenario.adversary_as()
    victim_asn = scenario.tor.prefix_origins[guard_prefixes[0]]
    if victim_asn == attacker:
        attacker = scenario.adversary_as(seed=11)
    for kind in (AttackKind.SAME_PREFIX, AttackKind.INTERCEPTION, AttackKind.COMMUNITY_SCOPED):
        result = simulate_hijack(scenario.graph, victim_asn, attacker, kind)
        extra = ""
        if kind is AttackKind.INTERCEPTION:
            extra = f", connection stays alive: {result.interception_feasible}"
        print(f"   {kind.value:26s}: captures {result.capture_fraction:5.1%} of ASes{extra}")

    # --- 3. asymmetric traffic analysis (§3.3) ----------------------------
    print("\n== 3. Download 2 MB through a circuit; correlate all 4 taps ==")
    result = CircuitTransfer(TransferConfig(file_size=2_000_000)).run()
    print(f"   transfer: {result.bytes_delivered/1e6:.1f} MB in {result.duration:.1f}s "
          f"({result.throughput/1000:.0f} KB/s, {result.cells_forwarded} cells)")
    for (side_a, side_b), r in correlate_segments(result.taps, bin_width=0.5).items():
        print(f"   corr[{side_a:15s} vs {side_b:15s}] = {r:+.3f}")
    print("\nAll four direction combinations correlate: observing ACKs is as"
          "\ngood as observing data — asymmetric routing doesn't save you.")


if __name__ == "__main__":
    main()
