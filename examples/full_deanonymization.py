#!/usr/bin/env python3
"""The complete §3.2 attack chain, end to end.

The paper's scenario: an adversary AS watches a monitored destination
(say, a whistleblowing site) and wants the identity of a Tor user
uploading to it.  The kill chain:

1. **Guard inference** — "the adversary can first use existing attacks on
   Tor to infer what guard relay the connection uses": congestion-probe
   the guard candidates and watch the target flow's throughput echo.
2. **Prefix interception** — hijack the inferred guard's prefix with a
   scoped announcement that keeps a working route to the victim, so the
   connection stays alive while the adversary sits on-path.
3. **Asymmetric correlation** — correlate the destination-side flow
   against the client→guard ACK streams now visible at the interception
   point, identifying which captured client is the target.

Run:  python examples/full_deanonymization.py
"""

import random

from repro import Scenario, ScenarioConfig
from repro.bgpsim.attacks import AttackKind, simulate_hijack
from repro.core.asymmetric import FlowMatcher
from repro.core.guard_inference import CongestionProbe
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig
from repro.traffic.fluid import FluidNetwork
from repro.traffic.tcp import TcpConfig


def main() -> None:
    scenario = Scenario(ScenarioConfig.small(seed=8))
    consensus = scenario.consensus
    rng = random.Random(4)

    # The world: a target user whose circuit uses guards[4]; five other
    # users are active through other guards.
    guards = [g for g in consensus.guards() if g.bandwidth > 500][:8]
    true_guard = guards[4]
    print(f"[world] target's guard (unknown to the adversary): "
          f"{true_guard.nickname} @ {true_guard.address}")

    # ---- step 1: congestion-based guard inference -------------------------
    print("\n[1] Congestion-probing the guard candidates...")
    caps = {g.fingerprint: float(g.bandwidth) for g in guards}
    caps.update({"mid": 1e9, "exit": 1e9})
    net = FluidNetwork(caps)
    net.add_circuit("target", [true_guard.fingerprint, "mid", "exit"])
    for i, g in enumerate(guards):
        for j in range(2):
            net.add_circuit(f"bg-{i}-{j}", [g.fingerprint, "mid", "exit"])

    probe = CongestionProbe(net, "target", rng=random.Random(11))
    inference = probe.infer_guard([g.fingerprint for g in guards], probes_per_burst=12)
    inferred = consensus.relay(inference.best)
    print(f"    inferred guard: {inferred.nickname} "
          f"(margin {inference.margin:+.2f}) -> "
          f"{'CORRECT' if inference.best == true_guard.fingerprint else 'WRONG'}")

    # ---- step 2: intercept the guard's prefix ------------------------------
    print("\n[2] Intercepting the inferred guard's prefix...")
    victim_prefix = scenario.tor.relay_prefix[inference.best]
    victim_asn = scenario.tor.prefix_origins[victim_prefix]
    attacker = scenario.adversary_as()
    if attacker == victim_asn:
        attacker = scenario.adversary_as(seed=12)
    result = simulate_hijack(scenario.graph, victim_asn, attacker, AttackKind.INTERCEPTION)
    print(f"    victim prefix {victim_prefix} (AS{victim_asn}), attacker AS{attacker}")
    if result.interception_feasible:
        hops = " -> ".join(f"AS{a}" for a in result.forwarding_path)
        print(f"    interception FEASIBLE: captures {result.capture_fraction:.1%} of ASes")
        print(f"    forwarding path stays clean: {hops}")
    else:
        print("    interception infeasible from this AS; attacker would pick another")

    # ---- step 3: asymmetric correlation at the interception point -----------
    print("\n[3] Correlating the destination flow against captured ACK streams...")
    flows = {}
    for i in range(6):
        frng = random.Random(40 + i)
        n_bursts = frng.randint(4, 7)
        total = 1_500_000
        sizes = [total // n_bursts] * n_bursts
        sizes[-1] += total - sum(sizes)
        times = sorted(frng.uniform(0, 8.0) for _ in sizes)
        times[0] = 0.0
        flows[f"client-{i}"] = CircuitTransfer(
            TransferConfig(
                file_size=total,
                writes=tuple(zip(times, sizes)),
                server_tcp=TcpConfig(latency=0.02 + frng.random() * 0.04, rate=6e6, seed=i),
                client_tcp=TcpConfig(latency=0.01 + frng.random() * 0.04, rate=4e6, seed=i + 30),
            )
        ).run()
    target_name = "client-2"
    matcher = FlowMatcher(bin_width=1.0)
    match = matcher.match(
        flows[target_name].taps.exit_to_server,  # seen at the destination
        {name: f.taps.client_to_guard for name, f in flows.items()},  # seen at the interception
    )
    print("    candidate ranking (destination flow vs captured client ACKs):")
    for name, score in match.scores:
        marker = "  <== deanonymised" if name == target_name and name == match.best else ""
        print(f"      {name}: {score:+.3f}{marker}")

    ok = inference.best == true_guard.fingerprint and match.best == target_name
    print(f"\n[result] full chain {'SUCCEEDED' if ok else 'partially succeeded'}: "
          "guard inferred, prefix intercepted, client identified —")
    print("         all without running a single Tor relay.")


if __name__ == "__main__":
    main()
