#!/usr/bin/env python3
"""§3.2 end-to-end: plan and execute interception attacks on Tor.

Plays the adversary of the paper's "general surveillance" paragraph: rank
the Tor prefixes by how much guard/exit traffic they attract (clients pick
relays proportionally to bandwidth), intercept the top targets, and
measure what share of all Tor circuits can then be correlated end-to-end.

Also demonstrates the anonymity-set attack: a plain (blackholing) hijack
of a guard prefix reveals which client ASes were talking to that guard.

Run:  python examples/interception_attack.py
"""

from repro import Scenario, ScenarioConfig
from repro.bgpsim.attacks import AttackKind
from repro.core.anonymity import anonymity_set_entropy
from repro.core.interception import AttackPlanner
from repro.tor.consensus import Position


def main() -> None:
    scenario = Scenario(ScenarioConfig.small(seed=3))
    planner = AttackPlanner(scenario.graph, scenario.tor)
    attacker = scenario.adversary_as()
    print(f"Adversary: AS{attacker} (mid-tier transit)\n")

    # --- target selection ---------------------------------------------------
    print("== Top interception targets (guard position) ==")
    guard_ranking = planner.rank_targets(Position.GUARD)
    for target in guard_ranking.top(5):
        name = scenario.tor.as_names.get(target.origin_asn, f"AS{target.origin_asn}")
        print(
            f"   {str(target.prefix):20s} origin {name:20s} "
            f"{target.num_relays:3d} relays, "
            f"P(circuit uses it as guard) = {target.selection_probability:.3f}"
        )
    print(f"   -> intercepting the top 10 prefixes covers "
          f"{guard_ranking.coverage(10):.1%} of guard selections\n")

    # --- anonymity-set attack via plain hijack --------------------------------
    print("== Plain hijack of the #1 guard prefix (anonymity set, §3.2) ==")
    target = next(
        t for t in guard_ranking.targets if t.origin_asn != attacker
    )
    clients = scenario.client_ases(30)
    outcome = planner.attack(attacker, target, AttackKind.SAME_PREFIX, clients)
    exposed = sorted(outcome.exposed_client_ases)
    print(f"   victim prefix {target.prefix} (AS{target.origin_asn})")
    print(f"   captured routes from {outcome.hijack.capture_fraction:.1%} of all ASes")
    print(f"   anonymity set: {len(exposed)}/{len(clients)} monitored client ASes exposed")
    if exposed:
        entropy = anonymity_set_entropy([1.0] * len(exposed))
        print(f"   remaining anonymity: {entropy:.1f} bits "
              f"(was {anonymity_set_entropy([1.0] * len(clients)):.1f})")
    print("   ...but the hijack blackholes traffic: connections drop.\n")

    # --- interception: keep connections alive ----------------------------------
    print("== Interception of the same prefix (connection survives) ==")
    inter = planner.attack(attacker, target, AttackKind.INTERCEPTION, clients)
    h = inter.hijack
    if h.interception_feasible:
        print(f"   feasible: YES — forwarding path {' -> '.join(f'AS{a}' for a in h.forwarding_path)}")
        print(f"   announcement scoped to {len(h.announcement_scope)} neighbours")
        print(f"   captures {h.capture_fraction:.1%} of ASes while traffic keeps flowing")
        print("   -> exact deanonymisation via timing analysis is now possible\n")
    else:
        print("   infeasible from this attacker (no clean forwarding path)\n")

    # --- general surveillance sweep ----------------------------------------------
    print("== General surveillance: intercept top-k guard AND exit prefixes ==")
    for k in (1, 5, 10, 20):
        coverage = planner.surveillance_coverage(attacker, guard_k=k, exit_k=k)
        print(
            f"   k={k:2d}: guard side {coverage['guard_coverage']:6.1%}, "
            f"exit side {coverage['exit_coverage']:6.1%}, "
            f"both ends of a random circuit {coverage['circuit_coverage']:6.2%}"
        )
    print("\nA single transit AS, with BGP alone, correlates a meaningful share"
          "\nof all Tor circuits — the paper's core §3.2 claim.")


if __name__ == "__main__":
    main()
