"""Where observability records go.

A sink consumes the JSON-able record dicts a
:class:`~repro.obs.spans.Recorder` emits — span completions, the final
metrics snapshot, the run manifest — and does something terminal with
them.  Three implementations cover every current consumer:

- :class:`NullSink` — drops everything; the default, so library
  instrumentation costs nothing in tests and embedding code;
- :class:`JsonlSink` — one JSON object per line, the ``--obs-out``
  machine-readable artifact;
- :class:`SummarySink` — aggregates spans/metrics in memory and renders a
  human table to a stream (stderr) when closed.
"""

from __future__ import annotations

import io
import json
import sys
from typing import Dict, List, Mapping, Optional, TextIO, Tuple, Union

__all__ = ["Sink", "NullSink", "JsonlSink", "SummarySink"]


class Sink:
    """Record consumer interface (also usable as a no-op base)."""

    def emit(self, record: Mapping[str, object]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; called exactly once by the recorder."""


class NullSink(Sink):
    """Drops every record — the default sink."""

    def emit(self, record: Mapping[str, object]) -> None:
        pass


class JsonlSink(Sink):
    """Append records to a file (or file-like object), one JSON per line."""

    def __init__(self, target: Union[str, TextIO]) -> None:
        if isinstance(target, (str, bytes)):
            self._fh: TextIO = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.records_written = 0

    def emit(self, record: Mapping[str, object]) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.records_written += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()


class SummarySink(Sink):
    """End-of-run human summary: per-span totals, counters, engine gauges."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream
        #: span name -> [count, total seconds]
        self._spans: Dict[str, List[float]] = {}
        self._order: List[str] = []
        self._metrics: Optional[Mapping[str, object]] = None

    def emit(self, record: Mapping[str, object]) -> None:
        kind = record.get("type")
        if kind == "span":
            name = str(record.get("name"))
            entry = self._spans.get(name)
            if entry is None:
                self._spans[name] = [1, float(record.get("duration", 0.0))]
                self._order.append(name)
            else:
                entry[0] += 1
                entry[1] += float(record.get("duration", 0.0))
        elif kind == "metrics":
            self._metrics = record

    def render(self) -> str:
        """The summary table as a string (what :meth:`close` prints)."""
        out = io.StringIO()
        out.write("-- obs summary " + "-" * 49 + "\n")
        if self._spans:
            width = max(len(name) for name in self._spans)
            out.write(f"{'span':<{width}}  {'count':>7}  {'total(s)':>10}\n")
            for name in self._order:
                count, total = self._spans[name]
                out.write(f"{name:<{width}}  {int(count):>7}  {total:>10.3f}\n")
        if self._metrics is not None:
            counters = self._metrics.get("counters") or {}
            gauges = self._metrics.get("gauges") or {}
            hists = self._metrics.get("histograms") or {}
            if counters:
                out.write("counters:\n")
                for name, value in sorted(counters.items()):
                    out.write(f"  {name} = {value}\n")
            if gauges:
                out.write("gauges:\n")
                for name, value in sorted(gauges.items()):
                    if isinstance(value, float):
                        out.write(f"  {name} = {value:.6g}\n")
                    else:
                        out.write(f"  {name} = {value}\n")
            if hists:
                out.write("histograms:\n")
                for name, h in sorted(hists.items()):
                    out.write(
                        f"  {name}: n={h['count']} mean={h['mean']:.4g} "
                        f"min={h['min']:.4g} max={h['max']:.4g}\n"
                    )
        out.write("-" * 64)
        return out.getvalue()

    def close(self) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        print(self.render(), file=stream)
