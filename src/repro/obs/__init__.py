"""repro.obs — structured observability: spans, metrics, sinks, manifest.

Every pipeline in this reproduction reports through this package: the
routing engine's cache counters, the trace engine's per-event reroutes,
scenario construction, the traffic simulators, and the CLI commands all
create **spans** and bump **metrics** against a process-wide
:class:`Recorder`.  Where the records end up is the run driver's choice
of **sinks** — a JSONL file (``--obs-out``), a stderr summary table, or
(the default) nowhere at all, so library code is always instrumented and
never pays for it unless someone is watching.

Instrumenting code uses the module-level helpers::

    from repro import obs

    with obs.span("trace.reroute", kind="te_switch") as sp:
        sp.add("updates", len(emitted))
    obs.add("trace.events.te_switch")        # process-wide counter
    obs.observe("trace.reroute.fanout", n)   # histogram sample

Run drivers install a recorder around the work::

    recorder = obs.Recorder(sinks=[obs.JsonlSink("run.jsonl")])
    previous = obs.set_recorder(recorder)
    try:
        with recorder.span("cli.trace"):
            ...
    finally:
        recorder.finish(obs.RunManifest.collect(command="trace"))
        obs.set_recorder(previous)

The package is dependency-free and imports nothing from the rest of
``repro`` (the manifest looks the package version up lazily), so any
layer may instrument itself without cycles.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.manifest import RunManifest
from repro.obs.metrics import HistogramSummary, MetricsRegistry, MetricsSnapshot
from repro.obs.sinks import JsonlSink, NullSink, Sink, SummarySink
from repro.obs.spans import Recorder, Span

__all__ = [
    "Recorder",
    "Span",
    "Sink",
    "NullSink",
    "JsonlSink",
    "SummarySink",
    "MetricsRegistry",
    "MetricsSnapshot",
    "HistogramSummary",
    "RunManifest",
    "get_recorder",
    "set_recorder",
    "span",
    "add",
    "gauge",
    "observe",
]

#: the always-present fallback recorder: no sinks, records dropped
_default_recorder = Recorder()
_active_recorder: Recorder = _default_recorder


def get_recorder() -> Recorder:
    """The currently installed process-wide recorder."""
    return _active_recorder


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install ``recorder`` (or, with ``None``, the built-in null-sink
    default) as the process-wide recorder; returns the previous one so
    callers can restore it."""
    global _active_recorder
    previous = _active_recorder
    _active_recorder = recorder if recorder is not None else _default_recorder
    return previous


def span(name: str, **attrs: object) -> Span:
    """Open a span on the active recorder (use as a context manager)."""
    return _active_recorder.span(name, **attrs)


def add(name: str, delta: int = 1) -> None:
    """Increment a process-wide counter on the active recorder."""
    _active_recorder.add(name, delta)


def gauge(name: str, value: float) -> None:
    """Set a process-wide gauge on the active recorder."""
    _active_recorder.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the active recorder."""
    _active_recorder.observe(name, value)
