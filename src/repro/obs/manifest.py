"""The run manifest: what produced this pile of results.

A :class:`RunManifest` is the provenance record emitted alongside a run's
outputs — command, arguments, seed/config echo, interpreter and package
versions, and the total wall time.  It travels two ways: as the final
``{"type": "manifest"}`` line of the ``--obs-out`` JSONL, and as a
standalone ``<out>.manifest.json`` sibling file so CI can archive it next
to the span stream.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["RunManifest"]


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one observed run."""

    command: str
    argv: Tuple[str, ...] = ()
    #: echo of the run's effective configuration (seed, scale, flags...)
    params: Mapping[str, object] = field(default_factory=dict)
    started_at: float = 0.0
    wall_seconds: float = 0.0
    python_version: str = ""
    platform: str = ""
    package_version: str = ""

    @classmethod
    def collect(
        cls,
        command: str,
        argv: Sequence[str] = (),
        params: Optional[Mapping[str, object]] = None,
        started_at: Optional[float] = None,
        wall_seconds: float = 0.0,
    ) -> "RunManifest":
        """Build a manifest, filling in environment fields automatically."""
        try:  # lazy: repro imports obs, not the other way around
            from repro import __version__ as package_version
        except Exception:  # pragma: no cover - partial installs
            package_version = "unknown"
        return cls(
            command=command,
            argv=tuple(argv),
            params=dict(params or {}),
            started_at=started_at if started_at is not None else time.time(),
            wall_seconds=wall_seconds,
            python_version=sys.version.split()[0],
            platform=platform.platform(),
            package_version=package_version,
        )

    def to_record(self) -> Dict[str, object]:
        """The JSONL record (also the standalone file's content)."""
        return {
            "type": "manifest",
            "command": self.command,
            "argv": list(self.argv),
            "params": dict(self.params),
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "python_version": self.python_version,
            "platform": self.platform,
            "package_version": self.package_version,
        }

    def write(self, path: str) -> None:
        """Write the manifest as a standalone pretty-printed JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_record(), fh, indent=2, sort_keys=True)
            fh.write("\n")
