"""Hierarchical spans and the recorder that collects them.

A **span** is one timed region of work — ``with span("trace.run"): ...`` —
carrying wall-time, free-form attributes, per-span counters, and a link to
its parent (the span enclosing it on the same thread).  Completed spans
are emitted as JSON-able records to the recorder's sinks, so a run with a
:class:`~repro.obs.sinks.JsonlSink` yields a queryable span *tree* of the
whole pipeline.

The **recorder** owns the span stack (thread-local), the process-wide
:class:`~repro.obs.metrics.MetricsRegistry`, and the sink list.  With no
sinks configured (the default), span records are dropped after updating
the per-name aggregate — instrumentation stays on unconditionally because
its cost is a couple of dict operations per span.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.sinks import Sink

__all__ = ["Span", "Recorder"]


class Span:
    """One timed region; use as a context manager via ``Recorder.span``."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "counters",
        "start_time",
        "duration",
        "status",
        "_recorder",
        "_t0",
    )

    def __init__(
        self,
        recorder: "Recorder",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self.start_time = 0.0
        self.duration = 0.0
        self.status = "ok"
        self._recorder = recorder
        self._t0 = 0.0

    def add(self, key: str, delta: float = 1) -> None:
        """Increment a per-span counter (kept on this span's record only)."""
        self.counters[key] = self.counters.get(key, 0) + delta

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered after the span started."""
        self.attrs.update(attrs)

    def as_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start_time,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.counters:
            record["counters"] = self.counters
        return record

    def __enter__(self) -> "Span":
        self.start_time = time.time()
        self._t0 = time.perf_counter()
        self._recorder._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self._recorder._pop(self)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class Recorder:
    """Span stack + metrics registry + sinks for one observed run."""

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self.sinks: List[Sink] = list(sinks)
        self.metrics = MetricsRegistry()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1
        #: span name -> [count, total seconds] (kept even with no sinks)
        self._span_totals: Dict[str, List[float]] = {}
        self._finished = False

    # -- span plumbing -------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs: object) -> Span:
        """Create (but not start) a child span of the current span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = self.current_span()
        return Span(
            self,
            name,
            span_id,
            parent.span_id if parent is not None else None,
            dict(attrs),
        )

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misnested exit; drop without corrupting
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            entry = self._span_totals.get(span.name)
            if entry is None:
                self._span_totals[span.name] = [1, span.duration]
            else:
                entry[0] += 1
                entry[1] += span.duration
        if self.sinks:
            self.emit(span.as_record())

    # -- metrics shortcuts ---------------------------------------------------

    def add(self, name: str, delta: int = 1) -> None:
        self.metrics.add(name, delta)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregates: ``{name: {"count": n, "seconds": s}}``."""
        with self._lock:
            return {
                name: {"count": int(entry[0]), "seconds": entry[1]}
                for name, entry in self._span_totals.items()
            }

    # -- absorption of external stats ---------------------------------------

    def absorb_engine_stats(self, stats: object, prefix: str = "engine") -> None:
        """Fold a :class:`~repro.asgraph.engine.EngineStats` snapshot into
        the metrics as gauges (duck-typed; no import dependency on the
        engine).  This is what subsumes ``repro.cli --engine-stats``."""
        for attr in (
            "queries",
            "hits",
            "misses",
            "evictions",
            "entries",
            "compute_seconds",
            "batches",
            "parallel_batches",
        ):
            value = getattr(stats, attr, None)
            if value is not None:
                self.metrics.gauge(f"{prefix}.{attr}", value)
        hit_rate = getattr(stats, "hit_rate", None)
        if hit_rate is not None:
            self.metrics.gauge(f"{prefix}.hit_rate", hit_rate)
        stage_seconds = getattr(stats, "stage_seconds", None)
        if stage_seconds:
            for stage, seconds in stage_seconds.items():
                self.metrics.gauge(f"{prefix}.stage_seconds.{stage}", seconds)

    # -- emission ------------------------------------------------------------

    def emit(self, record: Mapping[str, object]) -> None:
        """Send one record to every sink."""
        for sink in self.sinks:
            sink.emit(record)

    def finish(self, manifest: Optional[object] = None) -> MetricsSnapshot:
        """Emit the final metrics snapshot (and manifest), close sinks.

        Idempotent: the second call returns a fresh snapshot but emits
        nothing.  ``manifest`` is anything with a ``to_record()`` method —
        in practice a :class:`~repro.obs.manifest.RunManifest`.
        """
        snapshot = self.metrics.snapshot()
        if self._finished:
            return snapshot
        self._finished = True
        if self.sinks:
            self.emit(snapshot.as_record())
            if manifest is not None:
                self.emit(manifest.to_record())
        for sink in self.sinks:
            sink.close()
        return snapshot
