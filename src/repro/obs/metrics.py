"""Process-wide metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a flat, thread-safe namespace of numeric
instruments.  The library instruments itself through the module-level
helpers in :mod:`repro.obs` (``add``/``gauge``/``observe``), which route to
whatever :class:`~repro.obs.spans.Recorder` is currently installed — a
registry is never global state by itself.

Instrument semantics:

- **counter** — monotone sum of deltas (``engine.queries``,
  ``trace.events.te_switch``);
- **gauge** — last-written value (``engine.entries``, anything absorbed
  from a stats snapshot);
- **histogram** — running ``count/total/min/max`` of observed values
  (``trace.reroute.fanout``).  No buckets: every consumer in this codebase
  wants the moments, and bucket boundaries would be one more config knob.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

__all__ = ["HistogramSummary", "MetricsSnapshot", "MetricsRegistry"]


@dataclass(frozen=True)
class HistogramSummary:
    """Moments of one histogram instrument."""

    count: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time copy of a registry (safe to keep, JSON-friendly)."""

    counters: Mapping[str, int] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, HistogramSummary] = field(default_factory=dict)

    def as_record(self) -> Dict[str, object]:
        """The ``{"type": "metrics", ...}`` JSONL record."""
        return {
            "type": "metrics",
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: summary.as_dict()
                for name, summary in sorted(self.histograms.items())
            },
        }


class MetricsRegistry:
    """Thread-safe flat registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        #: name -> [count, total, min, max]
        self._hists: Dict[str, List[float]] = {}

    def add(self, name: str, delta: int = 1) -> None:
        """Increment counter ``name`` by ``delta``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = [1, value, value, value]
            else:
                hist[0] += 1
                hist[1] += value
                if value < hist[2]:
                    hist[2] = value
                if value > hist[3]:
                    hist[3] = value

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    name: HistogramSummary(
                        count=int(h[0]), total=h[1], min=h[2], max=h[3]
                    )
                    for name, h in self._hists.items()
                },
            )
