"""World persistence: save and reload scenarios and traces.

Reproducibility beyond a seed: a built world (topology, consensus, prefix
ownership) and its generated BGP trace can be written to a directory of
plain-text artefacts and reloaded elsewhere — so measurement pipelines can
be re-run, diffed, or shared without re-simulation.

Layout::

    world/
      MANIFEST.json        # format version + config echo
      topology.as-rel      # CAIDA serial-1 relationships
      consensus.txt        # network-status-like document
      prefixes.txt         # <prefix>|<origin asn>|<tor|bg> per line
      trace/               # optional: one MRT-style file per session
        rrc00-42.updates
        ...
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.analysis.prefixes import Prefix
from repro.asgraph.topology import ASGraph
from repro.bgpsim.collector import SessionId, UpdateStream
from repro.bgpsim.mrt import dumps_stream, loads_stream
from repro.bgpsim.trace import MonthTrace
from repro.tor.consensus import Consensus

__all__ = [
    "save_world",
    "load_world",
    "save_trace",
    "load_trace_streams",
    "LoadedWorld",
]

_FORMAT_VERSION = 1


class LoadedWorld:
    """A reloaded world: the artefacts without the generator state."""

    def __init__(
        self,
        graph: ASGraph,
        consensus: Consensus,
        prefix_origins: Dict[Prefix, int],
        tor_prefixes: frozenset,
        manifest: dict,
    ) -> None:
        self.graph = graph
        self.consensus = consensus
        self.prefix_origins = prefix_origins
        self.tor_prefixes = tor_prefixes
        self.manifest = manifest


def save_world(
    directory: str,
    graph: ASGraph,
    consensus: Consensus,
    prefix_origins: Dict[Prefix, int],
    tor_prefixes,
    extra_manifest: Optional[dict] = None,
) -> None:
    """Write a world to ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "format_version": _FORMAT_VERSION,
        "num_ases": len(graph),
        "num_relays": len(consensus),
        "num_prefixes": len(prefix_origins),
        "num_tor_prefixes": len(tor_prefixes),
    }
    if extra_manifest:
        manifest.update(extra_manifest)
    with open(os.path.join(directory, "MANIFEST.json"), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    with open(os.path.join(directory, "topology.as-rel"), "w") as fh:
        fh.write(graph.to_as_rel())
    with open(os.path.join(directory, "consensus.txt"), "w") as fh:
        fh.write(consensus.to_text())
    tor_set = set(tor_prefixes)
    with open(os.path.join(directory, "prefixes.txt"), "w") as fh:
        for prefix in sorted(prefix_origins, key=lambda p: (p.network, p.length)):
            kind = "tor" if prefix in tor_set else "bg"
            fh.write(f"{prefix}|{prefix_origins[prefix]}|{kind}\n")


def load_world(directory: str) -> LoadedWorld:
    """Reload a world previously written by :func:`save_world`."""
    manifest_path = os.path.join(directory, "MANIFEST.json")
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no MANIFEST.json in {directory}")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported world format version {version}")

    with open(os.path.join(directory, "topology.as-rel")) as fh:
        graph = ASGraph.from_as_rel(fh.read())
    with open(os.path.join(directory, "consensus.txt")) as fh:
        consensus = Consensus.from_text(fh.read())

    prefix_origins: Dict[Prefix, int] = {}
    tor_prefixes = set()
    with open(os.path.join(directory, "prefixes.txt")) as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            fields = line.split("|")
            if len(fields) != 3 or fields[2] not in ("tor", "bg"):
                raise ValueError(f"prefixes.txt line {lineno}: malformed {line!r}")
            prefix = Prefix.parse(fields[0])
            prefix_origins[prefix] = int(fields[1])
            if fields[2] == "tor":
                tor_prefixes.add(prefix)

    # Cross-checks: artefacts must agree with each other.
    for origin in prefix_origins.values():
        if origin not in graph:
            raise ValueError(f"prefix origin AS{origin} missing from topology")

    return LoadedWorld(
        graph=graph,
        consensus=consensus,
        prefix_origins=prefix_origins,
        tor_prefixes=frozenset(tor_prefixes),
        manifest=manifest,
    )


def _session_filename(session: SessionId) -> str:
    collector, peer = session
    return f"{collector}-{peer}.updates"


def save_trace(directory: str, trace: MonthTrace) -> None:
    """Write a trace's collector streams under ``directory/trace/``."""
    trace_dir = os.path.join(directory, "trace")
    os.makedirs(trace_dir, exist_ok=True)
    index: List[str] = []
    for session in trace.collector_sessions:
        filename = _session_filename(session)
        with open(os.path.join(trace_dir, filename), "w") as fh:
            fh.write(dumps_stream(trace.streams[session]))
        index.append(filename)
    with open(os.path.join(trace_dir, "INDEX.json"), "w") as fh:
        json.dump({"duration": trace.duration, "sessions": index}, fh, indent=2)


def load_trace_streams(directory: str) -> Tuple[float, Dict[SessionId, UpdateStream]]:
    """Reload the collector streams; returns (duration, streams)."""
    trace_dir = os.path.join(directory, "trace")
    index_path = os.path.join(trace_dir, "INDEX.json")
    if not os.path.exists(index_path):
        raise FileNotFoundError(f"no trace index in {trace_dir}")
    with open(index_path) as fh:
        index = json.load(fh)
    streams: Dict[SessionId, UpdateStream] = {}
    for filename in index["sessions"]:
        with open(os.path.join(trace_dir, filename)) as fh:
            stream = loads_stream(fh.read())
        streams[stream.session] = stream
    return float(index["duration"]), streams
