"""World persistence: save and reload scenarios, traces, and checkpoints.

Reproducibility beyond a seed: a built world (topology, consensus, prefix
ownership) and its generated BGP trace can be written to a directory of
plain-text artefacts and reloaded elsewhere — so measurement pipelines can
be re-run, diffed, or shared without re-simulation.  Experiment
**checkpoints** (the per-trial JSONL streams written by
:mod:`repro.runner`) use the same module, so a world directory can carry
the sweeps computed over it, listed and version-checked through its
``MANIFEST.json``.

Layout::

    world/
      MANIFEST.json        # format version + config echo + checkpoints{}
      topology.as-rel      # CAIDA serial-1 relationships
      consensus.txt        # network-status-like document
      prefixes.txt         # <prefix>|<origin asn>|<tor|bg> per line
      trace/               # optional: one MRT-style file per session
        rrc00-42.updates
        ...
      resilience.ckpt      # optional: runner checkpoints (any name)

Checkpoint file format (JSONL, ``CHECKPOINT_FORMAT_VERSION = 1``): a
header line ``{"type": "header", "format_version", "experiment", "seed",
"total_trials", "params"}`` followed by one
``{"type": "trial", "id", "index", "seconds", "result"}`` line per
completed trial.  Appends are flushed per trial, so a killed run loses at
most the line being written — and :meth:`CheckpointWriter.resume`
detects and truncates such a half-written trailing line.
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.prefixes import Prefix
from repro.asgraph.topology import ASGraph
from repro.bgpsim.collector import SessionId, UpdateStream
from repro.bgpsim.mrt import RecordStream, iter_records, write_records
from repro.bgpsim.trace import MonthTrace
from repro.tor.consensus import Consensus

__all__ = [
    "save_world",
    "load_world",
    "save_trace",
    "save_trace_stream",
    "load_trace_streams",
    "open_trace_sources",
    "LoadedWorld",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointWriter",
    "read_checkpoint",
    "register_checkpoint",
]

_FORMAT_VERSION = 1

#: format version of runner checkpoint files (bump on breaking changes)
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is malformed, mismatched, or unsupported."""


class CheckpointWriter:
    """Append-only JSONL trial checkpoint (flushed per record).

    Create fresh files with :meth:`create`; continue interrupted sweeps
    with :meth:`resume`, which validates the header against the resuming
    experiment, returns every intact recorded trial, and truncates a
    half-written trailing line before appending.
    """

    def __init__(self, path: str, fh: io.TextIOBase) -> None:
        self.path = path
        self._fh = fh

    @classmethod
    def create(cls, path: str, header: Mapping[str, object]) -> "CheckpointWriter":
        """Start a fresh checkpoint, writing the versioned header line."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        fh = open(path, "w")
        record = {"type": "header", "format_version": CHECKPOINT_FORMAT_VERSION}
        record.update(header)
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        return cls(path, fh)

    @classmethod
    def resume(
        cls, path: str, header: Mapping[str, object]
    ) -> Tuple["CheckpointWriter", List[dict]]:
        """Reopen ``path`` for appending; returns (writer, intact trials).

        The existing header must carry the supported format version and
        match ``header``'s experiment name and seed, or a
        :class:`CheckpointError` explains the mismatch.  A corrupt
        trailing line (the usual kill artefact) is dropped and the file
        truncated to the last intact record; corruption anywhere else is
        an error.
        """
        stored, records, valid_bytes = _scan_checkpoint(path)
        for field in ("experiment", "seed"):
            want, got = header.get(field), stored.get(field)
            if want is not None and got != want:
                raise CheckpointError(
                    f"checkpoint {path}: {field} mismatch — file has "
                    f"{got!r}, resuming experiment has {want!r}"
                )
        fh = open(path, "r+")
        fh.truncate(valid_bytes)
        fh.seek(valid_bytes)
        return cls(path, fh), records

    def append(self, record: Mapping[str, object]) -> None:
        """Write one trial record and flush it to disk."""
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _scan_checkpoint(path: str) -> Tuple[dict, List[dict], int]:
    """Parse a checkpoint: (header, intact trial records, valid bytes).

    Validates the header's format version with a clear error.  The final
    line is allowed to be corrupt (a kill mid-append); it is excluded
    from both the records and the valid-byte count.  A corrupt line
    *followed by intact ones* means real damage and raises.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(f"no checkpoint at {path}")
    with open(path, "rb") as fh:
        raw = fh.read()
    header: Optional[dict] = None
    records: List[dict] = []
    valid_bytes = 0
    offset = 0
    corrupt_at: Optional[int] = None
    for lineno, line in enumerate(raw.split(b"\n"), start=1):
        line_end = offset + len(line) + 1  # include the newline
        stripped = line.strip()
        if stripped:
            try:
                record = json.loads(stripped.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except (ValueError, UnicodeDecodeError):
                if corrupt_at is None:
                    corrupt_at = lineno
                offset = line_end
                continue
            if corrupt_at is not None:
                raise CheckpointError(
                    f"checkpoint {path}: corrupt record at line {corrupt_at} "
                    "followed by intact records — refusing to resume"
                )
            if header is None:
                if record.get("type") != "header":
                    raise CheckpointError(
                        f"checkpoint {path}: first record is not a header"
                    )
                version = record.get("format_version")
                if version != CHECKPOINT_FORMAT_VERSION:
                    raise CheckpointError(
                        f"checkpoint {path}: unsupported format version "
                        f"{version!r} (this build reads version "
                        f"{CHECKPOINT_FORMAT_VERSION})"
                    )
                header = record
            elif record.get("type") == "trial":
                records.append(record)
            valid_bytes = min(line_end, len(raw))
        offset = line_end
    if header is None:
        raise CheckpointError(f"checkpoint {path}: no header record")
    return header, records, valid_bytes


def read_checkpoint(path: str) -> Tuple[dict, List[dict]]:
    """Read a checkpoint: ``(header, intact trial records)``.

    Validates the format version (clear :class:`CheckpointError` on
    mismatch) and tolerates a corrupt trailing line.
    """
    header, records, _valid = _scan_checkpoint(path)
    return header, records


def register_checkpoint(directory: str, filename: str) -> None:
    """Record a checkpoint file in the world directory's ``MANIFEST.json``.

    ``filename`` is relative to ``directory`` and must already exist
    there; its header is read (validating the format version) and echoed
    into ``manifest["checkpoints"][filename]`` so
    :func:`load_world` can verify every listed checkpoint on load.
    """
    manifest_path = os.path.join(directory, "MANIFEST.json")
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no MANIFEST.json in {directory}")
    header, records = read_checkpoint(os.path.join(directory, filename))
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    checkpoints = manifest.setdefault("checkpoints", {})
    checkpoints[filename] = {
        "format_version": header["format_version"],
        "experiment": header.get("experiment"),
        "seed": header.get("seed"),
        "total_trials": header.get("total_trials"),
        "recorded_trials": len(records),
    }
    with open(manifest_path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)


class LoadedWorld:
    """A reloaded world: the artefacts without the generator state."""

    def __init__(
        self,
        graph: ASGraph,
        consensus: Consensus,
        prefix_origins: Dict[Prefix, int],
        tor_prefixes: frozenset,
        manifest: dict,
    ) -> None:
        self.graph = graph
        self.consensus = consensus
        self.prefix_origins = prefix_origins
        self.tor_prefixes = tor_prefixes
        self.manifest = manifest

    @property
    def checkpoints(self) -> Dict[str, dict]:
        """Checkpoint files listed in the manifest: ``{filename: info}``."""
        return dict(self.manifest.get("checkpoints", {}))


def save_world(
    directory: str,
    graph: ASGraph,
    consensus: Consensus,
    prefix_origins: Dict[Prefix, int],
    tor_prefixes,
    extra_manifest: Optional[dict] = None,
) -> None:
    """Write a world to ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "format_version": _FORMAT_VERSION,
        "num_ases": len(graph),
        "num_relays": len(consensus),
        "num_prefixes": len(prefix_origins),
        "num_tor_prefixes": len(tor_prefixes),
    }
    if extra_manifest:
        manifest.update(extra_manifest)
    with open(os.path.join(directory, "MANIFEST.json"), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    with open(os.path.join(directory, "topology.as-rel"), "w") as fh:
        fh.write(graph.to_as_rel())
    with open(os.path.join(directory, "consensus.txt"), "w") as fh:
        fh.write(consensus.to_text())
    tor_set = set(tor_prefixes)
    with open(os.path.join(directory, "prefixes.txt"), "w") as fh:
        for prefix in sorted(prefix_origins, key=lambda p: (p.network, p.length)):
            kind = "tor" if prefix in tor_set else "bg"
            fh.write(f"{prefix}|{prefix_origins[prefix]}|{kind}\n")


def load_world(directory: str) -> LoadedWorld:
    """Reload a world previously written by :func:`save_world`."""
    manifest_path = os.path.join(directory, "MANIFEST.json")
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no MANIFEST.json in {directory}")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported world format version {version}")

    with open(os.path.join(directory, "topology.as-rel")) as fh:
        graph = ASGraph.from_as_rel(fh.read())
    with open(os.path.join(directory, "consensus.txt")) as fh:
        consensus = Consensus.from_text(fh.read())

    prefix_origins: Dict[Prefix, int] = {}
    tor_prefixes = set()
    with open(os.path.join(directory, "prefixes.txt")) as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            fields = line.split("|")
            if len(fields) != 3 or fields[2] not in ("tor", "bg"):
                raise ValueError(f"prefixes.txt line {lineno}: malformed {line!r}")
            prefix = Prefix.parse(fields[0])
            prefix_origins[prefix] = int(fields[1])
            if fields[2] == "tor":
                tor_prefixes.add(prefix)

    # Cross-checks: artefacts must agree with each other.
    for origin in prefix_origins.values():
        if origin not in graph:
            raise ValueError(f"prefix origin AS{origin} missing from topology")

    # Checkpoints listed in the manifest must exist and carry a format
    # version this build can read.
    for filename, info in manifest.get("checkpoints", {}).items():
        ckpt_version = info.get("format_version")
        if ckpt_version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"world checkpoint {filename!r}: unsupported checkpoint "
                f"format version {ckpt_version!r} (this build reads version "
                f"{CHECKPOINT_FORMAT_VERSION})"
            )
        if not os.path.exists(os.path.join(directory, filename)):
            raise FileNotFoundError(
                f"manifest lists checkpoint {filename!r} but it is missing "
                f"from {directory}"
            )

    return LoadedWorld(
        graph=graph,
        consensus=consensus,
        prefix_origins=prefix_origins,
        tor_prefixes=frozenset(tor_prefixes),
        manifest=manifest,
    )


def _session_filename(session: SessionId) -> str:
    collector, peer = session
    return f"{collector}-{peer}.updates"


def save_trace(directory: str, trace: MonthTrace) -> None:
    """Write a trace's collector streams under ``directory/trace/``.

    Each session file is written record-by-record through the streaming
    codec (:func:`repro.bgpsim.mrt.write_records`), so only the directory
    index is ever held beyond one record.
    """
    trace_dir = os.path.join(directory, "trace")
    os.makedirs(trace_dir, exist_ok=True)
    index: List[str] = []
    for session in trace.collector_sessions:
        filename = _session_filename(session)
        with open(os.path.join(trace_dir, filename), "w") as fh:
            write_records(fh, session, trace.streams[session])
        index.append(filename)
    with open(os.path.join(trace_dir, "INDEX.json"), "w") as fh:
        json.dump({"duration": trace.duration, "sessions": index}, fh, indent=2)


def save_trace_stream(directory: str, stream) -> Dict[SessionId, int]:
    """Demultiplex a live event stream into per-session trace files.

    ``stream`` is any iterable of
    :class:`~repro.bgpsim.collector.StreamEvent` with
    ``collector_sessions`` and ``duration`` attributes (a
    :class:`~repro.bgpsim.trace.TraceStream`).  One file per collector
    session is kept open and appended as events arrive, so a year-scale
    trace persists in one pass without ever being materialized.  Returns
    the per-session record counts.
    """
    trace_dir = os.path.join(directory, "trace")
    os.makedirs(trace_dir, exist_ok=True)
    from repro.bgpsim.mrt import encode_record, format_header

    sessions = list(stream.collector_sessions)
    handles = {}
    counts: Dict[SessionId, int] = {s: 0 for s in sessions}
    index: List[str] = []
    try:
        for session in sessions:
            filename = _session_filename(session)
            fh = open(os.path.join(trace_dir, filename), "w")
            fh.write(format_header(session) + "\n")
            handles[session] = fh
            index.append(filename)
        for event in stream:
            fh = handles.get(event.session)
            if fh is None:  # observer sessions are analysis-only
                continue
            fh.write(encode_record(event.record) + "\n")
            counts[event.session] += 1
    finally:
        for fh in handles.values():
            fh.close()
    with open(os.path.join(trace_dir, "INDEX.json"), "w") as fh:
        json.dump({"duration": stream.duration, "sessions": index}, fh, indent=2)
    return counts


def _read_trace_index(trace_dir: str) -> dict:
    index_path = os.path.join(trace_dir, "INDEX.json")
    if not os.path.exists(index_path):
        raise FileNotFoundError(f"no trace index in {trace_dir}")
    with open(index_path) as fh:
        return json.load(fh)


def load_trace_streams(directory: str) -> Tuple[float, Dict[SessionId, UpdateStream]]:
    """Reload the collector streams; returns (duration, streams)."""
    trace_dir = os.path.join(directory, "trace")
    index = _read_trace_index(trace_dir)
    streams: Dict[SessionId, UpdateStream] = {}
    for filename in index["sessions"]:
        with open(os.path.join(trace_dir, filename)) as fh:
            source = iter_records(fh)
            streams[source.session] = UpdateStream(source.session, list(source))
    return float(index["duration"]), streams


def open_trace_sources(
    directory: str, *, tolerate_torn_tail: bool = False
) -> Tuple[float, List[RecordStream]]:
    """Open the saved collector streams lazily; returns (duration, sources).

    Each source is a :class:`~repro.bgpsim.mrt.RecordStream` (session
    header parsed, records unread) ready to be fed into
    :func:`~repro.bgpsim.collector.merge_sources` or the replay driver —
    no stream is materialized.  The underlying file handles close when
    each source is drained or garbage-collected.
    """
    trace_dir = os.path.join(directory, "trace")
    index = _read_trace_index(trace_dir)
    sources = [
        iter_records(
            open(os.path.join(trace_dir, filename)),
            tolerate_torn_tail=tolerate_torn_tail,
        )
        for filename in index["sessions"]
    ]
    return float(index["duration"]), sources
