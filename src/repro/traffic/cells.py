"""Tor cell framing and SENDME-style end-to-end flow control.

Tor moves data in fixed 512-byte cells (498 payload bytes after headers)
and paces each stream with a window: the exit may have at most
``window`` unacknowledged cells in flight towards the client; the client
returns a SENDME control cell every ``increment`` delivered cells, each
crediting the window by ``increment``.  This is the mechanism that couples
the server→exit TCP rate to the client-side delivery rate — and therefore
why all four curves of Figure 2 (right) track each other.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CELL_SIZE", "CELL_PAYLOAD", "StreamWindow"]

#: on-the-wire size of one Tor cell
CELL_SIZE = 512
#: application payload carried per RELAY_DATA cell
CELL_PAYLOAD = 498


class StreamWindow:
    """The exit-side packaging window plus the client-side SENDME counter."""

    def __init__(self, window: int = 500, increment: int = 50) -> None:
        if window <= 0 or increment <= 0:
            raise ValueError("window and increment must be positive")
        if increment > window:
            raise ValueError("increment cannot exceed the initial window")
        self.initial = window
        self.increment = increment
        self._available = window
        self._delivered_since_sendme = 0
        self.sendmes_sent = 0
        self.cells_packaged = 0
        self.cells_delivered = 0

    # -- exit side -----------------------------------------------------------

    @property
    def available(self) -> int:
        """How many more cells may be packaged right now."""
        return self._available

    def can_package(self) -> bool:
        return self._available > 0

    def package(self) -> None:
        """Consume one window slot (exit packaged one cell)."""
        if self._available <= 0:
            raise RuntimeError("packaging beyond the stream window")
        self._available -= 1
        self.cells_packaged += 1

    def on_sendme(self) -> None:
        """A SENDME arrived back at the exit: credit the window."""
        self._available += self.increment
        if self._available > self.initial:
            raise RuntimeError("window credited beyond its initial size")

    # -- client side -----------------------------------------------------------

    def deliver(self) -> bool:
        """Record one delivered cell; True if a SENDME must be sent now."""
        self.cells_delivered += 1
        self._delivered_since_sendme += 1
        if self._delivered_since_sendme >= self.increment:
            self._delivered_since_sendme -= self.increment
            self.sendmes_sent += 1
            return True
        return False
