"""Packet captures: the tcpdump + TCP-header-inspection pipeline of §4.

The paper's experiment records, at each end, both traffic directions and
derives "the number of MBs sent or acknowledged (computed by inspecting TCP
headers)".  A :class:`PacketCapture` is exactly that derived view: a
monotone step function of cumulative bytes over time — bytes *sent* when
tapping a data direction (TCP sequence numbers), bytes *acknowledged* when
tapping an ACK direction (TCP acknowledgement numbers).  Cumulative ACKs
are handled naturally: the capture records the running maximum, so a single
ACK covering many segments advances the curve exactly as real TCP does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["PacketCapture", "SegmentTaps"]


class PacketCapture:
    """Cumulative-bytes-over-time series for one tapped direction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._points: List[Tuple[float, int]] = []

    def observe_total(self, time: float, total_bytes: int) -> None:
        """Record that the cumulative byte count reached ``total_bytes``.

        Out-of-order or duplicate observations (retransmissions, reordered
        ACKs) are absorbed by keeping the running maximum — the same thing
        inspecting sequence/ack numbers in a pcap does.
        """
        if self._points and time < self._points[-1][0]:
            raise ValueError(f"capture {self.name}: time went backwards")
        best = max(total_bytes, self._points[-1][1]) if self._points else max(0, total_bytes)
        if self._points and self._points[-1][1] == best:
            return
        self._points.append((time, best))

    def observe_delta(self, time: float, nbytes: int) -> None:
        """Record ``nbytes`` new bytes at ``time`` (data-direction tap)."""
        current = self._points[-1][1] if self._points else 0
        self.observe_total(time, current + nbytes)

    # -- queries -----------------------------------------------------------

    @property
    def points(self) -> Sequence[Tuple[float, int]]:
        return self._points

    @property
    def total_bytes(self) -> int:
        return self._points[-1][1] if self._points else 0

    @property
    def duration(self) -> float:
        return self._points[-1][0] if self._points else 0.0

    def cumulative_at(self, time: float) -> int:
        """The cumulative byte count at virtual time ``time``."""
        result = 0
        for t, total in self._points:
            if t > time:
                break
            result = total
        return result

    def binned(self, bin_width: float, duration: Optional[float] = None) -> List[int]:
        """Per-bin byte increments on a regular grid (correlation input)."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        end = duration if duration is not None else self.duration
        if end <= 0:
            return []
        num_bins = int(end / bin_width) + 1
        edges_totals: List[int] = []
        idx = 0
        current = 0
        for b in range(1, num_bins + 1):
            edge = b * bin_width
            while idx < len(self._points) and self._points[idx][0] <= edge:
                current = self._points[idx][1]
                idx += 1
            edges_totals.append(current)
        increments = [edges_totals[0]]
        for prev, cur in zip(edges_totals, edges_totals[1:]):
            increments.append(cur - prev)
        return increments

    def curve(self) -> Tuple[List[float], List[float]]:
        """(times, megabytes) for plotting Figure 2 (right)."""
        times = [t for t, _total in self._points]
        mbs = [total / 1e6 for _t, total in self._points]
        return times, mbs


@dataclass
class SegmentTaps:
    """The four vantage points of Figure 2 (right).

    Names follow the figure legend: data flows server → exit → (circuit) →
    guard → client; ACKs flow the opposite way on each TCP connection.
    """

    server_to_exit: PacketCapture = field(default_factory=lambda: PacketCapture("server to exit"))
    exit_to_server: PacketCapture = field(default_factory=lambda: PacketCapture("exit to server"))
    guard_to_client: PacketCapture = field(default_factory=lambda: PacketCapture("guard to client"))
    client_to_guard: PacketCapture = field(default_factory=lambda: PacketCapture("client to guard"))

    def all(self) -> List[PacketCapture]:
        return [
            self.guard_to_client,
            self.client_to_guard,
            self.server_to_exit,
            self.exit_to_server,
        ]
