"""Data-plane substrate: discrete-event TCP and Tor circuit traffic.

Reproduces the wide-area experiment of §4 ("Asymmetric traffic analysis is
feasible"): a client downloads a large file from a web server through a
three-hop Tor circuit; packet captures at the four observable segments —
server→exit data, exit→server ACKs, guard→client data, client→guard ACKs —
yield near-identical cumulative byte curves over time (Figure 2, right).
"""

from repro.traffic.eventloop import EventLoop
from repro.traffic.tcp import TcpConfig, TcpConnection
from repro.traffic.cells import CELL_SIZE, CELL_PAYLOAD, StreamWindow
from repro.traffic.capture import PacketCapture, SegmentTaps
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig, TransferResult
from repro.traffic.fluid import FluidNetwork, max_min_rates

__all__ = [
    "EventLoop",
    "TcpConfig",
    "TcpConnection",
    "CELL_SIZE",
    "CELL_PAYLOAD",
    "StreamWindow",
    "PacketCapture",
    "SegmentTaps",
    "CircuitTransfer",
    "TransferConfig",
    "TransferResult",
    "FluidNetwork",
    "max_min_rates",
]
