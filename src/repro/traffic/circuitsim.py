"""End-to-end simulation of a file transfer through a Tor circuit.

Reproduces §4's wide-area experiment: a client downloads a file from a web
server over a three-hop circuit.  The pieces and their couplings:

- **server → exit**: a real TCP connection (:class:`TcpConnection`).  The
  exit only reads from it while the circuit's SENDME window has room, so
  TCP receive-window backpressure throttles the server to the circuit rate.
- **exit → middle → guard**: relay links with finite bandwidth and
  propagation delay carrying 512-byte cells (batched per transmission
  opportunity, as cells ride TLS records in practice).
- **guard → client**: a second TCP connection carrying the reassembled
  stream.
- **client → exit**: SENDME credits flowing back up the circuit.

Four capture taps record exactly what tcpdump at the endpoints gave the
authors: data bytes by sequence number and acknowledged bytes by ACK
number, at both ends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import obs
from repro.traffic.capture import SegmentTaps
from repro.traffic.cells import CELL_PAYLOAD, CELL_SIZE, StreamWindow
from repro.traffic.eventloop import EventLoop
from repro.traffic.tcp import TcpConfig, TcpConnection

__all__ = ["TransferConfig", "TransferResult", "CircuitTransfer", "RelayLink"]


@dataclass(frozen=True)
class TransferConfig:
    """Parameters of one simulated download.

    ``writes`` is the server's application behaviour: a sequence of
    ``(time, nbytes)`` bursts.  The default is one bulk write at t=0 — the
    paper's large-file download; decoy flows in the correlation
    experiments use randomized burst schedules instead.
    """

    file_size: int = 5_000_000
    writes: Optional[Tuple[Tuple[float, int], ...]] = None
    #: server↔exit TCP parameters
    server_tcp: TcpConfig = TcpConfig(latency=0.03, rate=6_250_000.0, seed=1)
    #: guard↔client TCP parameters
    client_tcp: TcpConfig = TcpConfig(latency=0.02, rate=3_750_000.0, seed=2)
    #: relay-to-relay bandwidths, bytes/second (exit->middle, middle->guard)
    relay_rates: Tuple[float, float] = (2_500_000.0, 2_500_000.0)
    #: relay-to-relay one-way latencies, seconds
    relay_latencies: Tuple[float, float] = (0.03, 0.03)
    stream_window: int = 500
    sendme_increment: int = 50
    seed: int = 0

    def __post_init__(self) -> None:
        if self.file_size <= 0:
            raise ValueError("file_size must be positive")
        if len(self.relay_rates) != 2 or len(self.relay_latencies) != 2:
            raise ValueError("need exactly two inter-relay links")
        if any(r <= 0 for r in self.relay_rates) or any(l < 0 for l in self.relay_latencies):
            raise ValueError("relay rates must be positive, latencies non-negative")

    def effective_writes(self) -> Tuple[Tuple[float, int], ...]:
        if self.writes is not None:
            total = sum(n for _t, n in self.writes)
            if total != self.file_size:
                raise ValueError(
                    f"writes total {total} != file_size {self.file_size}"
                )
            return self.writes
        return ((0.0, self.file_size),)


@dataclass
class TransferResult:
    """Everything observable after the download completes."""

    taps: SegmentTaps
    duration: float
    bytes_delivered: int
    completed: bool
    cells_forwarded: int
    sendmes: int
    server_retransmissions: int
    client_retransmissions: int

    @property
    def throughput(self) -> float:
        """Delivered application bytes per second."""
        return self.bytes_delivered / self.duration if self.duration > 0 else 0.0


class RelayLink:
    """A relay-to-relay link: finite rate, fixed delay, FIFO."""

    def __init__(self, loop: EventLoop, rate: float, latency: float) -> None:
        self.loop = loop
        self.rate = rate
        self.latency = latency
        self._busy = 0.0
        self.bytes_carried = 0

    def send(self, nbytes: int, deliver) -> None:
        """Transmit ``nbytes``; call ``deliver()`` on arrival."""
        depart = max(self.loop.now, self._busy) + nbytes / self.rate
        self._busy = depart
        self.bytes_carried += nbytes
        self.loop.schedule_at(depart + self.latency, deliver)


class CircuitTransfer:
    """One download through a circuit; create, then :meth:`run`."""

    def __init__(self, config: TransferConfig = TransferConfig(), loop: Optional[EventLoop] = None) -> None:
        self.config = config
        self.loop = loop if loop is not None else EventLoop()
        self.taps = SegmentTaps()
        self._window = StreamWindow(config.stream_window, config.sendme_increment)

        cfg = config
        self._exit_middle = RelayLink(self.loop, cfg.relay_rates[0], cfg.relay_latencies[0])
        self._middle_guard = RelayLink(self.loop, cfg.relay_rates[1], cfg.relay_latencies[1])

        self.server_conn = TcpConnection(
            self.loop,
            cfg.server_tcp,
            name="server-exit",
            on_readable=lambda _conn: self._exit_drain(),
            on_data_sent=self.taps.server_to_exit.observe_total,
            on_ack_sent=self.taps.exit_to_server.observe_total,
        )
        self.client_conn = TcpConnection(
            self.loop,
            cfg.client_tcp,
            name="guard-client",
            on_readable=lambda conn: self._client_consume(conn),
            on_data_sent=self.taps.guard_to_client.observe_total,
            on_ack_sent=self.taps.client_to_guard.observe_total,
        )

        self._stream_bytes_packaged = 0  # application bytes framed into cells
        self._bytes_delivered = 0
        self._cell_remainder = 0  # payload bytes of a partially-filled cell
        self._file_done_at: Optional[float] = None
        self._server_written = 0

        for at, nbytes in cfg.effective_writes():
            self.loop.schedule_at(at, lambda n=nbytes: self._server_write(n))

    # -- pipeline stages --------------------------------------------------------

    def _server_write(self, nbytes: int) -> None:
        self.server_conn.write(nbytes)
        self._server_written += nbytes
        if self._server_written >= self.config.file_size:
            self.server_conn.close_writer()

    def _exit_drain(self) -> None:
        """Exit pulls from the server TCP while the circuit window allows.

        Cells are only packaged full, except for the stream's final
        partial cell — otherwise the exit's cell count and the client's
        SENDME accounting would drift apart and stall the window.
        """
        while self._window.can_package() and self.server_conn.readable > 0:
            if self.server_conn.readable < CELL_PAYLOAD and not self._stream_tail_ready():
                break
            payload = self.server_conn.read(CELL_PAYLOAD)
            if payload <= 0:
                break
            self._window.package()
            self._stream_bytes_packaged += payload
            # One cell on the wire; batching happens at the link via FIFO.
            self._exit_middle.send(
                CELL_SIZE,
                lambda p=payload: self._middle_guard.send(
                    CELL_SIZE, lambda p2=p: self._guard_deliver(p2)
                ),
            )

    def _stream_tail_ready(self) -> bool:
        """True when the bytes left in the server TCP are the stream's end."""
        return (
            self.server_conn.writer_closed
            and self.server_conn.rcv_nxt >= self.server_conn.bytes_written
        )

    def _guard_deliver(self, payload: int) -> None:
        """Guard reassembles the stream and sends it down its client TCP."""
        self.client_conn.write(payload)
        if (
            self.server_conn.finished
            and self._stream_bytes_packaged >= self.config.file_size
            and self._stream_bytes_packaged == self._client_written()
        ):
            self.client_conn.close_writer()

    def _client_written(self) -> int:
        return self.client_conn._app_bytes  # noqa: SLF001 - same-module coupling

    def _client_consume(self, conn: TcpConnection) -> None:
        """Client drains its TCP and credits the circuit with SENDMEs."""
        got = conn.read()
        self._bytes_delivered += got
        self._cell_remainder += got
        while self._cell_remainder >= CELL_PAYLOAD:
            self._cell_remainder -= CELL_PAYLOAD
            if self._window.deliver():
                self._send_sendme()
        if self._bytes_delivered >= self.config.file_size and self._file_done_at is None:
            # The tail may be a partial cell; account for it.
            if self._cell_remainder > 0:
                self._cell_remainder = 0
                if self._window.deliver():
                    self._send_sendme()
            self._file_done_at = self.loop.now

    def _send_sendme(self) -> None:
        """SENDME travels client→guard→middle→exit (control path)."""
        up_delay = (
            self.config.client_tcp.latency
            + self.config.relay_latencies[1]
            + self.config.relay_latencies[0]
            + 3 * CELL_SIZE / min(self.config.relay_rates)
        )
        self.loop.schedule(up_delay, self._on_sendme_at_exit)

    def _on_sendme_at_exit(self) -> None:
        self._window.on_sendme()
        self._exit_drain()

    # -- execution ------------------------------------------------------------------

    def run(self, timeout: float = 3600.0) -> TransferResult:
        """Run to completion (or ``timeout`` seconds of virtual time)."""
        with obs.span("transfer.run", file_size=self.config.file_size) as run_span:
            self.loop.run(until=timeout)
            completed = self._bytes_delivered >= self.config.file_size
            duration = self._file_done_at if self._file_done_at is not None else self.loop.now
            run_span.set(
                completed=completed,
                virtual_seconds=duration,
                cells=self._window.cells_packaged,
            )
            obs.add("transfer.cells_forwarded", self._window.cells_packaged)
            obs.add("transfer.sendmes", self._window.sendmes_sent)
            obs.add("transfer.bytes_delivered", self._bytes_delivered)
        return TransferResult(
            taps=self.taps,
            duration=duration,
            bytes_delivered=self._bytes_delivered,
            completed=completed,
            cells_forwarded=self._window.cells_packaged,
            sendmes=self._window.sendmes_sent,
            server_retransmissions=self.server_conn.retransmissions,
            client_retransmissions=self.client_conn.retransmissions,
        )
