"""Fluid model of relay bandwidth sharing (max-min fairness).

The packet-level simulator (:mod:`repro.traffic.circuitsim`) models one
circuit in depth; congestion-style attacks instead need *many* circuits
coarsely: what throughput does each circuit get when relays' capacities
are shared?  The classic answer is max-min fairness via progressive
filling: repeatedly find the most-loaded relay, freeze the rates of the
circuits it bottlenecks, and continue with the residual capacity.

This is the substrate for the Murdoch-Danezis-style congestion attack in
:mod:`repro.core.guard_inference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Set, Tuple

__all__ = ["FluidNetwork", "max_min_rates"]


def max_min_rates(
    circuits: Mapping[str, Sequence[str]],
    capacities: Mapping[str, float],
) -> Dict[str, float]:
    """Max-min fair rates for circuits sharing relay capacities.

    Parameters
    ----------
    circuits:
        circuit id -> relays it traverses (each relay's capacity is shared
        by every circuit through it).
    capacities:
        relay id -> capacity in bytes/second.

    Progressive filling: the relay with the smallest equal-share fixes the
    rate of every circuit through it; its capacity is consumed, those
    circuits leave the pool, repeat.
    """
    for cid, relays in circuits.items():
        if not relays:
            raise ValueError(f"circuit {cid} traverses no relays")
        for relay in relays:
            if relay not in capacities:
                raise ValueError(f"circuit {cid} uses unknown relay {relay}")
    for relay, cap in capacities.items():
        if cap <= 0:
            raise ValueError(f"relay {relay} has non-positive capacity")

    remaining: Dict[str, float] = dict(capacities)
    unassigned: Set[str] = set(circuits)
    through: Dict[str, Set[str]] = {}
    for cid, relays in circuits.items():
        for relay in set(relays):
            through.setdefault(relay, set()).add(cid)

    rates: Dict[str, float] = {}
    while unassigned:
        # Equal share at each relay still carrying unassigned circuits.
        best_relay: Optional[str] = None
        best_share = float("inf")
        for relay, members in through.items():
            active = members & unassigned
            if not active:
                continue
            share = remaining[relay] / len(active)
            if share < best_share:
                best_share = share
                best_relay = relay
        assert best_relay is not None
        frozen = through[best_relay] & unassigned
        for cid in frozen:
            rates[cid] = best_share
            unassigned.discard(cid)
            for relay in set(circuits[cid]):
                remaining[relay] = max(0.0, remaining[relay] - best_share)
    return rates


class FluidNetwork:
    """A mutable population of circuits over shared relays."""

    def __init__(self, capacities: Mapping[str, float]) -> None:
        for relay, cap in capacities.items():
            if cap <= 0:
                raise ValueError(f"relay {relay} has non-positive capacity")
        self._capacities: Dict[str, float] = dict(capacities)
        self._circuits: Dict[str, Tuple[str, ...]] = {}

    @property
    def circuits(self) -> Mapping[str, Tuple[str, ...]]:
        return dict(self._circuits)

    def add_circuit(self, cid: str, relays: Sequence[str]) -> None:
        if cid in self._circuits:
            raise ValueError(f"duplicate circuit id {cid}")
        for relay in relays:
            if relay not in self._capacities:
                raise ValueError(f"unknown relay {relay}")
        if not relays:
            raise ValueError("circuit must traverse at least one relay")
        self._circuits[cid] = tuple(relays)

    def remove_circuit(self, cid: str) -> None:
        if cid not in self._circuits:
            raise KeyError(f"no circuit {cid}")
        del self._circuits[cid]

    def rates(self) -> Dict[str, float]:
        """Current max-min fair rate of every circuit."""
        if not self._circuits:
            return {}
        return max_min_rates(self._circuits, self._capacities)

    def rate_of(self, cid: str) -> float:
        rate = self.rates().get(cid)
        if rate is None:
            raise KeyError(f"no circuit {cid}")
        return rate
