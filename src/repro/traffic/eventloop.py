"""A minimal discrete-event loop for the traffic simulations."""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["EventLoop"]


class EventLoop:
    """Priority-queue scheduler with virtual time.

    Callbacks run in (time, insertion-order); there is no real-time
    component — ``run()`` drains the queue as fast as Python allows.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._cancelled: set = set()

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` after ``delay`` seconds; returns a handle."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        handle = self._seq
        heapq.heappush(self._queue, (self.now + delay, handle, callback))
        self._seq += 1
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled callback (no-op if it already ran)."""
        self._cancelled.add(handle)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> int:
        """Process events; returns the number executed.

        Stops when the queue is empty, virtual time passes ``until``, or
        ``max_events`` fire (a runaway-simulation backstop).
        """
        executed = 0
        while self._queue and executed < max_events:
            time, handle, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self.now = time
            callback()
            executed += 1
        if until is not None and (not self._queue or self._queue[0][0] > until):
            self.now = max(self.now, until)
        return executed

    @property
    def pending(self) -> int:
        return len(self._queue) - len(self._cancelled)
