"""A discrete-event TCP connection (byte-counting, unidirectional data).

Models what the paper's traffic analysis depends on, faithfully enough for
its correlation pipeline to face the real difficulties:

- **slow start and AIMD congestion avoidance** with fast retransmit and
  timeouts, so byte curves have realistic ramp-up and loss scars;
- **cumulative (and delayed) acknowledgements** — the paper stresses that
  "TCP acknowledgements are cumulative, and there is not a one-to-one
  correspondence between packets seen at both ends", which is exactly why
  its correlator works on *byte counts over time* rather than packets;
- **receive-window flow control**, so a slow consumer (a congested Tor
  circuit) back-pressures the sender — the mechanism that makes the
  server→exit curve track the circuit's delivery rate;
- a bottleneck link with serialization, propagation delay and random loss.

Only byte counts travel through the simulation (no payloads), and data
flows one way per connection — matching the download experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.traffic.eventloop import EventLoop

__all__ = ["TcpConfig", "TcpConnection"]


@dataclass(frozen=True)
class TcpConfig:
    """Link and protocol parameters for one connection."""

    mss: int = 1460
    init_cwnd_segments: int = 10
    rcv_buffer: int = 256 * 1024
    #: one-way propagation delay, seconds
    latency: float = 0.04
    #: bottleneck rate, bytes/second
    rate: float = 12_500_000.0
    loss_prob: float = 0.0
    delayed_ack_timeout: float = 0.04
    rto_min: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mss <= 0 or self.rcv_buffer < self.mss:
            raise ValueError("mss must be positive and fit the receive buffer")
        if self.latency < 0 or self.rate <= 0:
            raise ValueError("latency must be >= 0 and rate > 0")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")


class TcpConnection:
    """One sender→receiver TCP connection on a shared event loop.

    The application on the sender side calls :meth:`write`; the application
    on the receiver side is notified via ``on_readable`` and must call
    :meth:`read` to drain (unread bytes shrink the advertised window —
    that's the backpressure path).

    Observation hooks (for capture taps): ``on_data_sent`` /
    ``on_data_arrived`` fire with ``(time, seq_end_bytes)``;
    ``on_ack_sent`` / ``on_ack_arrived`` fire with ``(time, ack_bytes)``.
    """

    def __init__(
        self,
        loop: EventLoop,
        config: TcpConfig = TcpConfig(),
        name: str = "tcp",
        on_readable: Optional[Callable[["TcpConnection"], None]] = None,
        on_data_sent: Optional[Callable[[float, int], None]] = None,
        on_data_arrived: Optional[Callable[[float, int], None]] = None,
        on_ack_sent: Optional[Callable[[float, int], None]] = None,
        on_ack_arrived: Optional[Callable[[float, int], None]] = None,
    ) -> None:
        self.loop = loop
        self.config = config
        self.name = name
        self.on_readable = on_readable
        self.on_data_sent = on_data_sent
        self.on_data_arrived = on_data_arrived
        self.on_ack_sent = on_ack_sent
        self.on_ack_arrived = on_ack_arrived
        self._rng = random.Random(config.seed)

        # Sender state (all counters in bytes).
        self.snd_una = 0
        self.snd_nxt = 0
        self._app_bytes = 0
        self._writer_closed = False
        self.cwnd = config.init_cwnd_segments * config.mss
        self.ssthresh = 1 << 30
        self._dupacks = 0
        self._peer_window = config.rcv_buffer
        self._rto = max(config.rto_min, 4 * config.latency + 0.2)
        self._rto_epoch = 0
        self._recovering_until = 0  # seq: ignore dupacks during recovery

        # Receiver state.
        self.rcv_nxt = 0
        self._ooo: Dict[int, int] = {}  # seq_start -> length
        self.readable = 0
        self._segments_since_ack = 0
        self._delack_handle: Optional[int] = None
        self._last_advertised = config.rcv_buffer

        # Link state: independent busy-until clocks per direction.
        self._fwd_busy = 0.0
        self._rev_busy = 0.0

        # Stats.
        self.data_packets_sent = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.packets_lost = 0

    # -- application interface (sender) ------------------------------------

    def write(self, nbytes: int) -> None:
        """Queue ``nbytes`` of application data for transmission."""
        if nbytes < 0:
            raise ValueError("cannot write a negative byte count")
        if self._writer_closed:
            raise RuntimeError(f"{self.name}: writer already closed")
        self._app_bytes += nbytes
        self._try_send()

    def close_writer(self) -> None:
        """No more data will be written."""
        self._writer_closed = True

    @property
    def finished(self) -> bool:
        """All written data delivered and acknowledged."""
        return self._writer_closed and self.snd_una >= self._app_bytes

    @property
    def writer_closed(self) -> bool:
        return self._writer_closed

    @property
    def bytes_written(self) -> int:
        """Total application bytes handed to the sender so far."""
        return self._app_bytes

    @property
    def bytes_acked(self) -> int:
        return self.snd_una

    # -- application interface (receiver) -------------------------------------

    def read(self, nbytes: Optional[int] = None) -> int:
        """Consume up to ``nbytes`` in-order bytes (all readable if None)."""
        take = self.readable if nbytes is None else min(nbytes, self.readable)
        if take < 0:
            raise ValueError("cannot read a negative byte count")
        was_starved = self._advertised_window() < self.config.mss
        self.readable -= take
        if was_starved and self._advertised_window() >= self.config.mss:
            self._send_ack()  # window update so the sender unblocks
        return take

    # -- sender internals -----------------------------------------------------

    def _advertised_window(self) -> int:
        return max(0, self.config.rcv_buffer - self.readable - sum(self._ooo.values()))

    def _flight(self) -> int:
        return self.snd_nxt - self.snd_una

    def _send_window(self) -> int:
        return min(self.cwnd, self._peer_window)

    def _try_send(self) -> None:
        cfg = self.config
        while (
            self.snd_nxt < self._app_bytes
            and self._flight() + cfg.mss <= self._send_window()
        ):
            length = min(cfg.mss, self._app_bytes - self.snd_nxt)
            self._transmit_segment(self.snd_nxt, length, retransmission=False)
            self.snd_nxt += length
        self._arm_rto()

    def _transmit_segment(self, seq: int, length: int, retransmission: bool) -> None:
        cfg = self.config
        self.data_packets_sent += 1
        if retransmission:
            self.retransmissions += 1
        depart = max(self.loop.now, self._fwd_busy) + length / cfg.rate
        self._fwd_busy = depart
        if self.on_data_sent is not None:
            self.on_data_sent(self.loop.now, seq + length)
        if self._rng.random() < cfg.loss_prob:
            self.packets_lost += 1
            return
        arrive = depart + cfg.latency
        self.loop.schedule_at(arrive, lambda: self._on_segment(seq, length))

    def _arm_rto(self) -> None:
        if self._flight() <= 0:
            return
        self._rto_epoch += 1
        epoch = self._rto_epoch
        self.loop.schedule(self._rto, lambda: self._on_rto(epoch))

    def _on_rto(self, epoch: int) -> None:
        if epoch != self._rto_epoch or self._flight() <= 0:
            return
        # Timeout: collapse to slow start and go-back-N from snd_una.
        self.ssthresh = max(self._flight() // 2, 2 * self.config.mss)
        self.cwnd = self.config.mss
        self.snd_nxt = self.snd_una
        self._dupacks = 0
        self._rto = min(self._rto * 2, 60.0)
        self._try_send()

    def _on_ack(self, ack: int, window: int) -> None:
        cfg = self.config
        if self.on_ack_arrived is not None:
            self.on_ack_arrived(self.loop.now, ack)
        self._peer_window = window
        if ack > self.snd_una:
            acked = ack - self.snd_una
            self.snd_una = ack
            self._dupacks = 0
            self._rto = max(cfg.rto_min, 4 * cfg.latency + 0.2)
            if self.cwnd < self.ssthresh:
                self.cwnd += min(acked, cfg.mss)  # slow start
            else:
                self.cwnd += max(1, cfg.mss * cfg.mss // self.cwnd)  # AIMD
            self._arm_rto()
            self._try_send()
        elif ack == self.snd_una and self._flight() > 0:
            self._dupacks += 1
            if self._dupacks == 3 and ack >= self._recovering_until:
                # Fast retransmit + multiplicative decrease.
                self.ssthresh = max(self._flight() // 2, 2 * cfg.mss)
                self.cwnd = self.ssthresh + 3 * cfg.mss
                self._recovering_until = self.snd_nxt
                length = min(cfg.mss, self._app_bytes - ack, self.snd_nxt - ack)
                if length > 0:
                    self._transmit_segment(ack, length, retransmission=True)
        # Window updates alone may unblock sending.
        self._try_send()

    # -- receiver internals ----------------------------------------------------

    def _on_segment(self, seq: int, length: int) -> None:
        cfg = self.config
        if self.on_data_arrived is not None:
            self.on_data_arrived(self.loop.now, seq + length)
        in_order = False
        if seq + length <= self.rcv_nxt:
            pass  # stale retransmission
        elif seq <= self.rcv_nxt:
            advance = seq + length - self.rcv_nxt
            self.rcv_nxt += advance
            self.readable += advance
            in_order = True
            self._absorb_ooo()
        else:
            self._ooo[seq] = max(self._ooo.get(seq, 0), length)

        if in_order:
            if self.readable > 0 and self.on_readable is not None:
                self.on_readable(self)
            self._segments_since_ack += 1
            if self._segments_since_ack >= 2:
                self._send_ack()
            elif self._delack_handle is None:
                self._delack_handle = self.loop.schedule(
                    cfg.delayed_ack_timeout, self._delayed_ack
                )
        else:
            self._send_ack()  # duplicate ACK for ooo/stale data

    def _absorb_ooo(self) -> None:
        changed = True
        while changed:
            changed = False
            for seq in sorted(self._ooo):
                length = self._ooo[seq]
                if seq <= self.rcv_nxt:
                    del self._ooo[seq]
                    if seq + length > self.rcv_nxt:
                        advance = seq + length - self.rcv_nxt
                        self.rcv_nxt += advance
                        self.readable += advance
                    changed = True
                    break

    def _delayed_ack(self) -> None:
        self._delack_handle = None
        if self._segments_since_ack > 0:
            self._send_ack()

    def _send_ack(self) -> None:
        cfg = self.config
        self._segments_since_ack = 0
        if self._delack_handle is not None:
            self.loop.cancel(self._delack_handle)
            self._delack_handle = None
        self.acks_sent += 1
        ack = self.rcv_nxt
        window = self._advertised_window()
        if self.on_ack_sent is not None:
            self.on_ack_sent(self.loop.now, ack)
        depart = max(self.loop.now, self._rev_busy) + 40 / cfg.rate  # 40B header
        self._rev_busy = depart
        arrive = depart + cfg.latency
        self.loop.schedule_at(arrive, lambda: self._on_ack(ack, window))
