"""Command-line interface: quick access to the main pipelines.

Usage (after ``pip install -e .``)::

    python -m repro.cli info                 # build a world, dataset stats
    python -m repro.cli trace                # month of BGP churn, Figure 3 stats
    python -m repro.cli attack               # hijack/interception sweep
    python -m repro.cli transfer             # circuit download, Figure 2 right
    python -m repro.cli --scale paper trace  # full §4 scale (slower)

Every command is seeded and deterministic; ``--seed`` changes the world.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.scenario import Scenario, ScenarioConfig

__all__ = ["main"]


def _build_scenario(args: argparse.Namespace) -> Scenario:
    if args.scale == "paper":
        config = ScenarioConfig.paper(seed=args.seed)
    else:
        config = ScenarioConfig.small(seed=args.seed)
    print(f"building {args.scale} scenario (seed={args.seed})...", file=sys.stderr)
    return Scenario(config)


def _cmd_info(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    consensus = scenario.consensus
    graph = scenario.graph
    print(f"ASes:            {len(graph)} ({len(graph.tier1_ases())} tier-1, "
          f"{len(graph.stub_ases())} stubs, {graph.num_links()} links)")
    print(f"relays:          {len(consensus)}")
    print(f"  guards:        {len(consensus.guards())}")
    print(f"  exits:         {len(consensus.exits())}")
    print(f"  guard+exit:    {len(consensus.guard_and_exit())}")
    print(f"tor prefixes:    {len(scenario.tor_prefixes)}")
    print(f"hosting ASes:    {len(set(scenario.tor.prefix_origins.values()))}")
    print(f"bg prefixes:     {len(scenario.background_origins)}")
    w = consensus.weights
    print(f"weights:         Wgg={w.Wgg:.2f} Wgd={w.Wgd:.2f} Wee={w.Wee:.2f} Wed={w.Wed:.2f}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.exposure import extra_as_samples
    from repro.analysis.pathchanges import tor_ratio_samples
    from repro.analysis.stats import Ccdf
    from repro.bgpsim.resets import remove_reset_artifacts

    scenario = _build_scenario(args)
    print("running the month-long trace...", file=sys.stderr)
    trace = scenario.run_trace()
    streams = [
        remove_reset_artifacts(trace.streams[s]) for s in trace.collector_sessions
    ]
    total = sum(len(s) for s in streams)
    print(f"sessions: {len(streams)}, records after reset removal: {total}")

    ratios = tor_ratio_samples(streams, trace.tor_prefixes)
    ccdf = Ccdf.from_samples(ratios)
    print("\nFigure 3 (left) — path-change ratio of Tor prefixes:")
    print(f"  P[ratio > 1]  = {ccdf.fraction_greater(1.0):.1%}  (paper: >50%)")
    print(f"  max ratio     = {max(ratios):.0f}x     (paper: >2000x outlier)")

    extras = extra_as_samples(streams, trace.tor_prefixes, trace.duration)
    eccdf = Ccdf.from_samples(extras)
    print("\nFigure 3 (right) — extra ASes (>=5 min) per Tor prefix:")
    print(f"  P[extra >= 2] = {eccdf.fraction_at_least(2):.1%}  (paper: 50%)")
    print(f"  P[extra > 5]  = {eccdf.fraction_greater(5):.1%}  (paper: ~8%)")
    print(f"  median        = {eccdf.median():.0f}")

    if args.plot:
        from repro.analysis.asciiplot import plot_ccdf

        positive = [(max(x, 0.01), y) for x, y in ccdf.points]
        print()
        print(plot_ccdf(positive, title="Figure 3 (left): tor pfx change ratio / session median"))
        print()
        print(
            plot_ccdf(
                [(max(x, 0.5), y) for x, y in eccdf.points],
                title="Figure 3 (right): extra ASes (>=5 min) per tor prefix",
            )
        )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.bgpsim.attacks import AttackKind
    from repro.core.interception import AttackPlanner
    from repro.tor.consensus import Position

    scenario = _build_scenario(args)
    planner = AttackPlanner(scenario.graph, scenario.tor)
    attacker = scenario.adversary_as()
    print(f"attacker: AS{attacker}\n")
    print("top guard-prefix targets:")
    for target in planner.rank_targets(Position.GUARD).top(args.top):
        print(f"  {str(target.prefix):20s} AS{target.origin_asn:<6d} "
              f"p(select)={target.selection_probability:.3f}")
    print()
    for kind in (AttackKind.SAME_PREFIX, AttackKind.INTERCEPTION, AttackKind.COMMUNITY_SCOPED):
        outcomes = planner.sweep(attacker, Position.GUARD, args.top, kind)
        fracs = [o.hijack.capture_fraction for o in outcomes]
        feasible = sum(o.hijack.interception_feasible for o in outcomes)
        print(f"{kind.value:26s} mean capture {sum(fracs)/len(fracs):6.1%}, "
              f"intercept-feasible {feasible}/{len(outcomes)}")
    coverage = planner.surveillance_coverage(attacker, args.top, args.top)
    print(f"\nsurveillance coverage (top-{args.top} guard+exit interception): "
          f"{coverage['circuit_coverage']:.2%} of circuits correlatable")
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    from repro.core.asymmetric import correlate_segments
    from repro.traffic.circuitsim import CircuitTransfer, TransferConfig

    result = CircuitTransfer(TransferConfig(file_size=args.size)).run()
    print(f"transferred {result.bytes_delivered/1e6:.1f} MB in {result.duration:.1f}s "
          f"({result.throughput/1000:.0f} KB/s), cells={result.cells_forwarded}, "
          f"sendmes={result.sendmes}")
    print("\ncumulative MB over time (Figure 2, right):")
    taps = result.taps.all()
    print("  t(s)   " + "  ".join(f"{c.name:>16s}" for c in taps))
    for i in range(1, 11):
        t = result.duration * i / 10
        print(f"  {t:5.1f}  " + "  ".join(f"{c.cumulative_at(t)/1e6:16.2f}" for c in taps))
    print("\ncorrelations (any direction pair works, §3.3):")
    for (a, b), r in correlate_segments(result.taps).items():
        print(f"  {a:15s} vs {b:15s}: {r:+.3f}")

    if args.plot:
        from repro.analysis.asciiplot import plot_series

        series = []
        labels = []
        for cap in taps:
            times, mbs = cap.curve()
            series.append(list(zip(times, mbs))[:: max(1, len(times) // 200)])
            labels.append(cap.name)
        print()
        print(
            plot_series(
                series,
                labels=labels,
                title="Figure 2 (right): cumulative MB per segment",
                xlabel="time (s)",
                ylabel="MB",
            )
        )
    return 0


def _cmd_rov(args: argparse.Namespace) -> int:
    from repro.bgpsim.rpki import RpkiRegistry, adoption_sweep
    from repro.core.interception import AttackPlanner
    from repro.tor.consensus import Position

    scenario = _build_scenario(args)
    planner = AttackPlanner(scenario.graph, scenario.tor)
    attacker = scenario.adversary_as()
    target = next(
        t for t in planner.rank_targets(Position.GUARD).targets
        if t.origin_asn != attacker
    )
    registry = RpkiRegistry.for_prefixes(scenario.tor.prefix_origins)
    print(f"hijack of {target.prefix} (AS{target.origin_asn}) by AS{attacker}\n")
    print("ROV adoption   capture (invalid origin)   capture (forged origin)")
    honest = adoption_sweep(
        scenario.graph, registry, target.prefix, target.origin_asn, attacker, seed=1
    )
    forged = adoption_sweep(
        scenario.graph, registry, target.prefix, target.origin_asn, attacker,
        seed=1, forge_origin=True,
    )
    for (rate, cap_h), (_r, cap_f) in zip(honest, forged):
        print(f"{rate:10.0%}     {cap_h:12.1%}            {cap_f:12.1%}")
    print("\nOrigin validation kills the classic hijack; the forged-origin")
    print("variant (what interception uses) is untouched — §7's outlook.")
    return 0


def _cmd_users(args: argparse.Namespace) -> int:
    from repro.core.surveillance import ObservationMode
    from repro.core.usermetrics import simulate_user_population

    scenario = _build_scenario(args)
    clients = scenario.client_ases(args.clients)
    dests = scenario.destination_ases(max(2, args.clients // 2))
    adversaries = {0, scenario.adversary_as()}
    print(f"simulating {len(clients)} users x {args.days} days "
          f"vs colluding ASes {sorted(adversaries)}...", file=sys.stderr)
    report = simulate_user_population(
        scenario.graph,
        scenario.consensus,
        scenario.relay_asn,
        clients,
        dests,
        adversaries,
        days=args.days,
        mode=ObservationMode.EITHER,
    )
    curve = report.fraction_compromised_by_day()
    print("day   users compromised so far")
    step = max(1, args.days // 8)
    for day in range(1, args.days + 1, step):
        print(f"{day:4d}  {curve[day-1]:6.1%}")
    median = report.median_days_to_compromise()
    print(f"\nwithin {args.days} days: {report.fraction_compromised:.0%} of users; "
          f"median time to first compromise: "
          + (f"{median:.0f} days" if median is not None else f">{args.days} days"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="BGP-vs-Tor paper reproduction toolkit"
    )
    parser.add_argument("--seed", type=int, default=0, help="world seed")
    parser.add_argument(
        "--scale", choices=("small", "paper"), default="small",
        help="world size: 'small' (~1/10, seconds) or 'paper' (§4 scale, minutes)",
    )
    parser.add_argument(
        "--engine-stats", action="store_true",
        help="print routing-engine cache/timing statistics after the command",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="build a world and print dataset statistics")
    trace = sub.add_parser("trace", help="run the month-long BGP trace, print Figure 3 stats")
    trace.add_argument("--plot", action="store_true", help="render ASCII CCDF plots")
    attack = sub.add_parser("attack", help="run the §3.2 attack sweep")
    attack.add_argument("--top", type=int, default=10, help="top-k target prefixes")
    transfer = sub.add_parser("transfer", help="run a circuit download (Figure 2 right)")
    transfer.add_argument("--size", type=int, default=10_000_000, help="bytes to download")
    transfer.add_argument("--plot", action="store_true", help="render ASCII byte curves")
    sub.add_parser("rov", help="RPKI adoption sweep against a guard-prefix hijack")
    users = sub.add_parser("users", help="user-level time-to-compromise simulation")
    users.add_argument("--clients", type=int, default=10)
    users.add_argument("--days", type=int, default=31)

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "trace": _cmd_trace,
        "attack": _cmd_attack,
        "transfer": _cmd_transfer,
        "rov": _cmd_rov,
        "users": _cmd_users,
    }
    rc = handlers[args.command](args)
    if args.engine_stats:
        from repro.asgraph.engine import shared_engine

        print(shared_engine().stats().format(), file=sys.stderr)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
