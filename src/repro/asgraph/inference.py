"""AS relationship inference from observed AS paths (Gao, 2001).

The paper's lineage of AS-level Tor analyses (Feamster & Dingledine 2004,
Edman & Syverson 2009) ran on "the AS-level path simulator of Gao et al.",
whose relationship annotations are *inferred from BGP paths* rather than
known.  This module implements the classic Gao heuristic so the repo can
close that loop: generate ground-truth topologies, observe only the BGP
paths collectors would see, re-infer the business relationships, and
measure how well inference recovers the truth (see
``tests/test_inference.py``).

The heuristic, phase by phase:

1. every AS's *degree* is estimated from the observed paths;
2. each path is split at its highest-degree AS (the "top provider"):
   hops towards it are customer→provider ("uphill"), hops after it are
   provider→customer ("downhill") — valley-freeness in reverse;
3. an AS pair with transit observed in both directions would be siblings
   (rare; mapped to peers here), one direction means provider→customer;
4. adjacent top-of-path pairs with comparable degrees and no transit
   evidence are inferred as peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.asgraph.relationships import Relationship
from repro.asgraph.topology import ASGraph

__all__ = ["InferenceResult", "infer_relationships"]


@dataclass(frozen=True)
class InferenceResult:
    """Inferred relationships for every link observed in the input paths.

    Query through :meth:`relationship`, which answers for an explicit
    (local, neighbour) pair; the raw ``transit`` mapping stores each
    transit link as an unambiguous ``(customer, provider)`` tuple.
    """

    #: link -> (customer, provider) for transit links
    transit: Mapping[FrozenSet[int], Tuple[int, int]]
    #: links inferred as settlement-free peering
    peers: FrozenSet[FrozenSet[int]]
    #: every link seen in some path
    observed_links: FrozenSet[FrozenSet[int]]

    def relationship(self, local: int, neighbour: int) -> Optional[Relationship]:
        """Inferred relationship of ``neighbour`` from ``local``'s side."""
        link = frozenset((local, neighbour))
        if link in self.peers:
            return Relationship.PEER
        pair = self.transit.get(link)
        if pair is None:
            return None
        customer, provider = pair
        if local == customer:
            return Relationship.PROVIDER  # neighbour provides for local
        return Relationship.CUSTOMER

    def accuracy_against(self, graph: ASGraph) -> float:
        """Fraction of observed links whose inferred relationship matches
        the ground-truth topology."""
        if not self.observed_links:
            raise ValueError("no links observed")
        correct = 0
        for link in self.observed_links:
            a, b = sorted(link)
            truth = graph.relationship(a, b)
            inferred = self.relationship(a, b)
            if truth is not None and inferred == truth:
                correct += 1
        return correct / len(self.observed_links)


def infer_relationships(
    paths: Iterable[Sequence[int]],
    peer_degree_ratio: float = 2.0,
) -> InferenceResult:
    """Run Gao's inference over a collection of AS paths.

    Parameters
    ----------
    paths:
        AS paths as observed in BGP (first element nearest the observer,
        last the origin).  Paths with loops are rejected.
    peer_degree_ratio:
        Phase-4 threshold: adjacent top-of-path ASes whose degrees differ
        by less than this factor, with no transit evidence, are peers.
    """
    path_list: List[Tuple[int, ...]] = []
    for path in paths:
        path = tuple(path)
        if len(set(path)) != len(path):
            raise ValueError(f"AS path contains a loop: {path}")
        if len(path) >= 2:
            path_list.append(path)

    # Phase 1: degree estimation from observed adjacencies.
    neighbours: Dict[int, Set[int]] = {}
    for path in path_list:
        for a, b in zip(path, path[1:]):
            neighbours.setdefault(a, set()).add(b)
            neighbours.setdefault(b, set()).add(a)
    degree = {asn: len(nbrs) for asn, nbrs in neighbours.items()}

    # Phase 2: transit evidence, split at the top provider.
    # transit_votes[(u, v)] = times u was seen providing transit to v.
    transit_votes: Dict[Tuple[int, int], int] = {}
    top_adjacent: Set[FrozenSet[int]] = set()
    for path in path_list:
        top_index = max(range(len(path)), key=lambda i: (degree[path[i]], -i))
        for i in range(len(path) - 1):
            near, far = path[i], path[i + 1]
            if i + 1 <= top_index:
                provider, customer = far, near
            else:
                provider, customer = near, far
            transit_votes[(provider, customer)] = (
                transit_votes.get((provider, customer), 0) + 1
            )
        if 0 < top_index < len(path):
            top_adjacent.add(frozenset((path[top_index - 1], path[top_index])))
        if top_index + 1 < len(path):
            top_adjacent.add(frozenset((path[top_index], path[top_index + 1])))

    # Phase 3: classify links by vote asymmetry.
    observed: Set[FrozenSet[int]] = set()
    transit: Dict[FrozenSet[int], Tuple[int, int]] = {}
    peers: Set[FrozenSet[int]] = set()
    for path in path_list:
        for a, b in zip(path, path[1:]):
            observed.add(frozenset((a, b)))
    for link in observed:
        a, b = sorted(link)
        ab = transit_votes.get((a, b), 0)  # a provides for b
        ba = transit_votes.get((b, a), 0)
        if ab > 0 and ba > 0:
            # conflicting evidence: sibling in Gao's terms; the closest
            # notion in our two-relationship model is peering
            peers.add(link)
        elif ab > 0:
            transit[link] = (b, a)  # (customer, provider)
        elif ba > 0:
            transit[link] = (a, b)

    # Phase 4: peering refinement at the top of paths.
    for link in top_adjacent:
        a, b = sorted(link)
        if link in peers:
            continue
        da, db = degree.get(a, 1), degree.get(b, 1)
        comparable = max(da, db) <= peer_degree_ratio * min(da, db)
        ab = transit_votes.get((a, b), 0)
        ba = transit_votes.get((b, a), 0)
        weak_evidence = min(ab, ba) == 0 and max(ab, ba) <= 2
        if comparable and weak_evidence:
            transit.pop(link, None)
            peers.add(link)

    return InferenceResult(
        transit=transit,
        peers=frozenset(peers),
        observed_links=frozenset(observed),
    )
