"""Batched multi-origin Gao-Rexford routing over shared CSR arrays.

Every sweep in this reproduction — resilience tables, surveillance
observer sets, the hijack/interception grids — needs routes from many
origins over the *same* topology.  :func:`compute_routes_fast` answers
one announcement set per call, so a 100-origin sweep pays 100 separate
propagations over the same adjacency arrays, each dominated by pure
Python loop overhead.

:func:`compute_routes_many` runs **one propagation for all origins at
once**: per-node state becomes an ``(origins x nodes)`` flat block
(cell ``r*n + v`` is node ``v`` in row ``r``), and each stage advances a
mixed frontier of cells level-by-level with vectorised numpy passes over
the shared CSR adjacency.  The per-level tiebreak (shortest total path,
then lowest next-hop dense index == lowest ASN) is preserved exactly:

- frontier cells are kept **descending**, so the ragged CSR expansion
  emits the candidates for any given destination cell in descending
  next-hop order, and a plain fancy-index assignment (last write wins)
  leaves the *minimum* next hop in the parent array;
- candidate path lengths are monotone per level (a level-``L`` source
  only produces length-``L+1`` candidates), so finalising every offered
  cell at the end of its level reproduces the serial kernel's bucket
  queue, including per-row ``targets`` early exit at level granularity.

Each row is an announcement *set* of plain origin ASNs (so the
resilience sweep's ``[origin, attacker]`` two-seed rows batch
naturally); forged-path announcements are not supported here — use
:func:`compute_routes_fast` for those.  The result is a
:class:`BatchOutcome` whose per-origin views are zero-copy
:class:`~repro.asgraph.fastpath.CompactOutcome` rows, so everything
downstream of the existing ``RoutingOutcome`` API runs unchanged.

When numpy is unavailable the same API transparently falls back to
looping :func:`compute_routes_fast` per row (``VECTOR_BACKEND`` tells
you which mode is active); results are identical either way, which
``tests/test_batch.py`` and ``benchmarks/bench_kernel.py`` pin
bit-for-bit.
"""

from __future__ import annotations

import time
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.asgraph.fastpath import CompactOutcome, compute_routes_fast
from repro.asgraph.index import GraphIndex, graph_index
from repro.asgraph.relationships import RouteKind
from repro.asgraph.topology import ASGraph

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free CI
    _np = None

__all__ = ["BatchOutcome", "compute_routes_many", "VECTOR_BACKEND"]

#: "vector" when the numpy kernel will be used by default, else "loop".
VECTOR_BACKEND = "vector" if _np is not None else "loop"

_ORIGIN = int(RouteKind.ORIGIN)
_CUSTOMER = int(RouteKind.CUSTOMER)
_PEER = int(RouteKind.PEER)
_PROVIDER = int(RouteKind.PROVIDER)

#: One row of a batch: a single origin ASN or an iterable of origin ASNs
#: (announced as plain single-hop paths, like the list form of
#: ``compute_routes``' ``origins`` argument).
_SpecArg = Union[int, Iterable[int]]
_TargetsArg = Union[
    None, FrozenSet[int], Sequence[Optional[FrozenSet[int]]]
]


def _normalise_spec(spec: _SpecArg) -> Tuple[int, ...]:
    """One row's announcement set as a sorted tuple of distinct ASNs."""
    if isinstance(spec, Mapping):
        for asn, path in spec.items():
            path = tuple(path)
            if path != (asn,):
                raise ValueError(
                    "forged announced paths are not supported by "
                    "compute_routes_many; use compute_routes_fast for "
                    f"AS{asn}: {path}"
                )
        seeds = tuple(sorted(int(asn) for asn in spec))
    elif isinstance(spec, int):
        seeds = (spec,)
    else:
        seeds = tuple(sorted({int(asn) for asn in spec}))
    if not seeds:
        raise ValueError("at least one origin is required per batch row")
    return seeds


def _normalise_targets(
    targets: _TargetsArg, num_rows: int
) -> List[Optional[FrozenSet[int]]]:
    """Per-row target sets: a shared frozenset applies to every row."""
    if targets is None:
        return [None] * num_rows
    if isinstance(targets, (frozenset, set)):
        shared = frozenset(targets)
        return [shared] * num_rows
    tlist = [frozenset(t) if t is not None else None for t in targets]
    if len(tlist) != num_rows:
        raise ValueError(
            f"targets sequence has {len(tlist)} entries for {num_rows} rows"
        )
    return tlist


class BatchOutcome:
    """Per-origin routing outcomes over one shared multi-origin pass.

    ``outcome(r)`` materialises row ``r`` as a
    :class:`~repro.asgraph.fastpath.CompactOutcome` view — zero-copy in
    vector mode (the row arrays alias the batch block, so a cached view
    keeps the block alive), memoised either way.
    """

    __slots__ = (
        "_gi",
        "_specs",
        "_plen",
        "_parent",
        "_kind",
        "_seed",
        "_views",
    )

    def __init__(
        self,
        gi: GraphIndex,
        specs: Sequence[Tuple[int, ...]],
        plen,
        parent,
        kind,
        seed,
    ) -> None:
        self._gi = gi
        self._specs = tuple(specs)
        self._plen = plen
        self._parent = parent
        self._kind = kind
        self._seed = seed
        self._views: Dict[int, CompactOutcome] = {}

    @classmethod
    def _from_outcomes(
        cls,
        gi: GraphIndex,
        specs: Sequence[Tuple[int, ...]],
        outcomes: Sequence[CompactOutcome],
    ) -> "BatchOutcome":
        """Wrap per-row outcomes computed by the loop fallback."""
        batch = cls(gi, specs, None, None, None, None)
        batch._views = dict(enumerate(outcomes))
        return batch

    def __len__(self) -> int:
        return len(self._specs)

    def origins(self, row: int) -> Tuple[int, ...]:
        """The (sorted) announcement set of ``row``."""
        return self._specs[row]

    def outcome(self, row: int) -> CompactOutcome:
        """Row ``row`` as a ``RoutingOutcome``-compatible view."""
        view = self._views.get(row)
        if view is not None:
            return view
        spec = self._specs[row]  # IndexError on a bad row, like a list
        plen = self._plen[row]
        # Single-seed rows share one all-zeros seed row: every routed node
        # descends from seed 0, and CompactOutcome never reads the seed of
        # an unrouted node.
        if self._seed is not None:
            seed = self._seed[row]
        else:
            seed = _np.zeros(self._gi.n, dtype=_np.int16)
        view = CompactOutcome(
            self._gi,
            plen,
            self._parent[row],
            self._kind[row],
            seed,
            tuple((asn,) for asn in spec),
            spec,
            int(_np.count_nonzero(plen)),
        )
        self._views[row] = view
        return view

    def outcomes(self) -> List[CompactOutcome]:
        """Every row materialised, in input order."""
        return [self.outcome(r) for r in range(len(self._specs))]

    def __iter__(self):
        return iter(self.outcomes())


def compute_routes_many(
    graph: Union[ASGraph, GraphIndex],
    origins: Sequence[_SpecArg],
    *,
    targets: _TargetsArg = None,
    excluded_links: Optional[Iterable[FrozenSet[int]]] = None,
    origin_export_scopes: Optional[Mapping[int, FrozenSet[int]]] = None,
    stage_timings: Optional[MutableMapping[str, float]] = None,
    backend: Optional[str] = None,
) -> BatchOutcome:
    """All of ``origins`` routed in one shared propagation.

    Row ``r`` of the result equals
    ``compute_routes_fast(graph, origins[r], ...)`` exactly (lengths,
    parents, kinds, seeds, tiebreaks), with ``excluded_links`` applied
    batch-wide, ``origin_export_scopes`` applied to the rows whose
    announcement set contains the scoped ASN, and ``targets`` either one
    shared frozenset or a per-row sequence (``None`` entries disable the
    early exit for that row).

    ``backend`` forces ``"vector"`` (numpy, the default when available)
    or ``"loop"`` (per-row :func:`compute_routes_fast`; the automatic
    fallback when numpy is missing, and the only mode that accepts a
    bare :class:`GraphIndex`-free graph requirement in reverse — the
    loop needs the :class:`ASGraph`, the vector path is happy with
    either).
    """
    specs = [_normalise_spec(spec) for spec in origins]
    if not specs:
        raise ValueError("at least one origin spec is required")
    if isinstance(graph, GraphIndex):
        graph_obj: Optional[ASGraph] = None
        gi = graph
    else:
        graph_obj = graph
        gi = graph_index(graph)
    idx = gi.idx
    for spec in specs:
        for asn in spec:
            if asn not in idx:
                raise ValueError(f"origin AS{asn} not in topology")
    excluded = (
        frozenset(frozenset(link) for link in excluded_links)
        if excluded_links
        else frozenset()
    )
    scopes = dict(origin_export_scopes) if origin_export_scopes else {}
    if scopes:
        all_seeds = set()
        for spec in specs:
            all_seeds.update(spec)
        for asn in scopes:
            if asn not in all_seeds:
                raise ValueError(f"export scope given for non-origin AS{asn}")
    tlist = _normalise_targets(targets, len(specs))

    if backend is None:
        backend = VECTOR_BACKEND
    if backend not in ("vector", "loop"):
        raise ValueError(f"unknown batch backend {backend!r}")
    if backend == "vector" and _np is None:
        raise RuntimeError("the vector batch backend requires numpy")

    if backend == "loop":
        if graph_obj is None:
            raise RuntimeError(
                "the loop fallback needs the ASGraph, not a bare GraphIndex"
            )
        outs = []
        for row, spec in enumerate(specs):
            row_scopes = {a: scopes[a] for a in spec if a in scopes}
            outs.append(
                compute_routes_fast(
                    graph_obj,
                    spec,
                    excluded_links=excluded or None,
                    origin_export_scopes=row_scopes or None,
                    targets=tlist[row],
                    stage_timings=stage_timings,
                )
            )
        return BatchOutcome._from_outcomes(gi, specs, outs)

    # The flat cell index r*n + v must fit int32; chunk huge batches.
    max_rows = max(1, (2**31 - 1) // max(1, gi.n))
    if len(specs) > max_rows:

        def chunk_scopes(chunk: List[Tuple[int, ...]]):
            # Scopes are validated against the chunk's own seeds.
            present = {asn for spec in chunk for asn in spec}
            sub = {asn: s for asn, s in scopes.items() if asn in present}
            return sub or None

        first = compute_routes_many(
            graph,
            specs[:max_rows],
            targets=tlist[:max_rows],
            excluded_links=excluded or None,
            origin_export_scopes=chunk_scopes(specs[:max_rows]),
            stage_timings=stage_timings,
        )
        rest = compute_routes_many(
            graph,
            specs[max_rows:],
            targets=tlist[max_rows:],
            excluded_links=excluded or None,
            origin_export_scopes=chunk_scopes(specs[max_rows:]),
            stage_timings=stage_timings,
        )
        merged = BatchOutcome._from_outcomes(
            gi, specs, first.outcomes() + rest.outcomes()
        )
        return merged

    return _compute_many_vector(gi, specs, tlist, excluded, scopes, stage_timings)


def _dense_blocked(gi: GraphIndex, excluded: FrozenSet[FrozenSet[int]]):
    """Excluded links as directed dense pairs (both orientations)."""
    pairs = set()
    idx = gi.idx
    for link in excluded:
        if len(link) != 2:
            continue
        a, b = link
        ia = idx.get(a)
        ib = idx.get(b)
        if ia is not None and ib is not None:
            pairs.add((ia, ib))
            pairs.add((ib, ia))
    return pairs


def _compute_many_vector(
    gi: GraphIndex,
    specs: List[Tuple[int, ...]],
    tlist: List[Optional[FrozenSet[int]]],
    excluded: FrozenSet[FrozenSet[int]],
    scopes: Mapping[int, FrozenSet[int]],
    stage_timings: Optional[MutableMapping[str, float]],
) -> BatchOutcome:
    np = _np
    n = gi.n
    num_rows = len(specs)
    size = num_rows * n
    idx = gi.idx
    I32 = np.int32
    # Node indices and path lengths fit int16 on realistic topologies —
    # half the memory traffic on the hottest arrays (parent writes and the
    # winner-detection re-read).  Cell indices stay int32.
    IP = np.int16 if n < 2**15 - 1 else I32

    def csr(start, adj):
        s = np.frombuffer(start, dtype=np.intc).astype(I32, copy=False)
        a = np.frombuffer(adj, dtype=np.intc).astype(I32, copy=False)
        return s, a, s[1:] - s[:-1]

    prov_start, prov_adj, prov_deg = csr(gi.prov_start, gi.prov_adj)
    cust_start, cust_adj, cust_deg = csr(gi.cust_start, gi.cust_adj)
    peer_start, peer_adj, peer_deg = csr(gi.peer_start, gi.peer_adj)

    blocked = _dense_blocked(gi, excluded) if excluded else set()
    if blocked:

        def drop_blocked(start, adj, deg):
            src = np.repeat(np.arange(n, dtype=I32), deg)
            keep = np.ones(adj.shape[0], dtype=bool)
            for u, v in blocked:
                keep &= ~((src == u) & (adj == v))
            new_adj = adj[keep]
            new_deg = np.bincount(src[keep], minlength=n).astype(I32)
            new_start = np.zeros(n + 1, dtype=I32)
            np.cumsum(new_deg, out=new_start[1:])
            return new_start, new_adj, new_deg

        prov_start, prov_adj, prov_deg = drop_blocked(
            prov_start, prov_adj, prov_deg
        )
        cust_start, cust_adj, cust_deg = drop_blocked(
            cust_start, cust_adj, cust_deg
        )
        peer_start, peer_adj, peer_deg = drop_blocked(
            peer_start, peer_adj, peer_deg
        )

    # Export scopes as (dense source node, allowed-destination bool mask).
    scope_items: List[Tuple[int, object]] = []
    for asn, allowed in scopes.items():
        mask = np.zeros(n, dtype=bool)
        for b in allowed:
            bi = idx.get(b)
            if bi is not None:
                mask[bi] = True
        scope_items.append((idx[asn], mask))

    plen = np.zeros(size, dtype=IP)
    parent = np.full(size, -1, dtype=IP)
    kind = np.zeros(size, dtype=np.int8)
    # ``avail`` is inverted routed-ness (True = still unrouted): candidate
    # filtering is then a plain gather, with no per-level invert pass.
    avail = np.ones(size, dtype=bool)
    need_seed = any(len(spec) > 1 for spec in specs)
    seed = np.full(size, -1, dtype=np.int16) if need_seed else None

    seed_cells: List[int] = []
    for row, spec in enumerate(specs):
        base = row * n
        for sid, asn in enumerate(spec):  # spec is sorted, so sid order holds
            cell = base + idx[asn]
            plen[cell] = 1
            kind[cell] = _ORIGIN
            avail[cell] = False
            if seed is not None:
                seed[cell] = sid
            seed_cells.append(cell)

    # Per-row targets: remaining counts (out-of-topology targets count once
    # and never resolve, pinning the row active — the serial sentinel), the
    # still-unrouted target cells, and the frozen mask (row finished early).
    has_targets = any(t is not None for t in tlist)
    frozen = np.zeros(num_rows, dtype=bool)
    if has_targets:
        has_t = np.zeros(num_rows, dtype=bool)
        remaining_count = np.zeros(num_rows, dtype=np.int64)
        tgt_mask = np.zeros(size, dtype=bool)
        tcell_list: List[int] = []
        for row, t in enumerate(tlist):
            if t is None:
                continue
            has_t[row] = True
            dense = {idx.get(asn, -1) for asn in t}
            for asn in specs[row]:
                dense.discard(idx[asn])  # seeds are already routed
            remaining_count[row] = len(dense)
            for v in dense:
                if v >= 0:
                    cell = row * n + v
                    tgt_mask[cell] = True
                    tcell_list.append(cell)
        frozen |= has_t & (remaining_count == 0)
        tcells_all = np.array(sorted(tcell_list), dtype=I32)
    else:
        has_t = None
        remaining_count = None
        tgt_mask = None
        tcells_all = None

    def drop_frozen(cells):
        if has_targets and frozen.any():
            return cells[~frozen[cells // n]]
        return cells

    def expand(f_cells, start, adj, deg, with_rep=False):
        """Ragged CSR expansion of a (descending) frontier of cells.

        Returns per-candidate arrays: destination cell, source node,
        row base (``cell - node``), and optionally the frontier index
        each candidate came from.  Descending frontier order makes the
        candidates for any one destination cell appear in descending
        source order — the invariant the min-next-hop dedup relies on.
        """
        f_nodes = f_cells % n
        d = deg[f_nodes]
        total = int(d.sum())
        if total == 0:
            return None
        rep_src = np.arange(f_cells.shape[0], dtype=I32) if with_rep else None
        nz = d > 0
        if not nz.all():
            # Stub-heavy frontiers: drop zero-degree cells (most ASes have
            # no customers) before paying the per-cell repeat machinery.
            f_cells = f_cells[nz]
            f_nodes = f_nodes[nz]
            d = d[nz]
            if rep_src is not None:
                rep_src = rep_src[nz]
        cum = np.cumsum(d, dtype=I32)
        base = np.repeat(start[f_nodes] - cum + d, d)
        pos = np.arange(total, dtype=I32) + base
        dsts = adj[pos]
        rowbase = np.repeat(f_cells - f_nodes, d)
        srcs = np.repeat(f_nodes.astype(IP), d)
        flat = np.add(rowbase, dsts, out=dsts)
        rep = np.repeat(rep_src, d) if with_rep else None
        return flat, srcs, rowbase, rep

    def scope_filter(flat, srcs, rowbase):
        """Drop candidates a scoped origin would not export."""
        keep = None
        for s, allow in scope_items:
            sel = srcs == s
            if not sel.any():
                continue
            rb = rowbase[sel]
            # Scopes bind only the origin's own announcement: the source
            # cell must still carry kind ORIGIN (it always does for seeds).
            bad = (kind[rb + s] == _ORIGIN) & ~allow[flat[sel] - rb]
            if bad.any():
                if keep is None:
                    keep = np.ones(flat.shape[0], dtype=bool)
                keep[np.nonzero(sel)[0][bad]] = False
        if keep is None:
            return flat, srcs, rowbase
        return flat[keep], srcs[keep], rowbase[keep]

    def finalize(flat, srcs, rowbase, kind_val, new_len):
        """Finalise one level's candidates; returns the next frontier."""
        m = avail[flat]
        flat = flat[m]
        if flat.shape[0] == 0:
            return None
        srcs = srcs[m]
        parent[flat] = srcs  # descending per cell: last write = min next hop
        win = parent[flat] == srcs
        wf = flat[win]
        avail[wf] = False
        plen[wf] = new_len
        kind[wf] = kind_val
        if seed is not None:
            rb = rowbase[m][win]
            seed[wf] = seed[rb + srcs[win]]
        if has_targets:
            hit = tgt_mask[wf]
            if hit.any():
                hc = wf[hit]
                tgt_mask[hc] = False
                np.subtract.at(remaining_count, hc // n, 1)
                frozen[:] |= has_t & (remaining_count == 0)
        wf.sort()
        return wf[::-1].copy()  # contiguous descending frontier

    def stamp(stage: str, started: float) -> None:
        if stage_timings is not None:
            stage_timings[stage] = stage_timings.get(stage, 0.0) + (
                time.perf_counter() - started
            )

    def by_level(cells):
        """Split routed cells into ascending-plen groups of descending cells."""
        ps = plen[cells]
        order = np.argsort(ps, kind="stable")
        sorted_cells = cells[order]
        ps = ps[order]
        max_len = int(ps[-1])
        bounds = np.searchsorted(ps, np.arange(1, max_len + 2, dtype=I32))
        groups = {}
        for level in range(1, max_len + 1):
            lo, hi = bounds[level - 1], bounds[level]
            if lo != hi:
                groups[level] = sorted_cells[lo:hi][::-1]
        return groups

    # -- stage 1: customer routes climb provider links -----------------------
    t0 = time.perf_counter()
    frontier = drop_frozen(np.sort(np.array(seed_cells, dtype=I32))[::-1])
    level = 1
    while frontier is not None and frontier.shape[0]:
        frontier = drop_frozen(frontier)
        out = expand(frontier, prov_start, prov_adj, prov_deg)
        if out is None:
            break
        flat, srcs, rowbase, _ = out
        if scope_items:
            flat, srcs, rowbase = scope_filter(flat, srcs, rowbase)
        frontier = finalize(flat, srcs, rowbase, _CUSTOMER, level + 1)
        level += 1
    stamp("customer", t0)

    # -- stage 2: one peering hop from the stage-1 snapshot ------------------
    t0 = time.perf_counter()
    stage1_cells = np.nonzero(~avail)[0].astype(I32)
    if tcells_all is not None and tcells_all.shape[0]:
        # Targets first, scanned from their own peer rows against the
        # stage-1 state: a row whose targets complete here never pays for
        # the full peer frontier or stage 3 (the serial early return).
        tc = tcells_all[avail[tcells_all]]
        if tc.shape[0]:
            out = expand(tc, peer_start, peer_adj, peer_deg, with_rep=True)
            if out is not None:
                # Inverted expansion: ``flat`` is the *source* cell (the
                # target's peer), ``srcs`` the target node itself.
                src_cell, tnode, rowbase, rep = out
                lu = plen[src_cell]
                ok = lu > 0
                if scope_items:
                    peer_node = src_cell - rowbase
                    for s, allow in scope_items:
                        sel = ok & (peer_node == s) & (kind[src_cell] == _ORIGIN)
                        if sel.any():
                            ok = ok & ~(sel & ~allow[tnode])
                if ok.any():
                    sentinel = np.iinfo(np.int64).max
                    key = (lu[ok].astype(np.int64) + 1) * (n + 1) + (
                        src_cell[ok] - rowbase[ok]
                    )
                    best = np.full(tc.shape[0], sentinel, dtype=np.int64)
                    np.minimum.at(best, rep[ok], key)
                    found = best != sentinel
                    if found.any():
                        cells = tc[found]
                        new_len = (best[found] // (n + 1)).astype(I32)
                        via = (best[found] % (n + 1)).astype(I32)
                        plen[cells] = new_len.astype(IP)
                        parent[cells] = via.astype(IP)
                        kind[cells] = _PEER
                        avail[cells] = False
                        if seed is not None:
                            seed[cells] = seed[cells - cells % n + via]
                        tgt_mask[cells] = False
                        np.subtract.at(remaining_count, cells // n, 1)
                        frozen[:] |= has_t & (remaining_count == 0)
    sources = drop_frozen(stage1_cells)
    if sources.shape[0]:
        for level, group in by_level(sources).items():
            out = expand(group, peer_start, peer_adj, peer_deg)
            if out is None:
                continue
            flat, srcs, rowbase, _ = out
            if scope_items:
                flat, srcs, rowbase = scope_filter(flat, srcs, rowbase)
            finalize(flat, srcs, rowbase, _PEER, level + 1)
    stamp("peer", t0)

    # -- stage 3: provider routes descend customer links ---------------------
    t0 = time.perf_counter()
    all_routed = drop_frozen(np.nonzero(~avail)[0].astype(I32))
    if all_routed.shape[0]:
        groups = by_level(all_routed)
        max_level = max(groups)
        carry = None
        level = 1
        while level <= max_level or (carry is not None and carry.shape[0]):
            parts = []
            group = groups.get(level)
            if group is not None:
                parts.append(group)
            if carry is not None and carry.shape[0]:
                parts.append(carry)
            carry = None
            if not parts:
                level += 1
                continue
            if len(parts) == 1:
                frontier = parts[0]
            else:
                frontier = np.sort(np.concatenate(parts))[::-1].copy()
            frontier = drop_frozen(frontier)
            if frontier.shape[0]:
                out = expand(frontier, cust_start, cust_adj, cust_deg)
                if out is not None:
                    flat, srcs, rowbase, _ = out
                    if scope_items:
                        flat, srcs, rowbase = scope_filter(flat, srcs, rowbase)
                    carry = finalize(flat, srcs, rowbase, _PROVIDER, level + 1)
            level += 1
    stamp("provider", t0)

    return BatchOutcome(
        gi,
        specs,
        plen.reshape(num_rows, n),
        parent.reshape(num_rows, n),
        kind.reshape(num_rows, n),
        seed.reshape(num_rows, n) if seed is not None else None,
    )
