"""The AS-level topology: a relationship-labelled graph.

Storage follows the CAIDA ``as-rel`` convention: every customer-provider
link is stored once (provider side first), every peering link once.  The
class exposes per-AS neighbour sets split by relationship, which is what the
routing algorithm and the BGP simulator consume.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.asgraph.relationships import Relationship

__all__ = ["ASGraph"]


class ASGraph:
    """A mutable AS-level topology with customer-provider and peering links."""

    def __init__(self) -> None:
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every structural mutation.

        Derived structures (e.g. the cached
        :class:`~repro.asgraph.index.GraphIndex`) key on ``(graph, version)``
        so a mutated graph is never served a stale compilation.
        """
        return self._version

    # -- construction ------------------------------------------------------

    def add_as(self, asn: int) -> None:
        """Add an AS with no links (no-op if present)."""
        if asn < 0:
            raise ValueError(f"AS number must be non-negative, got {asn}")
        if asn not in self._providers:
            self._version += 1
        self._providers.setdefault(asn, set())
        self._customers.setdefault(asn, set())
        self._peers.setdefault(asn, set())

    def add_provider_link(self, customer: int, provider: int) -> None:
        """Add a customer-provider link (``customer`` pays ``provider``)."""
        self._check_new_link(customer, provider)
        self.add_as(customer)
        self.add_as(provider)
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)
        self._version += 1

    def add_peer_link(self, a: int, b: int) -> None:
        """Add a settlement-free peering link between ``a`` and ``b``."""
        self._check_new_link(a, b)
        self.add_as(a)
        self.add_as(b)
        self._peers[a].add(b)
        self._peers[b].add(a)
        self._version += 1

    def remove_link(self, a: int, b: int) -> None:
        """Remove the link between ``a`` and ``b`` (raises if absent)."""
        if b in self._providers.get(a, ()):
            self._providers[a].discard(b)
            self._customers[b].discard(a)
        elif b in self._customers.get(a, ()):
            self._customers[a].discard(b)
            self._providers[b].discard(a)
        elif b in self._peers.get(a, ()):
            self._peers[a].discard(b)
            self._peers[b].discard(a)
        else:
            raise KeyError(f"no link between AS{a} and AS{b}")
        self._version += 1

    def _check_new_link(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError(f"self-loop on AS{a}")
        if self.relationship(a, b) is not None:
            raise ValueError(f"link AS{a}-AS{b} already exists")

    # -- queries -----------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    @property
    def ases(self) -> FrozenSet[int]:
        return frozenset(self._providers)

    def providers(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._providers.get(asn, ()))

    def customers(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._customers.get(asn, ()))

    def peers(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._peers.get(asn, ()))

    def neighbours(self, asn: int) -> FrozenSet[int]:
        return self.providers(asn) | self.customers(asn) | self.peers(asn)

    def degree(self, asn: int) -> int:
        return len(self._providers.get(asn, ())) + len(self._customers.get(asn, ())) + len(self._peers.get(asn, ()))

    def relationship(self, local: int, neighbour: int) -> Optional[Relationship]:
        """Relationship of ``neighbour`` from ``local``'s point of view."""
        if neighbour in self._customers.get(local, ()):
            return Relationship.CUSTOMER
        if neighbour in self._peers.get(local, ()):
            return Relationship.PEER
        if neighbour in self._providers.get(local, ()):
            return Relationship.PROVIDER
        return None

    def links(self) -> Iterator[Tuple[int, int, Relationship]]:
        """Iterate links once each as ``(a, b, relationship_of_b_seen_from_a)``.

        Customer-provider links are yielded provider-side second
        (``(customer, provider, PROVIDER)``); peering links with ``a < b``.
        """
        for customer, providers in self._providers.items():
            for provider in providers:
                yield customer, provider, Relationship.PROVIDER
        for a, peers in self._peers.items():
            for b in peers:
                if a < b:
                    yield a, b, Relationship.PEER

    def num_links(self) -> int:
        return sum(1 for _ in self.links())

    def tier1_ases(self) -> FrozenSet[int]:
        """ASes with no providers and at least one customer or peer."""
        return frozenset(
            asn
            for asn in self._providers
            if not self._providers[asn] and (self._customers[asn] or self._peers[asn])
        )

    def stub_ases(self) -> FrozenSet[int]:
        """ASes with no customers (edge networks)."""
        return frozenset(asn for asn in self._customers if not self._customers[asn])

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on corruption."""
        for customer, providers in self._providers.items():
            for provider in providers:
                if customer not in self._customers.get(provider, ()):
                    raise ValueError(f"dangling provider link AS{customer}->AS{provider}")
        for a, peers in self._peers.items():
            for b in peers:
                if a not in self._peers.get(b, ()):
                    raise ValueError(f"asymmetric peering AS{a}-AS{b}")
                if b in self._providers.get(a, ()) or b in self._customers.get(a, ()):
                    raise ValueError(f"link AS{a}-AS{b} is both peering and transit")

    def is_connected(self) -> bool:
        """True if the undirected topology is a single connected component."""
        if not self._providers:
            return True
        start = next(iter(self._providers))
        seen = {start}
        frontier = [start]
        while frontier:
            asn = frontier.pop()
            for nbr in self.neighbours(asn):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return len(seen) == len(self._providers)

    # -- serialization (CAIDA as-rel format) --------------------------------

    def to_as_rel(self) -> str:
        """Serialise in CAIDA serial-1 format (``p|c|-1`` and ``a|b|0``)."""
        lines: List[str] = []
        for a, b, rel in sorted(self.links()):
            if rel is Relationship.PROVIDER:
                lines.append(f"{b}|{a}|-1")
            else:
                lines.append(f"{a}|{b}|0")
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_as_rel(cls, text: str) -> "ASGraph":
        """Parse CAIDA serial-1 ``as-rel`` text (``#`` lines are comments)."""
        graph = cls()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) != 3:
                raise ValueError(f"line {lineno}: expected 'a|b|rel', got {line!r}")
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
            if rel == -1:
                graph.add_provider_link(customer=b, provider=a)
            elif rel == 0:
                graph.add_peer_link(a, b)
            else:
                raise ValueError(f"line {lineno}: unknown relationship code {rel}")
        return graph

    def copy(self) -> "ASGraph":
        """Deep copy (used by failure/attack what-if computations)."""
        clone = ASGraph()
        clone._providers = {asn: set(s) for asn, s in self._providers.items()}
        clone._customers = {asn: set(s) for asn, s in self._customers.items()}
        clone._peers = {asn: set(s) for asn, s in self._peers.items()}
        clone._version = 1
        return clone
