"""Synthetic Internet-like AS topology generation.

The paper's measurements run over the real Internet; offline we generate a
topology with the structural properties that matter for its analyses:

- a small clique of tier-1 transit providers (peering with each other);
- a middle tier of transit ASes multi-homed to tier-1s/tier-2s, with
  same-tier peering;
- a large fringe of stub ASes (the paper's clients, destinations and most
  relay hosts live here), attached by preferential attachment so transit
  customer-cone sizes are heavy-tailed like the real AS-level Internet;
- average AS-path lengths of ~4, matching the RIPE figure the paper cites
  when arguing that "+2 extra ASes" is significant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.asgraph.topology import ASGraph

__all__ = ["TopologyConfig", "generate_topology"]


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters for :func:`generate_topology`.

    The defaults build a ~1000-AS Internet: large enough for heavy-tailed
    cone sizes and meaningful hijack capture sets, small enough that a
    month-long BGP trace simulates in seconds.
    """

    num_ases: int = 1000
    num_tier1: int = 8
    num_tier2: int = 120
    #: providers per tier-2 AS (drawn uniformly from this inclusive range)
    tier2_providers: Sequence[int] = (1, 3)
    #: providers per stub AS (hosting providers are typically multi-homed)
    stub_providers: Sequence[int] = (1, 3)
    #: probability that any given tier-2 pair peers
    tier2_peering_prob: float = 0.05
    #: extra peering links among stubs (e.g. IXP members), per 100 stubs
    stub_peering_per_100: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tier1 < 2:
            raise ValueError("need at least 2 tier-1 ASes")
        if self.num_ases < self.num_tier1 + self.num_tier2 + 1:
            raise ValueError("num_ases too small for the requested tiers")
        for name, rng in (("tier2_providers", self.tier2_providers), ("stub_providers", self.stub_providers)):
            if len(rng) != 2 or rng[0] < 1 or rng[1] < rng[0]:
                raise ValueError(f"{name} must be (lo, hi) with 1 <= lo <= hi")
        if not 0.0 <= self.tier2_peering_prob <= 1.0:
            raise ValueError("tier2_peering_prob must be a probability")


def generate_topology(config: TopologyConfig = TopologyConfig()) -> ASGraph:
    """Generate a synthetic AS topology; deterministic for a given seed.

    AS numbers are assigned densely: tier-1s first, then tier-2s, then stubs
    (so ``asn < config.num_tier1`` identifies a tier-1, which tests exploit).
    """
    rng = random.Random(config.seed)
    graph = ASGraph()

    tier1 = list(range(config.num_tier1))
    tier2 = list(range(config.num_tier1, config.num_tier1 + config.num_tier2))
    stubs = list(range(config.num_tier1 + config.num_tier2, config.num_ases))

    # Tier-1 full mesh of peering (the default-free zone clique).
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            graph.add_peer_link(a, b)

    # Tier-2: multi-home to tier-1s; preferential attachment keeps some
    # tier-1s much larger than others, as in the real Internet.
    attach_weight: Dict[int, int] = {asn: 1 for asn in tier1}
    for asn in tier2:
        count = rng.randint(*config.tier2_providers)
        providers = _weighted_sample(rng, attach_weight, count)
        for provider in providers:
            graph.add_provider_link(customer=asn, provider=provider)
            attach_weight[provider] += 1
        attach_weight[asn] = 1  # tier-2s become candidate providers for stubs

    # Tier-2 peering (skipping pairs already related by a transit link).
    for i, a in enumerate(tier2):
        for b in tier2[i + 1 :]:
            if rng.random() < config.tier2_peering_prob and graph.relationship(a, b) is None:
                graph.add_peer_link(a, b)

    # Stubs: attach to transit (tier-2 preferred, occasionally tier-1) by
    # preferential attachment over accumulated customer counts.
    transit_weight = {asn: attach_weight[asn] for asn in tier1 + tier2}
    for asn in stubs:
        count = rng.randint(*config.stub_providers)
        providers = _weighted_sample(rng, transit_weight, count)
        for provider in providers:
            graph.add_provider_link(customer=asn, provider=provider)
            transit_weight[provider] += 1

    # Sparse stub-stub peering (IXP-style shortcuts, a source of asymmetry).
    num_stub_peerings = int(len(stubs) * config.stub_peering_per_100 / 100.0)
    added = 0
    attempts = 0
    while added < num_stub_peerings and attempts < num_stub_peerings * 20:
        attempts += 1
        a, b = rng.sample(stubs, 2)
        if graph.relationship(a, b) is None:
            graph.add_peer_link(a, b)
            added += 1

    graph.validate()
    return graph


def _weighted_sample(rng: random.Random, weights: Dict[int, int], count: int) -> List[int]:
    """Sample up to ``count`` distinct keys with probability ∝ weight."""
    chosen: List[int] = []
    pool = dict(weights)
    for _ in range(min(count, len(pool))):
        total = sum(pool.values())
        pick = rng.uniform(0, total)
        acc = 0.0
        for key, weight in pool.items():
            acc += weight
            if pick <= acc:
                chosen.append(key)
                del pool[key]
                break
    return chosen
