"""Shared memoizing facade over :func:`~repro.asgraph.routing.compute_routes`.

Every experiment in this reproduction — temporal exposure (§3.1),
hijack/interception capture sets (§3.2), asymmetric correlation endpoints
(§3.3) — bottoms out in the same three-stage Gao-Rexford computation, and
the workloads repeat themselves relentlessly: a guard sweep hijacks the
same victim origins against the same attacker, a resilience table re-runs
the same (origin, attacker) pairs for every client, a countermeasure
ablation replays the same scenario with one knob changed.  The
:class:`RoutingEngine` sits between those callers and the pure kernel:

- **memoisation** — outcomes are cached under
  ``(graph fingerprint, normalised origins, excluded links, export
  scopes)``, with *targets-superset* matching: an outcome computed for
  the full topology (``targets=None``) or for a superset of the requested
  target ASes answers the narrower query, because the staged computation
  finalises every target exactly;
- **batching** — :meth:`paths_many` groups (src, dst) path queries by
  destination, computes one :class:`~repro.asgraph.routing.RoutingOutcome`
  per origin with a merged target set, and can fan destinations out across
  a ``concurrent.futures`` process pool;
- **instrumentation** — hit/miss/eviction counters and per-stage kernel
  timings, surfaced through :meth:`stats` (and ``repro.cli
  --engine-stats``).

Two interchangeable pure kernels sit underneath: the flat-array
parent-pointer fast path (:func:`repro.asgraph.fastpath
.compute_routes_fast`, the default) and the reference implementation
(:func:`repro.asgraph.routing.compute_routes`); ``kernel=``/
``REPRO_KERNEL`` select between them.  The engine never changes what a
route *is*, only how often and how fast it is computed.  The graph
fingerprint is
taken once per :class:`~repro.asgraph.topology.ASGraph` object — callers
that mutate a graph after routing through the engine must call
:meth:`invalidate` (the codebase convention is to express what-ifs via
``excluded_links`` instead of mutation, which needs no invalidation).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.asgraph.batch import compute_routes_many
from repro.asgraph.fastpath import CompactOutcome, compute_routes_fast
from repro.asgraph.incremental import DynamicRoutingSession, RecomputeSession
from repro.asgraph.index import graph_index
from repro.asgraph.routing import (
    RoutingOutcome,
    _normalise_origins,
    _OriginsArg,
    compute_routes,
)
from repro.asgraph.topology import ASGraph

__all__ = [
    "EngineStats",
    "RoutingEngine",
    "resolve_kernel",
    "shared_engine",
    "set_shared_engine",
]

#: Recognised kernel names -> the callable implementing compute_routes.
_KERNELS = {"fast": compute_routes_fast, "legacy": compute_routes}


def resolve_kernel(kernel: Optional[str]) -> str:
    """Resolve a kernel choice: explicit arg > ``REPRO_KERNEL`` env > fast.

    ``kernel`` (and the env var) must be ``"fast"`` or ``"legacy"``.
    """
    if kernel is None:
        kernel = os.environ.get("REPRO_KERNEL") or "fast"
    if kernel not in _KERNELS:
        raise ValueError(
            f"unknown routing kernel {kernel!r} (expected 'fast' or 'legacy')"
        )
    return kernel

_Link = FrozenSet[int]
#: (fingerprint, origins, excluded links, export scopes)
_BaseKey = Tuple[str, Tuple[Tuple[int, Tuple[int, ...]], ...], FrozenSet[_Link], Tuple]


@dataclass(frozen=True)
class EngineStats:
    """A snapshot of one engine's counters."""

    queries: int
    hits: int
    misses: int
    evictions: int
    entries: int
    #: wall seconds spent inside the kernel (cache misses only)
    compute_seconds: float
    #: kernel seconds per propagation stage ("customer"/"peer"/"provider")
    stage_seconds: Mapping[str, float]
    #: paths_many calls, and how many of them used the process pool
    batches: int
    parallel_batches: int
    #: routing sessions handed out via :meth:`RoutingEngine.session`
    sessions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    def format(self) -> str:
        stages = " ".join(
            f"{name}={secs:.3f}s" for name, secs in sorted(self.stage_seconds.items())
        )
        return (
            f"routing engine: {self.queries} queries, {self.hits} hits "
            f"({self.hit_rate:.1%}), {self.misses} misses, "
            f"{self.evictions} evictions, {self.entries} cached outcomes; "
            f"kernel {self.compute_seconds:.3f}s [{stages}]; "
            f"{self.batches} batches ({self.parallel_batches} parallel); "
            f"{self.sessions} sessions"
        )


class RoutingEngine:
    """Process-wide memoizing route oracle (thread-safe).

    ``kernel`` selects the route-computation implementation: ``"fast"``
    (the flat-array parent-pointer kernel in
    :mod:`repro.asgraph.fastpath`, the default) or ``"legacy"`` (the
    reference tuple-per-route kernel in :mod:`repro.asgraph.routing`).
    ``None`` defers to the ``REPRO_KERNEL`` environment variable, then to
    ``"fast"``.  Both kernels are outcome-for-outcome equivalent; the
    escape hatch exists for debugging and benchmarking.
    """

    def __init__(self, max_entries: int = 4096, kernel: Optional[str] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.kernel = resolve_kernel(kernel)
        self._compute = _KERNELS[self.kernel]
        self._lock = threading.Lock()
        #: base key -> [(targets or None, outcome), ...], LRU over base keys
        self._cache: "OrderedDict[_BaseKey, List[Tuple[Optional[FrozenSet[int]], RoutingOutcome]]]" = OrderedDict()
        self._num_outcomes = 0
        self._fingerprints: "weakref.WeakKeyDictionary[ASGraph, str]" = (
            weakref.WeakKeyDictionary()
        )
        self._queries = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._compute_seconds = 0.0
        self._stage_seconds: Dict[str, float] = {}
        self._batches = 0
        self._parallel_batches = 0
        self._sessions = 0

    # -- cache plumbing ------------------------------------------------------

    def fingerprint(self, graph: ASGraph) -> str:
        """Content hash of the topology, computed once per graph object."""
        fp = self._fingerprints.get(graph)
        if fp is None:
            fp = hashlib.blake2b(
                graph.to_as_rel().encode(), digest_size=16
            ).hexdigest()
            self._fingerprints[graph] = fp
        return fp

    def invalidate(self, graph: ASGraph) -> None:
        """Forget the graph's fingerprint and every outcome computed for it.

        Required after mutating a graph (``add_*``/``remove_link``) that was
        previously routed through this engine.
        """
        with self._lock:
            fp = self._fingerprints.pop(graph, None)
            if fp is None:
                return
            stale = [key for key in self._cache if key[0] == fp]
            for key in stale:
                self._num_outcomes -= len(self._cache.pop(key))

    def clear(self) -> None:
        """Drop every cached outcome (counters are kept)."""
        with self._lock:
            self._cache.clear()
            self._num_outcomes = 0

    @staticmethod
    def _base_key(
        fp: str,
        seeds: Mapping[int, Tuple[int, ...]],
        excluded: FrozenSet[_Link],
        scopes: Mapping[int, FrozenSet[int]],
    ) -> _BaseKey:
        return (
            fp,
            tuple(sorted(seeds.items())),
            excluded,
            tuple(sorted((asn, scope) for asn, scope in scopes.items())),
        )

    def _lookup(
        self, key: _BaseKey, targets: Optional[FrozenSet[int]]
    ) -> Optional[RoutingOutcome]:
        """Find a cached outcome valid for ``targets`` (lock held)."""
        entries = self._cache.get(key)
        if entries is None:
            return None
        for cached_targets, outcome in entries:
            if cached_targets is None or (
                targets is not None and targets <= cached_targets
            ):
                self._cache.move_to_end(key)
                return outcome
        return None

    def _store(
        self,
        key: _BaseKey,
        targets: Optional[FrozenSet[int]],
        outcome: RoutingOutcome,
    ) -> None:
        """Insert an outcome and evict the LRU base key if over capacity
        (lock held)."""
        entries = self._cache.setdefault(key, [])
        if targets is None:
            # A full outcome subsumes every targeted entry under this key.
            self._num_outcomes -= len(entries)
            entries.clear()
        entries.append((targets, outcome))
        self._num_outcomes += 1
        self._cache.move_to_end(key)
        while self._num_outcomes > self.max_entries and len(self._cache) > 1:
            _key, evicted = self._cache.popitem(last=False)
            self._num_outcomes -= len(evicted)
            self._evictions += len(evicted)

    # -- queries -------------------------------------------------------------

    def outcome(
        self,
        graph: ASGraph,
        origins: _OriginsArg,
        excluded_links: Optional[Iterable[_Link]] = None,
        origin_export_scopes: Optional[Mapping[int, FrozenSet[int]]] = None,
        targets: Optional[FrozenSet[int]] = None,
    ) -> RoutingOutcome:
        """Memoized :func:`compute_routes` (same signature and semantics)."""
        seeds = _normalise_origins(origins)
        excluded = frozenset(excluded_links) if excluded_links else frozenset()
        scopes = dict(origin_export_scopes) if origin_export_scopes else {}
        key = self._base_key(self.fingerprint(graph), seeds, excluded, scopes)
        with self._lock:
            self._queries += 1
            cached = self._lookup(key, targets)
            if cached is not None:
                self._hits += 1
                return cached
            self._misses += 1
        # Accumulate stage timings into a local dict and merge under the
        # lock: handing the kernel the shared dict would mutate it outside
        # the lock, racing concurrent outcome() calls.
        timings: Dict[str, float] = {}
        started = time.perf_counter()
        outcome = self._compute(
            graph,
            seeds,
            excluded_links=excluded,
            origin_export_scopes=scopes,
            targets=targets,
            stage_timings=timings,
        )
        elapsed = time.perf_counter() - started
        with self._lock:
            self._compute_seconds += elapsed
            self._merge_stage_seconds(timings)
            self._store(key, targets, outcome)
        return outcome

    def outcomes_many(
        self,
        graph: ASGraph,
        origins: object,
        excluded_links: Optional[Iterable[_Link]] = None,
        origin_export_scopes: Optional[Mapping[int, FrozenSet[int]]] = None,
        targets: Optional[object] = None,
    ):
        """A batch of :meth:`outcome` calls answered in one kernel pass.

        The typed form takes an :class:`~repro.serve.api.OutcomeBatch`
        (row specs plus the batch-wide excluded links / export scopes /
        targets) and returns an
        :class:`~repro.serve.api.OutcomeBatchResult`, input order
        preserved.  The legacy form — a raw sequence of announcement
        specs with loose keyword arguments — still works but emits a
        ``DeprecationWarning``; build an ``OutcomeBatch`` instead.

        Warm rows are answered from the LRU; the misses are routed
        together through
        :func:`~repro.asgraph.batch.compute_routes_many` (one shared
        propagation under the fast kernel) and stored back under their
        ordinary per-origin keys — a batch warms the cache exactly like
        the equivalent loop of :meth:`outcome` calls, and vice versa.
        """
        from repro.serve.api import OutcomeBatch, OutcomeBatchResult

        if isinstance(origins, OutcomeBatch):
            batch = origins
            outs = self._outcomes_many_rows(
                graph,
                batch.rows,
                excluded_links=batch.excluded_links,
                origin_export_scopes=(
                    dict(batch.origin_export_scopes)
                    if batch.origin_export_scopes is not None
                    else None
                ),
                targets=batch.targets,
            )
            return OutcomeBatchResult(outcomes=tuple(outs))
        warnings.warn(
            "outcomes_many(graph, [specs...]) with loose arguments is "
            "deprecated; pass a repro.serve.api.OutcomeBatch",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._outcomes_many_rows(
            graph,
            origins,  # type: ignore[arg-type]
            excluded_links=excluded_links,
            origin_export_scopes=origin_export_scopes,
            targets=targets,
        )

    def _outcomes_many_rows(
        self,
        graph: ASGraph,
        origins: Sequence[_OriginsArg],
        excluded_links: Optional[Iterable[_Link]] = None,
        origin_export_scopes: Optional[Mapping[int, FrozenSet[int]]] = None,
        targets: Optional[object] = None,
    ) -> List[RoutingOutcome]:
        seeds_list = [_normalise_origins(spec) for spec in origins]
        excluded = frozenset(excluded_links) if excluded_links else frozenset()
        all_scopes = dict(origin_export_scopes) if origin_export_scopes else {}
        if targets is None:
            tlist: List[Optional[FrozenSet[int]]] = [None] * len(seeds_list)
        elif isinstance(targets, (frozenset, set)):
            shared = frozenset(targets)
            tlist = [shared] * len(seeds_list)
        else:
            tlist = [frozenset(t) if t is not None else None for t in targets]
            if len(tlist) != len(seeds_list):
                raise ValueError(
                    f"targets sequence has {len(tlist)} entries for "
                    f"{len(seeds_list)} origin rows"
                )
        if not seeds_list:
            return []
        fp = self.fingerprint(graph)
        keys = [
            self._base_key(
                fp,
                seeds,
                excluded,
                {a: all_scopes[a] for a in seeds if a in all_scopes},
            )
            for seeds in seeds_list
        ]
        results: List[Optional[RoutingOutcome]] = [None] * len(seeds_list)
        miss_rows: List[int] = []
        with self._lock:
            self._batches += 1
            for row, key in enumerate(keys):
                self._queries += 1
                cached = self._lookup(key, tlist[row])
                if cached is not None:
                    self._hits += 1
                    results[row] = cached
                else:
                    self._misses += 1
                    miss_rows.append(row)
        if miss_rows:
            timings: Dict[str, float] = {}
            started = time.perf_counter()
            outs = self._compute_many_raw(
                graph,
                [seeds_list[r] for r in miss_rows],
                excluded,
                all_scopes,
                [tlist[r] for r in miss_rows],
                timings,
            )
            elapsed = time.perf_counter() - started
            with self._lock:
                self._compute_seconds += elapsed
                self._merge_stage_seconds(timings)
                for row, out in zip(miss_rows, outs):
                    self._store(keys[row], tlist[row], out)
            for row, out in zip(miss_rows, outs):
                results[row] = out
        return results  # type: ignore[return-value]

    def _compute_many_raw(
        self,
        graph: ASGraph,
        seeds_list: Sequence[Mapping[int, Tuple[int, ...]]],
        excluded: FrozenSet[_Link],
        scopes: Mapping[int, FrozenSet[int]],
        targets_list: Sequence[Optional[FrozenSet[int]]],
        timings: Dict[str, float],
    ) -> List[RoutingOutcome]:
        """Compute every row, no cache involvement.

        Under the fast kernel, rows whose announcements are all plain
        (every seed announces its own one-hop path) go through one
        :func:`compute_routes_many` propagation; forged-path rows — and
        every row under the legacy kernel — get one kernel run each.
        """
        results: List[Optional[RoutingOutcome]] = [None] * len(seeds_list)
        batchable = [
            i
            for i, seeds in enumerate(seeds_list)
            if self.kernel == "fast"
            and all(path == (asn,) for asn, path in seeds.items())
        ]
        if batchable:
            specs = [tuple(sorted(seeds_list[i])) for i in batchable]
            present = {asn for spec in specs for asn in spec}
            batch = compute_routes_many(
                graph,
                specs,
                targets=[targets_list[i] for i in batchable],
                excluded_links=excluded or None,
                origin_export_scopes={
                    a: s for a, s in scopes.items() if a in present
                }
                or None,
                stage_timings=timings,
            )
            for row, i in enumerate(batchable):
                results[i] = batch.outcome(row)
        for i, seeds in enumerate(seeds_list):
            if results[i] is None:
                results[i] = self._compute(
                    graph,
                    seeds,
                    excluded_links=excluded,
                    origin_export_scopes={
                        a: scopes[a] for a in seeds if a in scopes
                    },
                    targets=targets_list[i],
                    stage_timings=timings,
                )
        return results  # type: ignore[return-value]

    def _merge_stage_seconds(self, timings: Mapping[str, float]) -> None:
        """Fold one kernel run's stage timings into the counters (lock held)."""
        for stage, seconds in timings.items():
            self._stage_seconds[stage] = self._stage_seconds.get(stage, 0.0) + seconds

    def path(self, graph: ASGraph, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        """Memoized, early-exiting equivalent of
        :func:`repro.asgraph.routing.as_path`."""
        return self.outcome(graph, (dst,), targets=frozenset((src,))).path(src)

    def paths_many(
        self,
        graph: ASGraph,
        pairs: object,
        workers: Optional[int] = None,
        chunk_size: int = 8,
    ):
        """Batch path queries through one grouped kernel pass.

        The typed form takes a :class:`~repro.serve.api.PathBatch`
        (queries plus the pool fan-out knobs) and returns a
        :class:`~repro.serve.api.PathBatchResult` — per-query
        :class:`~repro.serve.api.PathResult` rows, input order preserved,
        with ``.mapping()`` recovering the legacy dict view.  The legacy
        form — an iterable of ``(src, dst)`` tuples returning
        ``{(src, dst): path or None}`` — still works but emits a
        ``DeprecationWarning``; build a ``PathBatch`` instead.

        Queries are grouped by destination — one kernel run per origin with
        the merged source set as its early-exit targets — and answered from
        (and stored into) the cache.  With ``workers`` set, destinations
        that miss the cache are chunked and fanned out across a
        ``ProcessPoolExecutor``; the inputs are plain picklable values and
        the returned outcomes are folded back into the cache, so a parallel
        batch warms the cache exactly like a serial one.
        """
        from repro.serve.api import PathBatch, PathBatchResult, PathResult

        if isinstance(pairs, PathBatch):
            batch = pairs
            mapping = self._paths_many_pairs(
                graph,
                [(q.src, q.dst) for q in batch.queries],
                workers=workers if workers is not None else batch.workers,
                chunk_size=batch.chunk_size if chunk_size == 8 else chunk_size,
            )
            return PathBatchResult(
                results=tuple(
                    PathResult(src=q.src, dst=q.dst, path=mapping[(q.src, q.dst)])
                    for q in batch.queries
                )
            )
        warnings.warn(
            "paths_many(graph, pairs) with raw tuples is deprecated; "
            "pass a repro.serve.api.PathBatch",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._paths_many_pairs(
            graph, pairs, workers=workers, chunk_size=chunk_size
        )

    def _paths_many_pairs(
        self,
        graph: ASGraph,
        pairs: Iterable[Tuple[int, int]],
        workers: Optional[int] = None,
        chunk_size: int = 8,
    ) -> Dict[Tuple[int, int], Optional[Tuple[int, ...]]]:
        by_dst: Dict[int, set] = {}
        order: List[Tuple[int, int]] = []
        for src, dst in pairs:
            by_dst.setdefault(dst, set()).add(src)
            order.append((src, dst))
        with self._lock:
            self._batches += 1

        outcomes: Dict[int, RoutingOutcome] = {}
        misses: List[int] = []
        fp = self.fingerprint(graph)
        for dst, srcs in by_dst.items():
            key = self._base_key(fp, {dst: (dst,)}, frozenset(), {})
            with self._lock:
                self._queries += 1
                cached = self._lookup(key, frozenset(srcs))
                if cached is not None:
                    self._hits += 1
                    outcomes[dst] = cached
                else:
                    self._misses += 1
                    misses.append(dst)

        if workers is not None and workers > 1 and len(misses) > 1:
            with self._lock:
                self._parallel_batches += 1
            jobs = [
                (dst, tuple(sorted(by_dst[dst]))) for dst in sorted(misses)
            ]
            chunks = [
                jobs[i : i + chunk_size] for i in range(0, len(jobs), chunk_size)
            ]
            from concurrent.futures import ProcessPoolExecutor

            # The graph ships to each worker exactly once, via the pool
            # initializer (not re-pickled per chunk); workers compile their
            # GraphIndex once and reuse it across chunks.
            shared_index = graph_index(graph) if self.kernel == "fast" else None
            started = time.perf_counter()
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_pool_worker,
                initargs=(graph, self.kernel),
            ) as pool:
                for chunk_result in pool.map(_compute_chunk, chunks):
                    for dst, targets, outcome, timings in chunk_result:
                        if shared_index is not None and isinstance(
                            outcome, CompactOutcome
                        ):
                            # Drop the worker's unpickled index copy in
                            # favour of the parent's shared snapshot.
                            outcome.rebind_index(shared_index)
                        outcomes[dst] = outcome
                        key = self._base_key(fp, {dst: (dst,)}, frozenset(), {})
                        with self._lock:
                            # Workers ship their kernel stage timings home
                            # so --engine-stats breakdowns cover parallel
                            # batches too, not just the wall-clock total.
                            self._merge_stage_seconds(timings)
                            self._store(key, frozenset(targets), outcome)
            with self._lock:
                self._compute_seconds += time.perf_counter() - started
        elif misses:
            # Sorted like the parallel branch, so cache-store order and
            # obs span/counter streams are stable across ``workers``.
            miss_order = sorted(misses)
            tgt_list = [frozenset(by_dst[dst]) for dst in miss_order]
            timings: Dict[str, float] = {}
            started = time.perf_counter()
            outs = self._compute_many_raw(
                graph,
                [{dst: (dst,)} for dst in miss_order],
                frozenset(),
                {},
                tgt_list,
                timings,
            )
            elapsed = time.perf_counter() - started
            with self._lock:
                self._compute_seconds += elapsed
                self._merge_stage_seconds(timings)
                for dst, tgts, outcome in zip(miss_order, tgt_list, outs):
                    key = self._base_key(fp, {dst: (dst,)}, frozenset(), {})
                    self._store(key, tgts, outcome)
            outcomes.update(zip(miss_order, outs))

        # ``order`` replays the caller's pairs (duplicates included) so the
        # result dict is built in input order regardless of batching.
        return {(src, dst): outcomes[dst].path(src) for src, dst in order}

    def session(
        self,
        graph: ASGraph,
        origins: _OriginsArg,
        excluded_links: Optional[Iterable[_Link]] = None,
        origin_export_scopes: Optional[Mapping[int, FrozenSet[int]]] = None,
        *,
        incremental: Optional[bool] = None,
    ):
        """A stateful routing session over one announcement set.

        Returns a :class:`~repro.asgraph.incremental.DynamicRoutingSession`
        (delta maintenance on churn events) for the fast kernel, or a
        :class:`~repro.asgraph.incremental.RecomputeSession` (one kernel
        run per state change, same API) for the legacy kernel.
        ``incremental`` overrides the kernel-based choice — pass ``False``
        to correctness-diff the incremental kernel against full recompute.

        Sessions are live views, not cache entries: they share nothing with
        the outcome cache and are not invalidated by :meth:`invalidate`
        (they watch ``graph.version`` themselves).
        """
        with self._lock:
            self._sessions += 1
        use_incremental = self.kernel == "fast" if incremental is None else incremental
        if use_incremental:
            return DynamicRoutingSession(
                graph,
                origins,
                excluded_links=excluded_links,
                origin_export_scopes=origin_export_scopes,
            )
        return RecomputeSession(
            graph,
            origins,
            excluded_links=excluded_links,
            origin_export_scopes=origin_export_scopes,
            compute=self._compute,
        )

    # -- instrumentation -----------------------------------------------------

    def stats(self) -> EngineStats:
        with self._lock:
            return EngineStats(
                queries=self._queries,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=self._num_outcomes,
                compute_seconds=self._compute_seconds,
                stage_seconds=dict(self._stage_seconds),
                batches=self._batches,
                parallel_batches=self._parallel_batches,
                sessions=self._sessions,
            )


#: Per-worker state installed by the pool initializer: the one graph this
#: pool routes over, and the kernel callable matching the parent engine.
_worker_graph: Optional[ASGraph] = None
_worker_compute = compute_routes


def _init_pool_worker(graph: ASGraph, kernel: str) -> None:
    """Pool initializer: receive the graph once and pre-compile its index."""
    global _worker_graph, _worker_compute
    _worker_graph = graph
    _worker_compute = _KERNELS[kernel]
    if kernel == "fast":
        graph_index(graph)  # compile once; every chunk in this worker reuses it


def _compute_chunk(
    chunk: Sequence[Tuple[int, Tuple[int, ...]]]
) -> List[Tuple[int, Tuple[int, ...], RoutingOutcome, Dict[str, float]]]:
    """Process-pool worker: compute one chunk of per-destination outcomes,
    each paired with its kernel stage timings for the parent to merge."""
    graph = _worker_graph
    assert graph is not None, "_init_pool_worker did not run"
    results = []
    for dst, targets in chunk:
        timings: Dict[str, float] = {}
        outcome = _worker_compute(
            graph, (dst,), targets=frozenset(targets), stage_timings=timings
        )
        results.append((dst, targets, outcome, timings))
    return results


_shared_lock = threading.Lock()
_shared: Optional[RoutingEngine] = None


def shared_engine() -> RoutingEngine:
    """The process-wide engine every migrated caller defaults to."""
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = RoutingEngine()
        return _shared


def set_shared_engine(engine: Optional[RoutingEngine]) -> None:
    """Replace (or, with ``None``, reset) the process-wide engine."""
    global _shared
    with _shared_lock:
        _shared = engine
