"""Stateful incremental route maintenance on the flat-array substrate.

The month-trace workload (:mod:`repro.bgpsim.trace`) asks the same question
thousands of times: *given this origin, and this slightly-different set of
failed links, what are the vantage paths now?*  Answering every churn event
with a full Gao-Rexford propagation — even the flat-array one — makes a
month x thousands-of-prefixes sweep O(events · (V + E)).  Classic
incremental SPF observations apply here: a single link event invalidates
only the route subtree that crossed the link, and the rest of the forest is
provably untouched.

:class:`DynamicRoutingSession` holds the ``plen``/``parent``/``kind``/
``seed`` arrays of :func:`~repro.asgraph.fastpath.compute_routes_fast` as
*mutable* per-origin state, plus a children index over the parent-pointer
forest.  On :meth:`~DynamicRoutingSession.exclude_link`:

- a link that is not a parent edge of the forest is a guaranteed no-op
  (removing never-chosen candidates cannot change any per-node minimum):
  O(1);
- otherwise the subtree under the broken edge is detached and repaired in
  Gao-Rexford stage order, re-offering from the intact frontier with the
  same distance-bucket tiebreaks as a fresh run.  Stage-1/2 labels outside
  the subtree are provably unchanged by a removal, but a detached node
  whose route *shortens* while degrading rank (customer -> provider) can
  steal intact provider-kind customers — the stage-3 repair therefore
  carries an improve-detach cascade that re-opens any intact provider
  route beaten by a repaired label.

On :meth:`~DynamicRoutingSession.restore_link`, a first-order check asks
whether any offer across the restored link beats the label of either
endpoint; if not, the state is already the fixpoint (labels away from the
link are functions of unchanged labels) and the event is O(degree).  A
restore that matters rebuilds the session with one full kernel run —
additions cascade improvements *and* rank-upgrade worsenings and are not
worth a bespoke repair at this workload's restore rates.

Equivalence guarantee: after any sequence of events, the session state is
bit-for-bit what ``compute_routes_fast(graph, origins,
excluded_links=session.excluded_links, ...)`` would return — same paths,
same kinds, same tiebreaks.  ``tests/test_incremental.py`` pins this with
a hypothesis event-sequence property and hand-built adversarial
topologies; ``benchmarks/bench_incremental.py`` re-checks it on every run.

Sessions whose origins announce forged tails (crafted multi-hop paths)
always repair via full rebuild: re-parenting a node onto a different seed
changes which neighbours its tail filter blocks, which can leak route
changes outside the detached subtree.  The no-op fast paths still apply.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.asgraph.fastpath import CompactOutcome, compute_routes_fast
from repro.asgraph.index import graph_index
from repro.asgraph.relationships import RouteKind
from repro.asgraph.routing import Route, _normalise_origins, _OriginsArg
from repro.asgraph.topology import ASGraph

__all__ = ["SessionStats", "DynamicRoutingSession", "RecomputeSession"]

_ORIGIN = int(RouteKind.ORIGIN)
_CUSTOMER = int(RouteKind.CUSTOMER)
_PEER = int(RouteKind.PEER)
_PROVIDER = int(RouteKind.PROVIDER)

_Link = FrozenSet[int]


@dataclass
class SessionStats:
    """Event accounting for one routing session."""

    #: exclude/restore calls that changed the exclusion set
    events: int = 0
    #: events proven routing-neutral without touching any route
    noops: int = 0
    #: exclusions repaired by detaching and re-offering a subtree
    subtree_repairs: int = 0
    #: events answered with a full kernel rerun (restores that matter,
    #: forged-tail sessions, graph mutations)
    full_rebuilds: int = 0
    #: nodes detached across all repairs (initial subtrees + improve-detach)
    nodes_detached: int = 0
    #: nodes re-finalised with a route across all repairs
    nodes_repaired: int = 0
    #: restores answered by replaying the last repair's undo log
    undo_restores: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "events": self.events,
            "noops": self.noops,
            "subtree_repairs": self.subtree_repairs,
            "full_rebuilds": self.full_rebuilds,
            "nodes_detached": self.nodes_detached,
            "nodes_repaired": self.nodes_repaired,
            "undo_restores": self.undo_restores,
        }


class DynamicRoutingSession:
    """Mutable per-origin routing state with delta maintenance.

    Create one per origin (or announcement set), then drive it with
    :meth:`exclude_link` / :meth:`restore_link` / :meth:`set_excluded` and
    query with :meth:`path` / :meth:`route` / :meth:`outcome`.  Obtain
    sessions through :meth:`repro.asgraph.engine.RoutingEngine.session`,
    which selects this class or the :class:`RecomputeSession` fallback by
    kernel.

    The graph is snapshotted via its cached
    :class:`~repro.asgraph.index.GraphIndex`; mutating the graph mid-session
    is detected on the next event (via ``graph.version``) and answered with
    a rebuild.
    """

    def __init__(
        self,
        graph: ASGraph,
        origins: _OriginsArg,
        *,
        excluded_links: Optional[Iterable[_Link]] = None,
        origin_export_scopes: Optional[Mapping[int, FrozenSet[int]]] = None,
    ) -> None:
        self.graph = graph
        seeds = _normalise_origins(origins)
        for asn in seeds:
            if asn not in graph:
                raise ValueError(f"origin AS{asn} not in topology")
        scopes = dict(origin_export_scopes) if origin_export_scopes else {}
        for asn in scopes:
            if asn not in seeds:
                raise ValueError(f"export scope given for non-origin AS{asn}")
        self._seeds = seeds
        self._scopes = scopes
        self._excluded: Set[_Link] = {
            frozenset(link) for link in (excluded_links or ())
        }
        #: undo log of the last subtree repair: (link, [(node, old labels)]).
        #: Valid only while the exclusion set stays exactly as that repair
        #: left it; lets a restore of the same link (the trace workload's
        #: dominant flap pattern) replay in O(affected) instead of a rebuild.
        self._undo: Optional[Tuple[_Link, List[Tuple[int, int, int, int, int]]]] = None
        self.stats = SessionStats()
        self._released = False
        self._bind_index()
        self._rebuild_full(count=False)

    # -- index/state plumbing ------------------------------------------------

    def __enter__(self) -> "DynamicRoutingSession":
        self._check_live()
        return self

    def __exit__(self, *_exc: object) -> None:
        # Guaranteed release even when the body raises — the
        # context-manager form is the recommended way to hold a session.
        self.release()

    def release(self) -> None:
        """Drop the session's routing state (undo log, children index,
        label arrays) so an evicted session cannot pin large per-origin
        arrays alive through lingering references.  Idempotent; any later
        event or query raises ``RuntimeError``.
        """
        if self._released:
            return
        self._released = True
        self._undo = None
        self._children = []
        self._plen = []
        self._parent = []
        self._kind = bytearray()
        self._seed = []
        self._num_routed = 0

    @property
    def released(self) -> bool:
        return self._released

    def _check_live(self) -> None:
        if self._released:
            raise RuntimeError("routing session has been released")

    def _bind_index(self) -> None:
        """(Re)compile the graph-derived structures."""
        self._graph_version = self.graph.version
        gi = graph_index(self.graph)
        self._gi = gi
        idx = gi.idx
        self._seed_list = sorted(self._seeds)
        self._seed_paths: Tuple[Tuple[int, ...], ...] = tuple(
            self._seeds[asn] for asn in self._seed_list
        )
        self._seed_tails: List[Optional[FrozenSet[int]]] = [
            frozenset(path) if len(path) > 1 else None for path in self._seed_paths
        ]
        #: forged tails leak route changes outside a detached subtree when a
        #: repair re-parents a node onto a different seed; those sessions
        #: repair via full rebuild (the no-op fast paths still apply)
        self._incremental_ok = all(tail is None for tail in self._seed_tails)
        self._scope_of: Dict[int, Set[int]] = {
            idx[asn]: {idx[b] for b in allowed if b in idx}
            for asn, allowed in self._scopes.items()
        }
        blocked: Set[Tuple[int, int]] = set()
        for link in self._excluded:
            pair = self._dense_pair(link)
            if pair is not None:
                blocked.add(pair)
                blocked.add((pair[1], pair[0]))
        self._blocked = blocked

    def _dense_pair(self, link: _Link) -> Optional[Tuple[int, int]]:
        if len(link) != 2:
            return None
        a, b = link
        idx = self._gi.idx
        ia = idx.get(a)
        ib = idx.get(b)
        if ia is None or ib is None:
            return None
        return (ia, ib)

    def _rebuild_full(self, count: bool = True) -> None:
        """Reset state from one full kernel run (the correctness anchor)."""
        out = compute_routes_fast(
            self.graph,
            self._seeds,
            excluded_links=frozenset(self._excluded),
            origin_export_scopes=self._scopes or None,
        )
        # Take ownership of the kernel's working arrays: the outcome object
        # is ours alone and is dropped here, so no aliasing escapes.
        self._plen: List[int] = out._plen
        self._parent: List[int] = out._parent
        self._kind: bytearray = out._kind
        self._seed: List[int] = out._seed
        self._num_routed = len(out)
        n = self._gi.n
        children: List[List[int]] = [[] for _ in range(n)]
        parent = self._parent
        for i in range(n):
            p = parent[i]
            if p >= 0:
                children[p].append(i)
        self._children = children
        self._undo = None
        if count:
            self.stats.full_rebuilds += 1

    def _maybe_rebind(self) -> bool:
        if self.graph.version == self._graph_version:
            return False
        self._bind_index()
        self._rebuild_full()
        return True

    # -- events --------------------------------------------------------------

    def exclude_link(self, link: Iterable[int]) -> bool:
        """Treat ``link`` as down.  Returns True if the exclusion set grew.

        O(1) when the link is not a parent edge of the current route
        forest; otherwise detaches and repairs the invalidated subtree.
        """
        self._check_live()
        link = frozenset(link)
        if link in self._excluded:
            return False
        self._maybe_rebind()
        self._excluded.add(link)
        self.stats.events += 1
        self._undo = None  # the exclusion set moved past the logged repair
        pair = self._dense_pair(link)
        if pair is None:
            self.stats.noops += 1
            return True
        ia, ib = pair
        self._blocked.add((ia, ib))
        self._blocked.add((ib, ia))
        # A parent-pointer forest uses a link in at most one direction.
        if self._parent[ia] == ib:
            broken = ia
        elif self._parent[ib] == ia:
            broken = ib
        else:
            # Never-chosen candidates: removing them changes no minimum.
            self.stats.noops += 1
            return True
        if self._incremental_ok:
            self._repair_exclude(broken, link)
            self.stats.subtree_repairs += 1
        else:
            self._rebuild_full()
        return True

    def restore_link(self, link: Iterable[int]) -> bool:
        """Undo an exclusion.  Returns True if the exclusion set shrank.

        O(degree) when no offer across the restored link beats either
        endpoint's current label (the state is already the fixpoint);
        otherwise the session rebuilds with one kernel run.
        """
        self._check_live()
        link = frozenset(link)
        if link not in self._excluded:
            return False
        self._maybe_rebind()
        self._excluded.discard(link)
        self.stats.events += 1
        undo = self._undo
        self._undo = None
        pair = self._dense_pair(link)
        if pair is None:
            self.stats.noops += 1
            return True
        ia, ib = pair
        self._blocked.discard((ia, ib))
        self._blocked.discard((ib, ia))
        if undo is not None and undo[0] == link:
            # The exclusion set is back to exactly what it was before the
            # logged repair, so reverting the repair's label changes *is*
            # the fresh fixpoint for it.
            self._apply_undo(undo[1])
            self.stats.undo_restores += 1
            return True
        if self._restore_matters(ia, ib):
            self._rebuild_full()
        else:
            self.stats.noops += 1
        return True

    def set_excluded(self, links: Iterable[Iterable[int]]) -> bool:
        """Move the exclusion set to exactly ``links`` (diffed per link)."""
        self._check_live()
        target = {frozenset(link) for link in links}
        changed = False
        for link in sorted(self._excluded - target, key=sorted):
            changed |= self.restore_link(link)
        for link in sorted(target - self._excluded, key=sorted):
            changed |= self.exclude_link(link)
        return changed

    # -- restore first-order check -------------------------------------------

    @staticmethod
    def _in_row(start, adj, u: int, v: int) -> bool:
        lo, hi = start[u], start[u + 1]
        j = bisect_left(adj, v, lo, hi)
        return j < hi and adj[j] == v

    def _offer_allowed(self, u: int, v: int) -> bool:
        """Export filters for a (routed) ``u`` offering to neighbour ``v``."""
        tail = self._seed_tails[self._seed[u]]
        if tail is not None and self._gi.asns[v] in tail:
            return False
        if self._kind[u] == _ORIGIN:
            allowed = self._scope_of.get(u)
            if allowed is not None and v not in allowed:
                return False
        return True

    def _up_offer_beats(self, x: int, p: int) -> bool:
        """Would ``x``'s customer-route offer displace provider ``p``?"""
        plen, kind, parent = self._plen, self._kind, self._parent
        if not plen[x] or kind[x] > _CUSTOMER or not self._offer_allowed(x, p):
            return False
        if not plen[p]:
            return True
        if kind[p] == _ORIGIN:
            return False
        if kind[p] > _CUSTOMER:
            return True
        length = plen[x] + 1
        return length < plen[p] or (length == plen[p] and x < parent[p])

    def _peer_offer_beats(self, x: int, q: int) -> bool:
        plen, kind, parent = self._plen, self._kind, self._parent
        if not plen[x] or kind[x] > _CUSTOMER or not self._offer_allowed(x, q):
            return False
        if not plen[q]:
            return True
        if kind[q] < _PEER:
            return False
        if kind[q] > _PEER:
            return True
        length = plen[x] + 1
        return length < plen[q] or (length == plen[q] and x < parent[q])

    def _down_offer_beats(self, x: int, c: int) -> bool:
        plen, kind, parent = self._plen, self._kind, self._parent
        if not plen[x] or not self._offer_allowed(x, c):
            return False
        if not plen[c]:
            return True
        if kind[c] != _PROVIDER:
            return False
        length = plen[x] + 1
        return length < plen[c] or (length == plen[c] and x < parent[c])

    def _restore_matters(self, ia: int, ib: int) -> bool:
        """Does any offer across the restored link beat a current label?

        Labels elsewhere are functions of unchanged labels, so "no beat at
        either endpoint" proves the whole state is already the fixpoint.
        """
        gi = self._gi
        if self._in_row(gi.prov_start, gi.prov_adj, ia, ib):  # ib provides ia
            if self._up_offer_beats(ia, ib) or self._down_offer_beats(ib, ia):
                return True
        if self._in_row(gi.prov_start, gi.prov_adj, ib, ia):  # ia provides ib
            if self._up_offer_beats(ib, ia) or self._down_offer_beats(ia, ib):
                return True
        if self._in_row(gi.peer_start, gi.peer_adj, ia, ib):
            if self._peer_offer_beats(ia, ib) or self._peer_offer_beats(ib, ia):
                return True
        return False

    # -- subtree repair ------------------------------------------------------

    def _apply_undo(self, entries: List[Tuple[int, int, int, int, int]]) -> None:
        """Revert every label change logged by the last subtree repair."""
        plen, parent, kind, seed = self._plen, self._parent, self._kind, self._seed
        children = self._children
        routed_delta = 0
        for node, _pl, _pa, _ki, _se in entries:
            p = parent[node]
            if p >= 0:
                children[p].remove(node)
        for node, pl, pa, ki, se in entries:
            if plen[node]:
                routed_delta -= 1
            if pl:
                routed_delta += 1
            plen[node] = pl
            parent[node] = pa
            kind[node] = ki
            seed[node] = se
        for node, _pl, pa, _ki, _se in entries:
            if pa >= 0:
                children[pa].append(node)
        self._num_routed += routed_delta

    def _repair_exclude(self, broken: int, link: _Link) -> None:
        """Detach the subtree under ``broken`` and re-route it in stage order.

        Equivalence argument (plain announcements only; link *removals*):
        stage-1/2 labels of nodes outside the detached subtree cannot
        change — their chosen offers survive, and surviving non-chosen
        candidates only lengthen, so no minimum or tiebreak moves.  Intact
        provider-kind labels *can* improve when a repaired label shortens
        (rank degradation customer->provider can shorten the path while
        worsening the rank); the stage-3 loop below detects every such
        offer and re-opens the beaten node's subtree, processing it in the
        same global distance-bucket order a fresh run would.
        """
        gi = self._gi
        plen, parent, kind, seed = self._plen, self._parent, self._kind, self._seed
        children = self._children
        asns = gi.asns
        blocked = self._blocked
        scope_of = self._scope_of
        tails = self._seed_tails
        prov_start, prov_adj = gi.prov_start, gi.prov_adj
        cust_start, cust_adj = gi.cust_start, gi.cust_adj
        peer_start, peer_adj = gi.peer_start, gi.peer_adj

        # Detach: collect forest descendants, clear labels, drop child lists
        # (all children of a detached node are detached with it).
        children[parent[broken]].remove(broken)
        detached: List[int] = [broken]
        stack = [broken]
        while stack:
            node = stack.pop()
            kids = children[node]
            if kids:
                detached.extend(kids)
                stack.extend(kids)
                children[node] = []
        undo_log: List[Tuple[int, int, int, int, int]] = [
            (node, plen[node], parent[node], kind[node], seed[node])
            for node in detached
        ]
        undo_seen = set(detached)
        for node in detached:
            plen[node] = 0
            parent[node] = -1
            kind[node] = 0
            seed[node] = -1
        self._num_routed -= len(detached)
        self.stats.nodes_detached += len(detached)
        region = set(detached)

        pend: Dict[int, Tuple[int, int]] = {}
        buckets: Dict[int, List[int]] = {}

        def may_offer(u: int, v: int) -> bool:
            if (u, v) in blocked:
                return False
            tail = tails[seed[u]]
            if tail is not None and asns[v] in tail:
                return False
            if kind[u] == _ORIGIN:
                allowed = scope_of.get(u)
                if allowed is not None and v not in allowed:
                    return False
            return True

        def offer(v: int, length: int, via: int) -> None:
            cur = pend.get(v)
            if cur is None or length < cur[0]:
                pend[v] = (length, via)
                bucket = buckets.get(length)
                if bucket is None:
                    buckets[length] = [v]
                else:
                    bucket.append(v)
            elif length == cur[0] and via < cur[1]:
                pend[v] = (length, via)

        repaired: List[int] = []

        def finalize(v: int, length: int, via: int, kind_val: int) -> None:
            plen[v] = length
            parent[v] = via
            kind[v] = kind_val
            seed[v] = seed[via]
            children[via].append(v)
            self._num_routed += 1
            repaired.append(v)

        # Stage 1: customer routes.  Seed every detached node from its
        # (stage-1 routed) customers, then bucket-propagate inside the
        # region; offers to intact nodes are provably no-ops on a removal.
        for d in detached:
            for j in range(cust_start[d], cust_start[d + 1]):
                x = cust_adj[j]
                if plen[x] and kind[x] <= _CUSTOMER and may_offer(x, d):
                    offer(d, plen[x] + 1, x)
        while buckets:
            cur = min(buckets)
            for v in buckets.pop(cur):
                entry = pend.get(v)
                if plen[v] or entry is None or entry[0] != cur:
                    continue
                finalize(v, cur, entry[1], _CUSTOMER)
                for j in range(prov_start[v], prov_start[v + 1]):
                    p = prov_adj[j]
                    if not plen[p] and p in region and may_offer(v, p):
                        offer(p, cur + 1, v)
        pend.clear()

        # Stage 2: peer routes for regional nodes still unrouted, each from
        # its own peer row against the repaired stage-1 state.  (Assignments
        # cannot feed each other: peer routes are not exported to peers.)
        for d in detached:
            if plen[d]:
                continue
            best_len = 0
            best_via = -1
            for j in range(peer_start[d], peer_start[d + 1]):
                x = peer_adj[j]
                if not plen[x] or kind[x] > _CUSTOMER or not may_offer(x, d):
                    continue
                length = plen[x] + 1
                if best_len == 0 or length < best_len or (
                    length == best_len and x < best_via
                ):
                    best_len = length
                    best_via = x
            if best_len:
                finalize(d, best_len, best_via, _PEER)

        # Stage 3: provider routes, with the improve-detach cascade.
        def seed_from_providers(d: int) -> None:
            for j in range(prov_start[d], prov_start[d + 1]):
                x = prov_adj[j]
                if plen[x] and may_offer(x, d):
                    offer(d, plen[x] + 1, x)

        def push_down(u: int) -> None:
            length = plen[u] + 1
            for j in range(cust_start[u], cust_start[u + 1]):
                v = cust_adj[j]
                if not may_offer(u, v):
                    continue
                pv = plen[v]
                if pv:
                    # Only a provider-kind route can be displaced, and only
                    # by a strictly better (or tiebreak-winning) offer.
                    if kind[v] == _PROVIDER and (
                        length < pv or (length == pv and u < parent[v])
                    ):
                        offer(v, length, u)
                elif v in region:
                    offer(v, length, u)

        down_sources = list(repaired)
        for d in detached:
            if not plen[d]:
                seed_from_providers(d)
        for u in down_sources:
            push_down(u)

        def improve_detach(root: int) -> None:
            """Re-open an intact provider route beaten by a repaired label.

            The root is re-finalised immediately by the caller; its
            descendants (all intact: a regional node cannot sit below a
            node whose label exceeds the current bucket) re-enter the
            bucket queue at lengths >= the current bucket.
            """
            children[parent[root]].remove(root)
            sub = [root]
            stack2 = [root]
            while stack2:
                node = stack2.pop()
                kids = children[node]
                if kids:
                    sub.extend(kids)
                    stack2.extend(kids)
                    children[node] = []
            for node in sub:
                if node not in undo_seen:
                    undo_seen.add(node)
                    undo_log.append(
                        (node, plen[node], parent[node], kind[node], seed[node])
                    )
            for node in sub:
                plen[node] = 0
                parent[node] = -1
                kind[node] = 0
                seed[node] = -1
            self._num_routed -= len(sub)
            self.stats.nodes_detached += len(sub)
            region.update(sub)
            for node in sub:
                if node != root:
                    # Stale candidates die with the detach; the rescan (and
                    # later pushes from re-finalised nodes) re-seed them.
                    pend.pop(node, None)
                    seed_from_providers(node)

        while buckets:
            cur = min(buckets)
            for v in buckets.pop(cur):
                entry = pend.get(v)
                if entry is None or entry[0] != cur:
                    continue
                via = entry[1]
                pv = plen[v]
                if pv:
                    # Re-validate at pop time: a duplicate bucket entry may
                    # surface after the node was already re-finalised.
                    if kind[v] != _PROVIDER or not (
                        cur < pv or (cur == pv and via < parent[v])
                    ):
                        continue
                    improve_detach(v)
                finalize(v, cur, via, _PROVIDER)
                push_down(v)

        self.stats.nodes_repaired += len(repaired)
        self._undo = (link, undo_log)

    # -- queries -------------------------------------------------------------

    @property
    def origins(self) -> Tuple[int, ...]:
        return tuple(self._seed_list)

    @property
    def excluded_links(self) -> FrozenSet[_Link]:
        return frozenset(self._excluded)

    def path(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to the prefix under the current exclusions."""
        self._check_live()
        i = self._gi.idx.get(asn)
        if i is None or not self._plen[i]:
            return None
        parent = self._parent
        chain: List[int] = []
        node = i
        while parent[node] >= 0:
            chain.append(node)
            node = parent[node]
        path = self._seed_paths[self._seed[node]]
        asns = self._gi.asns
        for node in reversed(chain):
            path = (asns[node],) + path
        return path

    def route(self, asn: int) -> Optional[Route]:
        path = self.path(asn)
        if path is None:
            return None
        return Route(path=path, kind=RouteKind(self._kind[self._gi.idx[asn]]))

    def outcome(self) -> CompactOutcome:
        """An immutable snapshot of the current state (arrays are copied)."""
        self._check_live()
        return CompactOutcome(
            self._gi,
            list(self._plen),
            list(self._parent),
            bytearray(self._kind),
            list(self._seed),
            self._seed_paths,
            tuple(self._seed_list),
            self._num_routed,
        )

    def __len__(self) -> int:
        return self._num_routed

    def verify(self) -> None:
        """Assert state equals a fresh full recompute (debug/test aid)."""
        fresh = compute_routes_fast(
            self.graph,
            self._seeds,
            excluded_links=frozenset(self._excluded),
            origin_export_scopes=self._scopes or None,
        )
        gi = self._gi
        for i, asn in enumerate(gi.asns):
            want = fresh.path(asn)
            got = self.path(asn)
            if want != got:
                raise AssertionError(
                    f"session diverged at AS{asn}: {got} != {want} "
                    f"(excluded={sorted(map(sorted, self._excluded))})"
                )
            want_kind = fresh._kind[i]
            if self._plen[i] and self._kind[i] != want_kind:
                raise AssertionError(
                    f"session kind diverged at AS{asn}: "
                    f"{self._kind[i]} != {want_kind}"
                )


class RecomputeSession:
    """Full-recompute fallback with the :class:`DynamicRoutingSession` API.

    Every state change invalidates the cached outcome; the next query pays
    one full kernel run.  Selected by
    :meth:`~repro.asgraph.engine.RoutingEngine.session` for the legacy
    kernel, and useful for correctness-diffing the incremental kernel.
    """

    def __init__(
        self,
        graph: ASGraph,
        origins: _OriginsArg,
        *,
        excluded_links: Optional[Iterable[_Link]] = None,
        origin_export_scopes: Optional[Mapping[int, FrozenSet[int]]] = None,
        compute=compute_routes_fast,
    ) -> None:
        self.graph = graph
        seeds = _normalise_origins(origins)
        for asn in seeds:
            if asn not in graph:
                raise ValueError(f"origin AS{asn} not in topology")
        scopes = dict(origin_export_scopes) if origin_export_scopes else {}
        for asn in scopes:
            if asn not in seeds:
                raise ValueError(f"export scope given for non-origin AS{asn}")
        self._seeds = seeds
        self._scopes = scopes
        self._compute = compute
        self._excluded: Set[_Link] = {
            frozenset(link) for link in (excluded_links or ())
        }
        self._outcome = None
        self.stats = SessionStats()
        self._released = False

    def __enter__(self) -> "RecomputeSession":
        if self._released:
            raise RuntimeError("routing session has been released")
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()

    def release(self) -> None:
        """Drop the cached outcome; idempotent (API parity with
        :meth:`DynamicRoutingSession.release`)."""
        self._released = True
        self._outcome = None

    @property
    def released(self) -> bool:
        return self._released

    def _current(self):
        if self._released:
            raise RuntimeError("routing session has been released")
        if self._outcome is None:
            self._outcome = self._compute(
                self.graph,
                self._seeds,
                excluded_links=frozenset(self._excluded),
                origin_export_scopes=self._scopes or None,
            )
            self.stats.full_rebuilds += 1
        return self._outcome

    def exclude_link(self, link: Iterable[int]) -> bool:
        if self._released:
            raise RuntimeError("routing session has been released")
        link = frozenset(link)
        if link in self._excluded:
            return False
        self._excluded.add(link)
        self._outcome = None
        self.stats.events += 1
        return True

    def restore_link(self, link: Iterable[int]) -> bool:
        if self._released:
            raise RuntimeError("routing session has been released")
        link = frozenset(link)
        if link not in self._excluded:
            return False
        self._excluded.discard(link)
        self._outcome = None
        self.stats.events += 1
        return True

    def set_excluded(self, links: Iterable[Iterable[int]]) -> bool:
        if self._released:
            raise RuntimeError("routing session has been released")
        target = {frozenset(link) for link in links}
        if target == self._excluded:
            return False
        self.stats.events += len(target ^ self._excluded)
        self._excluded = target
        self._outcome = None
        return True

    @property
    def origins(self) -> Tuple[int, ...]:
        return tuple(sorted(self._seeds))

    @property
    def excluded_links(self) -> FrozenSet[_Link]:
        return frozenset(self._excluded)

    def path(self, asn: int) -> Optional[Tuple[int, ...]]:
        return self._current().path(asn)

    def route(self, asn: int) -> Optional[Route]:
        return self._current().route(asn)

    def outcome(self):
        return self._current()

    def __len__(self) -> int:
        return len(self._current())

    def verify(self) -> None:
        """Parity with the incremental session's API (always consistent)."""
