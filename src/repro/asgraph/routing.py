"""Gao-Rexford route computation over an :class:`~repro.asgraph.ASGraph`.

Computes, for every AS, its best policy-compliant route towards a prefix
announced by one or more origin ASes.  Multiple origins are exactly the
hijack setting of §3.2: the victim and the attacker both announce the same
prefix, and every AS independently picks the announcement it prefers — the
set of ASes that pick the attacker is the *capture set*.

The algorithm is the standard three-stage breadth-first computation used by
the AS-path inference literature the paper builds on (Gao 2001) and by BGP
attack studies:

1. *customer routes* propagate from the origins up provider links;
2. *peer routes* are learned one hop across peering links;
3. *provider routes* propagate down customer links.

Within a stage, ties are broken by AS-path length and then by lowest
next-hop AS number (a deterministic stand-in for BGP's router-ID tiebreak).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.asgraph.relationships import RouteKind
from repro.asgraph.topology import ASGraph

__all__ = ["Route", "RoutingOutcome", "compute_routes", "as_path"]


@dataclass(frozen=True)
class Route:
    """One AS's chosen route towards the announced prefix.

    ``path`` runs from the choosing AS to (and including) the origin's
    announced path, e.g. ``(7, 3, 1)`` means AS7 reaches the prefix via AS3,
    with AS1 the origin.
    """

    path: Tuple[int, ...]
    kind: RouteKind

    @property
    def origin(self) -> int:
        return self.path[-1]

    @property
    def next_hop(self) -> Optional[int]:
        """The neighbour the route was learned from (None for origins)."""
        return self.path[1] if len(self.path) > 1 else None

    def __len__(self) -> int:
        return len(self.path)


class RoutingOutcome:
    """The routes every AS selected for one announced prefix."""

    def __init__(self, routes: Dict[int, Route], origins: Tuple[int, ...]) -> None:
        self._routes = routes
        self._origins = origins

    @property
    def origins(self) -> Tuple[int, ...]:
        return self._origins

    def route(self, asn: int) -> Optional[Route]:
        return self._routes.get(asn)

    def path(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to the prefix (inclusive), or None."""
        route = self._routes.get(asn)
        return route.path if route is not None else None

    def reachable_ases(self) -> FrozenSet[int]:
        return frozenset(self._routes)

    def capture_set(self, origin: int) -> FrozenSet[int]:
        """ASes whose selected route terminates at ``origin``.

        With a victim and an attacker both announcing, this is the set of
        ASes the attacker attracts (the hijack's blast radius).  Origins
        themselves are included (they route to themselves).

        For *forged-origin* announcements (an attacker announcing
        ``(attacker, victim)``) the path terminates at the victim, so use
        :meth:`capture_set_via` with the attacker's ASN instead.
        """
        return frozenset(asn for asn, route in self._routes.items() if route.origin == origin)

    def capture_set_via(self, announcer: int) -> FrozenSet[int]:
        """ASes whose selected path crosses ``announcer``.

        When ``announcer`` originated a (possibly forged) announcement for
        this prefix, every selected path containing it was attracted by
        that announcement — its actual traffic lands at the announcer
        regardless of the AS numbers it prepended.
        """
        return frozenset(
            asn for asn, route in self._routes.items() if announcer in route.path
        )

    def ases_on_path(self, asn: int) -> FrozenSet[int]:
        """All ASes traversed from ``asn`` to the prefix, endpoints included."""
        path = self.path(asn)
        return frozenset(path) if path is not None else frozenset()

    def items(self) -> Iterable[Tuple[int, Route]]:
        return self._routes.items()

    def __len__(self) -> int:
        return len(self._routes)


_OriginsArg = Union[Iterable[int], Mapping[int, Sequence[int]]]


def compute_routes(
    graph: ASGraph,
    origins: _OriginsArg,
    excluded_links: Optional[Iterable[FrozenSet[int]]] = None,
    origin_export_scopes: Optional[Mapping[int, FrozenSet[int]]] = None,
    targets: Optional[FrozenSet[int]] = None,
    stage_timings: Optional[MutableMapping[str, float]] = None,
) -> RoutingOutcome:
    """Compute every AS's best Gao-Rexford route to a prefix.

    Parameters
    ----------
    graph:
        The AS topology.
    origins:
        Either an iterable of origin ASNs (each announcing ``(asn,)``), or a
        mapping ``asn -> announced_as_path`` for crafted announcements.  A
        crafted path must start with the announcing AS; e.g. an attacker 66
        forging origin 1 announces ``{66: (66, 1)}``.
    excluded_links:
        Links (as ``frozenset({a, b})`` pairs) to treat as down.  Used for
        failure what-ifs and for scoped announcements (an origin announcing
        via a subset of its providers excludes its other provider links)
        without mutating or copying the graph.
    origin_export_scopes:
        Optional per-origin restriction of which neighbours the origin
        announces to (``origin -> allowed neighbour set``).  This is how an
        interception attacker limits its blast radius (§3.2): announce the
        bogus route only to neighbours whose capture won't break the
        attacker's own forwarding path to the victim.
    targets:
        Optional early-exit set: stop as soon as every target AS has a
        route.  Routes for targets are exact (the staged computation
        finalises an AS only when no better route can still appear); other
        ASes may be missing from the outcome.  Used by the trace engine,
        which only needs vantage-point paths.  The exit is honoured within
        stage 1, between stages, within stage 2 (remaining targets are
        served from their own peer rows first; the rest of the peer
        frontier is only built if targets are still missing, since those
        routes feed stage 3), and within stage 3: a route assigned in an
        earlier stage is always preferred over anything a later stage could
        offer, so once every target is routed the computation can stop.
    stage_timings:
        Optional accumulator mapping; wall seconds spent in each
        propagation stage are *added* under ``"customer"``, ``"peer"`` and
        ``"provider"`` (the engine's per-stage instrumentation).

    Notes
    -----
    Loop prevention is enforced: an AS never accepts a path already
    containing its own number (this is what limits origin-forging attacks —
    the victim and ASes on the forged tail reject the announcement).
    """
    seeds = _normalise_origins(origins)
    for asn in seeds:
        if asn not in graph:
            raise ValueError(f"origin AS{asn} not in topology")
    excluded = frozenset(excluded_links) if excluded_links else frozenset()
    scopes = dict(origin_export_scopes) if origin_export_scopes else {}
    for asn in scopes:
        if asn not in seeds:
            raise ValueError(f"export scope given for non-origin AS{asn}")

    routes: Dict[int, Route] = {
        asn: Route(path=path, kind=RouteKind.ORIGIN) for asn, path in seeds.items()
    }

    # Shrinking early-exit set: a target is discarded the moment it is
    # routed, so the per-level done check is O(1) instead of O(|targets|).
    # Targets outside the topology can never be routed and keep the exit
    # from firing, same as the historical all()-scan behaviour.
    remaining = set(targets) - routes.keys() if targets is not None else None

    def usable(a: int, b: int) -> bool:
        if frozenset((a, b)) in excluded:
            return False
        # An origin only exports its own announcement within its scope; once
        # the route has propagated, downstream ASes export normally.
        scope = scopes.get(a)
        if scope is not None and routes.get(a) is not None and routes[a].kind is RouteKind.ORIGIN:
            return b in scope
        return True

    def done() -> bool:
        return remaining is not None and not remaining

    def stamp(stage: str, started: float) -> None:
        if stage_timings is not None:
            stage_timings[stage] = stage_timings.get(stage, 0.0) + (
                time.perf_counter() - started
            )

    # Stage 1: customer routes flow up provider links from the origins.
    # Routes are final as soon as they are assigned (no later stage can
    # displace a customer route), so the early exit applies here too.
    t0 = time.perf_counter()
    _propagate(
        graph,
        routes,
        sources=dict(routes),
        next_ases=lambda asn: (p for p in graph.providers(asn) if usable(asn, p)),
        kind=RouteKind.CUSTOMER,
        remaining=remaining,
    )
    stamp("customer", t0)

    # Stage 2: peer routes are learned across a single peering hop from the
    # stage-1 snapshot.
    if not done():
        t0 = time.perf_counter()
        stage1 = dict(routes)
        if remaining:
            # Serve remaining targets from their own peer rows first: if
            # that completes the target set, the whole-frontier candidate
            # build (only needed as stage-3 sources) is skipped entirely.
            for target in sorted(remaining):
                candidates = [
                    Route(path=(target,) + stage1[peer].path, kind=RouteKind.PEER)
                    for peer in graph.peers(target)
                    if peer in stage1
                    and target not in stage1[peer].path
                    and usable(peer, target)
                ]
                if candidates:
                    routes[target] = min(candidates, key=_route_sort_key)
                    remaining.discard(target)
        if not done():
            peer_candidates: Dict[int, List[Route]] = {}
            for asn, route in stage1.items():
                for peer in graph.peers(asn):
                    if peer in routes:
                        continue
                    if peer in route.path:
                        continue
                    if not usable(asn, peer):
                        continue
                    peer_candidates.setdefault(peer, []).append(
                        Route(path=(peer,) + route.path, kind=RouteKind.PEER)
                    )
            for asn, candidates in peer_candidates.items():
                routes[asn] = min(candidates, key=_route_sort_key)
                if remaining is not None:
                    remaining.discard(asn)
        stamp("peer", t0)

    # Stage 3: provider routes flow down customer links from everyone routed.
    if not done():
        t0 = time.perf_counter()
        _propagate(
            graph,
            routes,
            sources=dict(routes),
            next_ases=lambda asn: (c for c in graph.customers(asn) if usable(asn, c)),
            kind=RouteKind.PROVIDER,
            remaining=remaining,
        )
        stamp("provider", t0)

    return RoutingOutcome(routes, tuple(sorted(seeds)))


def as_path(graph: ASGraph, src: int, dst: int) -> Optional[Tuple[int, ...]]:
    """Convenience: the policy path from ``src`` to a prefix originated at ``dst``.

    Passes ``targets={src}`` so the staged early-exit applies instead of
    routing the whole topology for a single query.  (For repeated queries
    use :class:`repro.asgraph.engine.RoutingEngine`, which also memoises.)
    """
    outcome = compute_routes(graph, [dst], targets=frozenset((src,)))
    return outcome.path(src)


def _normalise_origins(origins: _OriginsArg) -> Dict[int, Tuple[int, ...]]:
    if isinstance(origins, Mapping):
        seeds: Dict[int, Tuple[int, ...]] = {}
        for asn, path in origins.items():
            path = tuple(path)
            if not path or path[0] != asn:
                raise ValueError(f"announced path for AS{asn} must start with AS{asn}: {path}")
            if len(set(path)) != len(path):
                raise ValueError(f"announced path for AS{asn} contains a loop: {path}")
            seeds[asn] = path
        if not seeds:
            raise ValueError("at least one origin is required")
        return seeds
    seeds = {int(asn): (int(asn),) for asn in origins}
    if not seeds:
        raise ValueError("at least one origin is required")
    return seeds


def _route_sort_key(route: Route) -> Tuple[int, int]:
    # Shorter path first, then lowest next-hop ASN (deterministic tiebreak).
    return (len(route.path), route.next_hop if route.next_hop is not None else -1)


def _propagate(
    graph: ASGraph,
    routes: Dict[int, Route],
    sources: Dict[int, Route],
    next_ases,
    kind: RouteKind,
    remaining=None,
) -> None:
    """Distance-synchronous BFS used by stages 1 and 3.

    Processes candidate routes in order of increasing path length so that an
    AS is finalised only once all candidates of its best length are known —
    this makes the lowest-next-hop tiebreak deterministic.  ``remaining``
    (the caller's shrinking set of unrouted targets, checked between levels,
    when every finalised route is final) allows an early exit once it
    empties.
    """
    # Pending candidates per target AS, discovered lazily.
    frontier: Dict[int, List[Route]] = {}

    def offer(target: int, via_route: Route) -> None:
        if target in routes:
            return
        if target in via_route.path:
            return  # loop prevention
        frontier.setdefault(target, []).append(
            Route(path=(target,) + via_route.path, kind=kind)
        )

    for asn, route in sources.items():
        for target in next_ases(asn):
            offer(target, route)

    while frontier:
        if remaining is not None and not remaining:
            return
        # Finalise every AS whose best candidate has the globally minimal
        # length this round; they cannot be beaten by later discoveries,
        # which are strictly longer.
        best_len = min(len(min(cands, key=len)) for cands in frontier.values())
        newly_routed: List[int] = []
        for asn in list(frontier):
            candidates = [r for r in frontier[asn] if len(r) == best_len]
            if not candidates:
                continue
            routes[asn] = min(candidates, key=_route_sort_key)
            del frontier[asn]
            newly_routed.append(asn)
            if remaining is not None:
                remaining.discard(asn)
        for asn in newly_routed:
            for target in next_ases(asn):
                offer(target, routes[asn])
