"""AS-level Internet topology and Gao-Rexford policy routing."""

from repro.asgraph.relationships import Relationship, RouteKind
from repro.asgraph.topology import ASGraph
from repro.asgraph.generator import TopologyConfig, generate_topology
from repro.asgraph.routing import Route, RoutingOutcome, as_path, compute_routes
from repro.asgraph.engine import EngineStats, RoutingEngine, shared_engine, set_shared_engine
from repro.asgraph.inference import InferenceResult, infer_relationships
from repro.asgraph.ixp import IXP, IXPModel, assign_ixps

__all__ = [
    "Relationship",
    "RouteKind",
    "ASGraph",
    "TopologyConfig",
    "generate_topology",
    "Route",
    "RoutingOutcome",
    "as_path",
    "compute_routes",
    "EngineStats",
    "RoutingEngine",
    "shared_engine",
    "set_shared_engine",
    "InferenceResult",
    "infer_relationships",
    "IXP",
    "IXPModel",
    "assign_ixps",
]
