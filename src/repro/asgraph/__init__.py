"""AS-level Internet topology and Gao-Rexford policy routing."""

from repro.asgraph.relationships import Relationship, RouteKind
from repro.asgraph.topology import ASGraph
from repro.asgraph.generator import TopologyConfig, generate_topology
from repro.asgraph.routing import Route, RoutingOutcome, as_path, compute_routes
from repro.asgraph.index import GraphIndex, graph_index
from repro.asgraph.fastpath import CompactOutcome, compute_routes_fast
from repro.asgraph.batch import BatchOutcome, compute_routes_many
from repro.asgraph.incremental import (
    DynamicRoutingSession,
    RecomputeSession,
    SessionStats,
)
from repro.asgraph.engine import (
    EngineStats,
    RoutingEngine,
    resolve_kernel,
    shared_engine,
    set_shared_engine,
)
from repro.asgraph.inference import InferenceResult, infer_relationships
from repro.asgraph.ixp import IXP, IXPModel, assign_ixps

__all__ = [
    "Relationship",
    "RouteKind",
    "ASGraph",
    "TopologyConfig",
    "generate_topology",
    "Route",
    "RoutingOutcome",
    "as_path",
    "compute_routes",
    "GraphIndex",
    "graph_index",
    "CompactOutcome",
    "compute_routes_fast",
    "BatchOutcome",
    "compute_routes_many",
    "DynamicRoutingSession",
    "RecomputeSession",
    "SessionStats",
    "EngineStats",
    "RoutingEngine",
    "resolve_kernel",
    "shared_engine",
    "set_shared_engine",
    "InferenceResult",
    "infer_relationships",
    "IXP",
    "IXPModel",
    "assign_ixps",
]
