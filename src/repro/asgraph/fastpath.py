"""Flat-array fast path for Gao-Rexford route computation.

Same three-stage algorithm as :func:`repro.asgraph.routing.compute_routes`
(customer routes up, one peering hop across, provider routes down; ties by
AS-path length then lowest next-hop AS number), rebuilt on top of the
compiled :class:`~repro.asgraph.index.GraphIndex` with **parent-pointer
routes**:

- the legacy kernel materialises a path tuple per candidate — every edge
  relaxation pays an O(path-length) tuple concatenation plus a ``Route``
  allocation, and a cached full outcome holds O(V · avg-path-length)
  tuples;
- here a candidate is three ints (total path length, via node, seed id).
  Finalised state is four flat arrays (``plen``/``parent``/``kind``/
  ``seed``), offers are O(1), a stage is O(V + E), and full AS paths are
  reconstructed lazily by walking predecessors only when a caller actually
  asks for them (:class:`CompactOutcome`).

Loop prevention over forged announced paths is preserved exactly: a node on
the *propagated* part of a candidate path is always already routed (the
kernel only extends finalised routes), so the legacy ``target in path``
check reduces to membership in the announcing seed's forged tail — an O(1)
frozenset probe against the seed the candidate descends from.

Outcome-for-outcome equivalence with the legacy kernel (including the
``targets`` early exit, ``excluded_links``, ``origin_export_scopes`` and
the tiebreak order) is pinned by ``tests/test_fastpath.py`` and re-checked
by ``benchmarks/bench_kernel.py`` on every benchmark run.
"""

from __future__ import annotations

import time
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Set,
    Tuple,
)

from repro.asgraph.index import GraphIndex, graph_index
from repro.asgraph.relationships import RouteKind
from repro.asgraph.routing import Route, _normalise_origins, _OriginsArg
from repro.asgraph.topology import ASGraph

__all__ = ["CompactOutcome", "compute_routes_fast"]

_ORIGIN = int(RouteKind.ORIGIN)
_CUSTOMER = int(RouteKind.CUSTOMER)
_PEER = int(RouteKind.PEER)
_PROVIDER = int(RouteKind.PROVIDER)


class CompactOutcome:
    """Routing outcome stored as parent-pointer arrays, materialised lazily.

    Exposes the :class:`~repro.asgraph.routing.RoutingOutcome` API
    (``path``/``route``/``reachable_ases``/``capture_set``/
    ``capture_set_via``/``ases_on_path``/``items``/``len``) so engine
    callers run unchanged.  A cached entry costs O(V) ints instead of
    O(V · avg-path-length) tuples; paths are rebuilt (and then memoised) by
    walking the predecessor chain only for the ASes a caller asks about.
    """

    __slots__ = (
        "_gi",
        "_plen",
        "_parent",
        "_kind",
        "_seed",
        "_seed_paths",
        "_origins",
        "_num_routed",
        "_paths",
        "_reachable",
    )

    def __init__(
        self,
        gi: GraphIndex,
        plen: List[int],
        parent: List[int],
        kind: bytearray,
        seed: List[int],
        seed_paths: Tuple[Tuple[int, ...], ...],
        origins: Tuple[int, ...],
        num_routed: int,
    ) -> None:
        self._gi = gi
        self._plen = plen
        self._parent = parent
        self._kind = kind
        self._seed = seed
        self._seed_paths = seed_paths
        self._origins = origins
        self._num_routed = num_routed
        self._paths: Dict[int, Tuple[int, ...]] = {}
        self._reachable: Optional[FrozenSet[int]] = None

    # -- RoutingOutcome API --------------------------------------------------

    @property
    def origins(self) -> Tuple[int, ...]:
        return self._origins

    def _path_of(self, i: int) -> Tuple[int, ...]:
        """Materialise node ``i``'s path by walking parents (memoised)."""
        paths = self._paths
        cached = paths.get(i)
        if cached is not None:
            return cached
        chain: List[int] = []
        node = i
        parent = self._parent
        while node not in paths and parent[node] >= 0:
            chain.append(node)
            node = parent[node]
        suffix = paths.get(node)
        if suffix is None:
            suffix = self._seed_paths[self._seed[node]]
            paths[node] = suffix
        asns = self._gi.asns
        for node in reversed(chain):
            suffix = (asns[node],) + suffix
            paths[node] = suffix
        return suffix

    def route(self, asn: int) -> Optional[Route]:
        i = self._gi.idx.get(asn)
        if i is None or not self._plen[i]:
            return None
        return Route(path=self._path_of(i), kind=RouteKind(self._kind[i]))

    def path(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to the prefix (inclusive), or None."""
        i = self._gi.idx.get(asn)
        if i is None or not self._plen[i]:
            return None
        return self._path_of(i)

    def reachable_ases(self) -> FrozenSet[int]:
        if self._reachable is None:
            asns = self._gi.asns
            plen = self._plen
            self._reachable = frozenset(
                asns[i] for i in range(self._gi.n) if plen[i]
            )
        return self._reachable

    def capture_set(self, origin: int) -> FrozenSet[int]:
        """ASes whose selected route terminates at ``origin``.

        Resolved from the per-node seed id — no path materialisation.
        """
        seed_origin = [path[-1] for path in self._seed_paths]
        asns = self._gi.asns
        plen = self._plen
        seed = self._seed
        return frozenset(
            asns[i]
            for i in range(self._gi.n)
            if plen[i] and seed_origin[seed[i]] == origin
        )

    def capture_set_via(self, announcer: int) -> FrozenSet[int]:
        """ASes whose selected path crosses ``announcer``.

        One O(V) sweep over parent pointers (a node's path crosses the
        announcer iff the node *is* the announcer or its parent's path
        crosses it; seeds check their announced tail) — again no tuples.
        """
        gi = self._gi
        plen = self._plen
        parent = self._parent
        seed = self._seed
        ann_idx = gi.idx.get(announcer, -1)
        seed_hit = [announcer in path for path in self._seed_paths]
        # 0 = unknown, 1 = on path, 2 = not on path
        mark = bytearray(gi.n)
        out: List[int] = []
        asns = gi.asns
        for i in range(gi.n):
            if not plen[i] or mark[i]:
                continue
            stack: List[int] = []
            node = i
            while not mark[node]:
                if node == ann_idx:
                    mark[node] = 1
                    break
                if parent[node] < 0:
                    mark[node] = 1 if seed_hit[seed[node]] else 2
                    break
                stack.append(node)
                node = parent[node]
            verdict = mark[node]
            for node in stack:
                mark[node] = verdict
        for i in range(gi.n):
            if plen[i] and mark[i] == 1:
                out.append(asns[i])
        return frozenset(out)

    def ases_on_path(self, asn: int) -> FrozenSet[int]:
        """All ASes traversed from ``asn`` to the prefix, endpoints included."""
        path = self.path(asn)
        return frozenset(path) if path is not None else frozenset()

    def items(self) -> Iterable[Tuple[int, Route]]:
        gi = self._gi
        plen = self._plen
        kind = self._kind
        for i in range(gi.n):
            if plen[i]:
                yield gi.asns[i], Route(path=self._path_of(i), kind=RouteKind(kind[i]))

    def __len__(self) -> int:
        return self._num_routed

    # -- fast-path extras ----------------------------------------------------

    def rebind_index(self, gi: GraphIndex) -> None:
        """Swap in an equivalent :class:`GraphIndex` (same topology).

        Used when outcomes computed in worker processes are folded back
        into the parent's cache: every outcome then shares the parent's
        single index snapshot instead of carrying its own unpickled copy.
        """
        if gi.n != self._gi.n or gi.asns != self._gi.asns:
            raise ValueError("rebind_index requires an index over the same ASes")
        self._gi = gi


def compute_routes_fast(
    graph: ASGraph,
    origins: _OriginsArg,
    excluded_links: Optional[Iterable[FrozenSet[int]]] = None,
    origin_export_scopes: Optional[Mapping[int, FrozenSet[int]]] = None,
    targets: Optional[FrozenSet[int]] = None,
    stage_timings: Optional[MutableMapping[str, float]] = None,
) -> CompactOutcome:
    """Drop-in fast equivalent of :func:`repro.asgraph.routing.compute_routes`.

    Same parameters, same semantics (see the legacy kernel's docstring),
    same stage stamps in ``stage_timings`` — only the outcome type differs
    (:class:`CompactOutcome`, which exposes the same API).
    """
    seeds = _normalise_origins(origins)
    for asn in seeds:
        if asn not in graph:
            raise ValueError(f"origin AS{asn} not in topology")
    excluded = frozenset(excluded_links) if excluded_links else frozenset()
    scopes = dict(origin_export_scopes) if origin_export_scopes else {}
    for asn in scopes:
        if asn not in seeds:
            raise ValueError(f"export scope given for non-origin AS{asn}")

    gi = graph_index(graph)
    n = gi.n
    idx = gi.idx
    asns = gi.asns

    # Per-node state: total path length (0 = unrouted), predecessor
    # (-1 = announcing seed), route kind, and which seed the route descends
    # from (index into seed_list).
    plen = [0] * n
    parent = [-1] * n
    kind = bytearray(n)
    seed = [-1] * n

    seed_list = sorted(seeds)
    seed_paths = tuple(seeds[asn] for asn in seed_list)
    # Forged-tail membership sets for O(1) loop prevention.  A tail of just
    # the announcer needs no check: the announcer is routed from the start,
    # so the plen check already rejects it.
    seed_tails: List[Optional[FrozenSet[int]]] = [
        frozenset(path) if len(path) > 1 else None for path in seed_paths
    ]
    routed: List[int] = []
    for sid, asn in enumerate(seed_list):
        i = idx[asn]
        plen[i] = len(seed_paths[sid])
        kind[i] = _ORIGIN
        seed[i] = sid
        routed.append(i)

    # Excluded links as a directed set of dense pairs (both orientations).
    blocked: Optional[Set[Tuple[int, int]]] = None
    if excluded:
        blocked = set()
        for link in excluded:
            if len(link) != 2:
                continue
            a, b = link
            ia = idx.get(a)
            ib = idx.get(b)
            if ia is not None and ib is not None:
                blocked.add((ia, ib))
                blocked.add((ib, ia))
        if not blocked:
            blocked = None

    # Export scopes: dense origin node -> allowed dense neighbours.  Only
    # ever consulted for seed nodes (an origin's route keeps kind ORIGIN).
    scope_of: Dict[int, Set[int]] = {}
    for asn, allowed in scopes.items():
        scope_of[idx[asn]] = {idx[b] for b in allowed if b in idx}

    remaining: Optional[Set[int]] = None
    if targets is not None:
        # A target AS outside the topology can never be routed; the -1
        # sentinel keeps the early exit from ever firing (legacy behaviour).
        remaining = {idx.get(t, -1) for t in targets}
        for i in routed:
            remaining.discard(i)

    def stamp(stage: str, started: float) -> None:
        if stage_timings is not None:
            stage_timings[stage] = stage_timings.get(stage, 0.0) + (
                time.perf_counter() - started
            )

    def outcome() -> CompactOutcome:
        return CompactOutcome(
            gi,
            plen,
            parent,
            kind,
            seed,
            seed_paths,
            tuple(seed_list),
            len(routed),
        )

    # Stage 1: customer routes flow up provider links from the origins.
    t0 = time.perf_counter()
    _propagate_flat(
        gi.prov_start,
        gi.prov_adj,
        plen,
        parent,
        kind,
        seed,
        _CUSTOMER,
        list(routed),
        routed,
        remaining,
        blocked,
        scope_of,
        seed_tails,
        asns,
    )
    stamp("customer", t0)

    # Stage 2: peer routes are learned across a single peering hop from the
    # stage-1 snapshot.
    if remaining is None or remaining:
        t0 = time.perf_counter()
        peer_start = gi.peer_start
        peer_adj = gi.peer_adj
        snapshot_len = len(routed)  # stage-1 routed nodes only are sources

        if remaining:
            # Targets first, from their own peer rows: if this completes the
            # target set, the rest of the frontier is never materialised.
            phase_a: Dict[int, Tuple[int, int]] = {}
            for v in sorted(remaining):
                if v < 0:
                    continue
                best_l = 0
                best_u = -1
                v_asn = asns[v]
                for j in range(peer_start[v], peer_start[v + 1]):
                    u = peer_adj[j]
                    lu = plen[u]
                    if not lu:
                        continue
                    tail = seed_tails[seed[u]]
                    if tail is not None and v_asn in tail:
                        continue
                    if blocked is not None and (u, v) in blocked:
                        continue
                    allowed = scope_of.get(u)
                    if allowed is not None and kind[u] == _ORIGIN and v not in allowed:
                        continue
                    lu += 1
                    if best_l == 0 or lu < best_l or (lu == best_l and u < best_u):
                        best_l = lu
                        best_u = u
                if best_l:
                    phase_a[v] = (best_l, best_u)
            for v, (l, u) in phase_a.items():
                plen[v] = l
                parent[v] = u
                kind[v] = _PEER
                seed[v] = seed[u]
                routed.append(v)
                remaining.discard(v)
            if not remaining:
                stamp("peer", t0)
                return outcome()

        pend_len = [0] * n
        pend_via = [0] * n
        touched: List[int] = []
        for k in range(snapshot_len):
            u = routed[k]
            a0 = peer_start[u]
            a1 = peer_start[u + 1]
            if a0 == a1:
                continue
            lu = plen[u] + 1
            tail = seed_tails[seed[u]]
            allowed = scope_of.get(u)
            for j in range(a0, a1):
                v = peer_adj[j]
                if plen[v]:
                    continue
                if tail is not None and asns[v] in tail:
                    continue
                if blocked is not None and (u, v) in blocked:
                    continue
                if allowed is not None and v not in allowed:
                    continue
                pl = pend_len[v]
                if pl == 0:
                    pend_len[v] = lu
                    pend_via[v] = u
                    touched.append(v)
                elif lu < pl or (lu == pl and u < pend_via[v]):
                    pend_len[v] = lu
                    pend_via[v] = u
        for v in touched:
            u = pend_via[v]
            plen[v] = pend_len[v]
            parent[v] = u
            kind[v] = _PEER
            seed[v] = seed[u]
            routed.append(v)
            if remaining is not None:
                remaining.discard(v)
        stamp("peer", t0)

    # Stage 3: provider routes flow down customer links from everyone routed.
    if remaining is None or remaining:
        t0 = time.perf_counter()
        _propagate_flat(
            gi.cust_start,
            gi.cust_adj,
            plen,
            parent,
            kind,
            seed,
            _PROVIDER,
            list(routed),
            routed,
            remaining,
            blocked,
            scope_of,
            seed_tails,
            asns,
        )
        stamp("provider", t0)

    return outcome()


def _propagate_flat(
    start,
    adj,
    plen: List[int],
    parent: List[int],
    kind: bytearray,
    seed: List[int],
    kind_val: int,
    sources: List[int],
    routed: List[int],
    remaining: Optional[Set[int]],
    blocked: Optional[Set[Tuple[int, int]]],
    scope_of: Dict[int, Set[int]],
    seed_tails: List[Optional[FrozenSet[int]]],
    asns: List[int],
) -> None:
    """Distance-synchronous relaxation used by stages 1 and 3.

    Mirrors the legacy ``_propagate`` round structure exactly — finalise
    every node whose best candidate has the globally minimal total path
    length, then extend from the newly routed — but a candidate is just
    ``(length, via)`` kept as the per-node minimum, bucketed by length.
    Candidate lengths produced after the initial offers are monotonically
    non-decreasing, so a per-node minimum plus lazy bucket entries finalises
    the same route the legacy all-candidates scan does.
    """
    n = len(plen)
    pend_len = [0] * n
    pend_via = [0] * n
    buckets: Dict[int, List[int]] = {}

    def offer_from(u: int) -> None:
        a0 = start[u]
        a1 = start[u + 1]
        if a0 == a1:
            return
        lu = plen[u] + 1
        tail = seed_tails[seed[u]]
        allowed = scope_of.get(u) if (scope_of and kind[u] == _ORIGIN) else None
        for j in range(a0, a1):
            v = adj[j]
            if plen[v]:
                continue
            if tail is not None and asns[v] in tail:
                continue
            if blocked is not None and (u, v) in blocked:
                continue
            if allowed is not None and v not in allowed:
                continue
            pl = pend_len[v]
            if pl == 0 or lu < pl:
                pend_len[v] = lu
                pend_via[v] = u
                bucket = buckets.get(lu)
                if bucket is None:
                    buckets[lu] = [v]
                else:
                    bucket.append(v)
            elif lu == pl and u < pend_via[v]:
                pend_via[v] = u

    for u in sources:
        offer_from(u)

    while buckets:
        if remaining is not None and not remaining:
            return
        cur = min(buckets)
        newly: List[int] = []
        for v in buckets.pop(cur):
            if plen[v] or pend_len[v] != cur:
                continue  # routed at a shorter length, or a stale entry
            u = pend_via[v]
            plen[v] = cur
            parent[v] = u
            kind[v] = kind_val
            seed[v] = seed[u]
            routed.append(v)
            if remaining is not None:
                remaining.discard(v)
            newly.append(v)
        for u in newly:
            offer_from(u)
