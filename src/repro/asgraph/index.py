"""Dense integer compilation of an :class:`~repro.asgraph.topology.ASGraph`.

The routing kernel spends its life iterating neighbour sets.  The mutable
``ASGraph`` stores them as per-AS ``set`` objects keyed by (sparse) AS
number, and every ``providers()``/``peers()``/``customers()`` call builds a
fresh ``frozenset`` — fine for construction and ad-hoc queries, hostile to
a kernel that touches every edge of an Internet-scale graph per run.

:class:`GraphIndex` compiles the topology once into flat arrays:

- a dense index ``0..n-1`` over the ASes, **assigned in ascending AS-number
  order** so comparing two dense indices compares the underlying AS numbers
  (the kernel's lowest-next-hop tiebreak works directly on indices);
- CSR (compressed sparse row) adjacency per relationship class:
  ``providers_of(i)`` is ``prov_adj[prov_start[i]:prov_start[i+1]]``, with
  ``array('i')`` storage — no per-node objects, picklable in one shot, and
  cheap to ship to worker processes.

Indexes are immutable snapshots.  :func:`graph_index` caches one per graph
object keyed by :attr:`ASGraph.version`, so mutating a graph transparently
invalidates its compilation (unlike the engine's fingerprint cache, no
manual ``invalidate`` call is needed).
"""

from __future__ import annotations

import threading
import weakref
from array import array
from typing import Dict, List, Tuple

from repro.asgraph.topology import ASGraph

__all__ = ["GraphIndex", "graph_index"]


class GraphIndex:
    """Immutable flat-array snapshot of an AS topology.

    Attributes
    ----------
    n:
        Number of ASes.
    asns:
        Dense index -> AS number, ascending (``asns[i] < asns[j]`` iff
        ``i < j``).
    idx:
        AS number -> dense index (inverse of ``asns``).
    prov_start / prov_adj, cust_start / cust_adj, peer_start / peer_adj:
        CSR adjacency: the neighbours of dense node ``i`` in class ``X``
        are ``X_adj[X_start[i]:X_start[i+1]]``.
    """

    __slots__ = (
        "n",
        "asns",
        "idx",
        "prov_start",
        "prov_adj",
        "cust_start",
        "cust_adj",
        "peer_start",
        "peer_adj",
    )

    def __init__(self, graph: ASGraph) -> None:
        asns: List[int] = sorted(graph.ases)
        idx: Dict[int, int] = {asn: i for i, asn in enumerate(asns)}
        self.n = len(asns)
        self.asns = asns
        self.idx = idx
        self.prov_start, self.prov_adj = self._csr(graph.providers, asns, idx)
        self.cust_start, self.cust_adj = self._csr(graph.customers, asns, idx)
        self.peer_start, self.peer_adj = self._csr(graph.peers, asns, idx)

    @staticmethod
    def _csr(neighbours, asns: List[int], idx: Dict[int, int]) -> Tuple[array, array]:
        adj = array("i")
        start = array("i", [0] * (len(asns) + 1))
        pos = 0
        for i, asn in enumerate(asns):
            row = sorted(idx[nbr] for nbr in neighbours(asn))
            adj.extend(row)
            pos += len(row)
            start[i + 1] = pos
        return start, adj

    def num_edges(self) -> int:
        """Directed adjacency entries across all three relationship classes."""
        return len(self.prov_adj) + len(self.cust_adj) + len(self.peer_adj)

    # Picklable by default (plain slots of dict/list/array values); workers
    # receive a self-contained snapshot with no reference to the source graph.


_cache_lock = threading.Lock()
#: graph object -> (version it was compiled at, its index)
_index_cache: "weakref.WeakKeyDictionary[ASGraph, Tuple[int, GraphIndex]]" = (
    weakref.WeakKeyDictionary()
)


def graph_index(graph: ASGraph) -> GraphIndex:
    """The graph's cached :class:`GraphIndex`, recompiled after mutations.

    Compilation is O(V + E) and happens once per ``(graph, version)``; every
    fast-kernel run on an unmutated graph reuses the same snapshot.
    """
    with _cache_lock:
        entry = _index_cache.get(graph)
        if entry is not None and entry[0] == graph.version:
            return entry[1]
    compiled = GraphIndex(graph)
    with _cache_lock:
        entry = _index_cache.get(graph)
        if entry is not None and entry[0] == graph.version:
            return entry[1]
        _index_cache[graph] = (graph.version, compiled)
    return compiled
