"""Internet exchange points as observation surfaces.

The paper's related work (Murdoch & Zieliński 2007) showed that IXP-level
adversaries — who see the traffic of *every* peering link at the exchange
— are in a position analogous to large ASes.  This module adds IXPs to
the synthetic Internet: peering links are grouped into exchanges, and an
exchange observes any path that traverses one of its member links.

Combined with :mod:`repro.core.surveillance`, this answers "which IXPs
could correlate a given Tor circuit?" the same way the AS-level queries
do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.asgraph.relationships import Relationship
from repro.asgraph.topology import ASGraph

__all__ = ["IXP", "IXPModel", "assign_ixps"]

_Link = FrozenSet[int]


@dataclass(frozen=True)
class IXP:
    """One exchange: a name and the peering links switched through it."""

    name: str
    links: FrozenSet[_Link]

    @property
    def members(self) -> FrozenSet[int]:
        """ASes present at the exchange."""
        return frozenset(asn for link in self.links for asn in link)

    def observes_path(self, path: Sequence[int]) -> bool:
        """True if the AS path crosses one of this IXP's peering links."""
        return any(frozenset(pair) in self.links for pair in zip(path, path[1:]))


class IXPModel:
    """A set of IXPs over a topology, with path-observation queries."""

    def __init__(self, ixps: Sequence[IXP]) -> None:
        names = [ixp.name for ixp in ixps]
        if len(set(names)) != len(names):
            raise ValueError("duplicate IXP names")
        self.ixps: Tuple[IXP, ...] = tuple(ixps)
        self._link_to_ixp: Dict[_Link, str] = {}
        for ixp in ixps:
            for link in ixp.links:
                if link in self._link_to_ixp:
                    raise ValueError(
                        f"link {sorted(link)} assigned to both "
                        f"{self._link_to_ixp[link]} and {ixp.name}"
                    )
                self._link_to_ixp[link] = ixp.name

    def __len__(self) -> int:
        return len(self.ixps)

    def ixp_of_link(self, a: int, b: int) -> Optional[str]:
        return self._link_to_ixp.get(frozenset((a, b)))

    def observers_of_path(self, path: Optional[Sequence[int]]) -> FrozenSet[str]:
        """Names of the IXPs crossed by an AS path."""
        if not path:
            return frozenset()
        found: Set[str] = set()
        for pair in zip(path, path[1:]):
            name = self._link_to_ixp.get(frozenset(pair))
            if name is not None:
                found.add(name)
        return frozenset(found)

    def circuit_observers(
        self,
        entry_paths: Iterable[Optional[Sequence[int]]],
        exit_paths: Iterable[Optional[Sequence[int]]],
    ) -> FrozenSet[str]:
        """IXPs that see both ends of a circuit (any direction per end).

        ``entry_paths`` are the forward/reverse client↔guard paths,
        ``exit_paths`` the exit↔destination ones — the §3.3 "either
        direction" observation model lifted to exchanges.
        """
        entry: Set[str] = set()
        for path in entry_paths:
            entry |= self.observers_of_path(path)
        exit_side: Set[str] = set()
        for path in exit_paths:
            exit_side |= self.observers_of_path(path)
        return frozenset(entry & exit_side)


def assign_ixps(
    graph: ASGraph,
    num_ixps: int = 10,
    seed: int = 0,
    zipf: float = 1.0,
) -> IXPModel:
    """Group the topology's peering links into exchanges.

    Real exchanges are heavy-tailed (a few giant IXPs like the paper's
    DE-CIX/AMS-IX-scale facilities switch a large share of peering); links
    are assigned with Zipf-distributed sizes.  Transit links never belong
    to an IXP here — private transit interconnects are not exchange
    fabric.
    """
    if num_ixps < 1:
        raise ValueError("need at least one IXP")
    rng = random.Random(seed)
    peer_links = [
        frozenset((a, b))
        for a, b, rel in graph.links()
        if rel is Relationship.PEER
    ]
    rng.shuffle(peer_links)
    weights = [1.0 / (i + 1) ** zipf for i in range(num_ixps)]
    total = sum(weights)

    buckets: List[Set[_Link]] = [set() for _ in range(num_ixps)]
    for link in peer_links:
        pick = rng.uniform(0, total)
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if pick <= acc:
                buckets[i].add(link)
                break
    ixps = [
        IXP(name=f"ixp-{i}", links=frozenset(bucket))
        for i, bucket in enumerate(buckets)
        if bucket
    ]
    if not ixps:
        raise ValueError("topology has no peering links to assign")
    return IXPModel(ixps)
