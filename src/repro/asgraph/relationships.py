"""Business relationships between ASes and the Gao-Rexford export rules.

The model follows Gao (2001), the AS-path inference work the paper's
prior-art analyses (Feamster & Dingledine 2004, Edman & Syverson 2009) are
built on:

- Every inter-AS link is either *customer-provider* (the customer pays) or
  *peer-peer* (settlement-free).
- **Preference**: an AS prefers routes learned from customers over routes
  learned from peers over routes learned from providers (money beats path
  length), then shorter AS-paths, then a deterministic tiebreak.
- **Export (valley-free)**: routes learned from customers (and the AS's own
  prefixes) are exported to everyone; routes learned from peers or providers
  are exported only to customers.
"""

from __future__ import annotations

import enum
from typing import Sequence

__all__ = ["Relationship", "RouteKind", "may_export", "is_valley_free"]


class Relationship(enum.Enum):
    """Relationship of a neighbour *from the local AS's point of view*."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"

    def inverse(self) -> "Relationship":
        """The same link seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


class RouteKind(enum.IntEnum):
    """How a route was learned; lower values are preferred (Gao-Rexford).

    ``ORIGIN`` is the AS's own prefix; it beats everything.
    """

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3

    @classmethod
    def from_relationship(cls, rel: Relationship) -> "RouteKind":
        return {
            Relationship.CUSTOMER: cls.CUSTOMER,
            Relationship.PEER: cls.PEER,
            Relationship.PROVIDER: cls.PROVIDER,
        }[rel]


def may_export(learned: RouteKind, to_neighbour: Relationship) -> bool:
    """Gao-Rexford export rule.

    A route is exported to a neighbour iff it was learned from a customer
    (or is the AS's own prefix), or the neighbour is a customer.

    >>> may_export(RouteKind.PEER, Relationship.CUSTOMER)
    True
    >>> may_export(RouteKind.PEER, Relationship.PEER)
    False
    """
    if learned in (RouteKind.ORIGIN, RouteKind.CUSTOMER):
        return True
    return to_neighbour is Relationship.CUSTOMER


def is_valley_free(relationships: Sequence[Relationship]) -> bool:
    """Check that a sequence of per-hop relationships forms a valley-free path.

    ``relationships[i]`` is the relationship of hop ``i+1`` as seen from hop
    ``i`` (i.e. the direction the traffic flows).  A valid path is
    zero-or-more provider hops ("uphill"), at most one peer hop, then
    zero-or-more customer hops ("downhill").
    """
    state = "up"
    for rel in relationships:
        if state == "up":
            if rel is Relationship.PROVIDER:
                continue
            state = "down" if rel is Relationship.CUSTOMER else "peered"
        elif state == "peered":
            if rel is not Relationship.CUSTOMER:
                return False
            state = "down"
        else:  # down
            if rel is not Relationship.CUSTOMER:
                return False
    return True
