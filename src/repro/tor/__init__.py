"""Tor network model: relays, consensus, path selection, clients."""

from repro.tor.relay import Flag, Relay
from repro.tor.consensus import Consensus, BandwidthWeights
from repro.tor.circuit import Circuit
from repro.tor.pathsel import GuardManager, PathSelector, PathConstraints
from repro.tor.client import TorClient
from repro.tor.generator import ConsensusConfig, SyntheticTorNetwork, generate_consensus
from repro.tor.directory import (
    AuthorityPolicy,
    DirectoryAuthority,
    ServerDescriptor,
    compute_consensus,
)
from repro.tor.exitpolicy import DEFAULT_EXIT_POLICY, REJECT_ALL, ExitPolicy, PolicyRule
from repro.tor.onion import CircuitCrypto, RelayCrypto, circuit_handshake
from repro.tor.churn import ChurnConfig, evolve_consensus, guard_survival
from repro.tor.clientdist import ClientASDistribution

__all__ = [
    "Flag",
    "Relay",
    "Consensus",
    "BandwidthWeights",
    "Circuit",
    "GuardManager",
    "PathSelector",
    "PathConstraints",
    "TorClient",
    "ConsensusConfig",
    "SyntheticTorNetwork",
    "generate_consensus",
    "AuthorityPolicy",
    "DirectoryAuthority",
    "ServerDescriptor",
    "compute_consensus",
    "ExitPolicy",
    "PolicyRule",
    "DEFAULT_EXIT_POLICY",
    "REJECT_ALL",
    "CircuitCrypto",
    "RelayCrypto",
    "circuit_handshake",
    "ChurnConfig",
    "evolve_consensus",
    "guard_survival",
    "ClientASDistribution",
]
