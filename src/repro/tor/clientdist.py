"""Weighted client-AS populations (where the users actually sit).

Real Tor client populations are heavily skewed: a handful of eyeball
ASes originate most circuits while a long tail contributes a trickle.
:class:`ClientASDistribution` captures that skew as an explicit weighted
distribution over client ASes so population-scale simulations
(:mod:`repro.core.population`) can sample millions of users from a few
hundred ASes without materialising a per-user roster.

Draws are plain inverse-CDF lookups over a cumulative table, so they are
seed-stable through any ``random.Random`` — in particular the per-trial
generators handed out by :meth:`repro.runner.Trial.rng`.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

__all__ = ["ClientASDistribution"]


@dataclass(frozen=True)
class ClientASDistribution:
    """A weighted distribution over client ASes.

    ``ases`` and ``weights`` are parallel; weights are relative (they
    need not sum to one) and must be positive.  The same AS may appear
    once only — build skew by weighting, not by repetition.
    """

    ases: Tuple[int, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.ases:
            raise ValueError("need at least one client AS")
        if len(self.ases) != len(self.weights):
            raise ValueError("ases and weights must be parallel")
        if len(set(self.ases)) != len(self.ases):
            raise ValueError("duplicate client AS in distribution")
        for weight in self.weights:
            if not weight > 0.0:
                raise ValueError("weights must be positive")

    @classmethod
    def uniform(cls, ases: Sequence[int]) -> "ClientASDistribution":
        """Every listed AS equally likely."""
        return cls(ases=tuple(ases), weights=(1.0,) * len(tuple(ases)))

    @classmethod
    def zipf(
        cls, ases: Sequence[int], exponent: float = 1.0
    ) -> "ClientASDistribution":
        """Zipf-like skew: the k-th listed AS gets weight ``1 / k**exponent``.

        List order is the popularity order — put the big eyeball ASes
        first.  ``exponent=0`` degenerates to uniform.
        """
        if exponent < 0.0:
            raise ValueError("exponent must be non-negative")
        ases = tuple(ases)
        return cls(
            ases=ases,
            weights=tuple(
                1.0 / float(rank) ** exponent
                for rank in range(1, len(ases) + 1)
            ),
        )

    @classmethod
    def from_weights(
        cls, weights: Mapping[int, float]
    ) -> "ClientASDistribution":
        """Explicit per-AS weights; entries are sorted by ASN so two
        equal mappings always yield the identical distribution."""
        items = sorted(weights.items())
        return cls(
            ases=tuple(asn for asn, _ in items),
            weights=tuple(weight for _, weight in items),
        )

    def cumulative(self) -> Tuple[float, ...]:
        """Cumulative probabilities, one entry per AS (last ``≈ 1.0``).

        Built with a plain running float sum so every consumer — the
        vector and loop population tiers included — samples from the
        bit-identical table.
        """
        total = 0.0
        for weight in self.weights:
            total += weight
        acc = 0.0
        out: List[float] = []
        for weight in self.weights:
            acc += weight
            out.append(acc / total)
        return tuple(out)

    def pick(self, u: float) -> int:
        """The AS at quantile ``u`` ∈ [0, 1) of the distribution."""
        cum = self.cumulative()
        index = bisect_right(cum, u)
        if index >= len(cum):
            index = len(cum) - 1
        return self.ases[index]

    def sample(self, count: int, rng: random.Random) -> List[int]:
        """Draw ``count`` client ASes with replacement.

        Deterministic in the generator's state: pass
        :meth:`repro.runner.Trial.rng` (or any seeded ``random.Random``)
        and the roster is stable across shards and re-runs.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        cum = self.cumulative()
        last = len(cum) - 1
        out: List[int] = []
        for _ in range(count):
            index = bisect_right(cum, rng.random())
            out.append(self.ases[index if index <= last else last])
        return out
