"""Directory authorities: votes and consensus computation.

§2: "Tor clients first download information about Tor relays (called
network consensus) from directory servers", and §3.2 notes that a hijacker
cannot impersonate a guard because "the Tor software is shipped with
cryptographic keys of trusted directory authorities".  This module builds
that production pipeline: a small set of authorities independently measure
the relay population, vote, and a majority consensus emerges — so no
single (or minority of) compromised authorities can inject or doctor a
relay entry.

Simplified from dir-spec the same way the rest of the Tor model is: the
attributes that downstream analyses consume (flags, bandwidth, addresses)
are produced faithfully; signatures are modelled as vote provenance rather
than actual cryptography.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

from repro.tor.consensus import Consensus
from repro.tor.relay import Flag, Relay

__all__ = [
    "ServerDescriptor",
    "AuthorityPolicy",
    "DirectoryAuthority",
    "Vote",
    "compute_consensus",
]


@dataclass(frozen=True)
class ServerDescriptor:
    """What a relay self-publishes to the authorities."""

    fingerprint: str
    nickname: str
    address: str
    or_port: int
    #: self-advertised bandwidth, KB/s (authorities measure their own)
    advertised_bandwidth: int
    uptime_days: float = 30.0
    #: whether the relay's exit policy permits general exiting
    allows_exit: bool = False
    family: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.advertised_bandwidth < 0 or self.uptime_days < 0:
            raise ValueError(f"negative descriptor values for {self.fingerprint}")


@dataclass(frozen=True)
class AuthorityPolicy:
    """Thresholds an authority applies when assigning flags.

    Mirrors the dir-spec heuristics: Fast requires a bandwidth floor,
    Guard requires being in the fast upper tier *and* stable, Stable
    requires uptime.
    """

    fast_minimum_bw: int = 100
    #: Guard requires bandwidth at or above this percentile of the
    #: measured population (dir-spec uses the median of Fast relays)
    guard_bw_percentile: float = 0.5
    stable_uptime_days: float = 7.0
    #: fraction of measurement attempts that succeed (flaky networks)
    reachability: float = 0.97
    #: multiplicative lognormal noise applied to bandwidth measurements
    measurement_sigma: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.guard_bw_percentile <= 1.0:
            raise ValueError("guard_bw_percentile must be in [0, 1]")
        if not 0.0 < self.reachability <= 1.0:
            raise ValueError("reachability must be in (0, 1]")


@dataclass(frozen=True)
class Vote:
    """One authority's signed view of the network."""

    authority: str
    #: fingerprint -> (descriptor, measured bandwidth, flags)
    entries: Mapping[str, Tuple[ServerDescriptor, int, FrozenSet[Flag]]]

    def lists(self, fingerprint: str) -> bool:
        return fingerprint in self.entries


class DirectoryAuthority:
    """One of the trusted authorities."""

    def __init__(
        self,
        name: str,
        policy: AuthorityPolicy = AuthorityPolicy(),
        seed: int = 0,
    ) -> None:
        self.name = name
        self.policy = policy
        self._rng = random.Random(seed)

    def vote(self, descriptors: Sequence[ServerDescriptor]) -> Vote:
        """Measure the relay population and produce a vote."""
        policy = self.policy
        # Measurement pass: reachability + noisy bandwidth.
        measured: Dict[str, Tuple[ServerDescriptor, int]] = {}
        for descriptor in descriptors:
            if self._rng.random() > policy.reachability:
                continue  # measurement failed; relay not listed this vote
            noise = self._rng.lognormvariate(0.0, policy.measurement_sigma)
            bandwidth = max(1, int(descriptor.advertised_bandwidth * noise))
            measured[descriptor.fingerprint] = (descriptor, bandwidth)

        # Flag pass: thresholds over the measured population.
        bandwidths = sorted(bw for _d, bw in measured.values())
        guard_floor = _percentile(bandwidths, policy.guard_bw_percentile) if bandwidths else 0

        entries: Dict[str, Tuple[ServerDescriptor, int, FrozenSet[Flag]]] = {}
        for fingerprint, (descriptor, bandwidth) in measured.items():
            flags: Set[Flag] = {Flag.RUNNING, Flag.VALID}
            if bandwidth >= policy.fast_minimum_bw:
                flags.add(Flag.FAST)
            if descriptor.uptime_days >= policy.stable_uptime_days:
                flags.add(Flag.STABLE)
            if (
                Flag.FAST in flags
                and Flag.STABLE in flags
                and bandwidth >= guard_floor
            ):
                flags.add(Flag.GUARD)
            if descriptor.allows_exit:
                flags.add(Flag.EXIT)
            entries[fingerprint] = (descriptor, bandwidth, frozenset(flags))
        return Vote(authority=self.name, entries=entries)


def compute_consensus(
    votes: Sequence[Vote],
    valid_after: float = 0.0,
) -> Consensus:
    """Combine authority votes into a consensus (majority rules).

    - A relay is listed iff a strict majority of authorities listed it —
      why a hijacker who stands up a fake "guard" convinces no one.
    - A flag is assigned iff a majority of the authorities *listing the
      relay* voted for it.
    - Consensus bandwidth is the low-median of the measurements, dir-spec's
      outlier-resistant choice (a single lying authority cannot inflate a
      relay's weight).
    """
    if not votes:
        raise ValueError("need at least one vote")
    names = [v.authority for v in votes]
    if len(set(names)) != len(names):
        raise ValueError("duplicate authority votes")
    quorum = len(votes) // 2 + 1

    listed: Dict[str, List[Tuple[ServerDescriptor, int, FrozenSet[Flag]]]] = {}
    for vote in votes:
        for fingerprint, entry in vote.entries.items():
            listed.setdefault(fingerprint, []).append(entry)

    relays: List[Relay] = []
    for fingerprint, entries in sorted(listed.items()):
        if len(entries) < quorum:
            continue
        descriptor = entries[0][0]
        bandwidths = sorted(bw for _d, bw, _f in entries)
        consensus_bw = bandwidths[(len(bandwidths) - 1) // 2]  # low median
        flag_votes: Dict[Flag, int] = {}
        for _d, _bw, flags in entries:
            for flag in flags:
                flag_votes[flag] = flag_votes.get(flag, 0) + 1
        flag_quorum = len(entries) // 2 + 1
        flags = frozenset(
            flag for flag, count in flag_votes.items() if count >= flag_quorum
        )
        relays.append(
            Relay(
                fingerprint=fingerprint,
                nickname=descriptor.nickname,
                address=descriptor.address,
                or_port=descriptor.or_port,
                bandwidth=consensus_bw,
                flags=flags | {Flag.RUNNING, Flag.VALID},
                family=descriptor.family,
            )
        )
    return Consensus(relays, valid_after=valid_after)


def _percentile(ordered: Sequence[int], q: float) -> float:
    if not ordered:
        raise ValueError("empty population")
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]
