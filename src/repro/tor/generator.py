"""Calibrated synthetic Tor consensus generation.

The paper's July-2014 dataset (§4): 4586 relays — 1918 guards, 891 exits,
442 flagged both — mapping to 1251 "Tor prefixes" announced by 650 distinct
ASes; relays-per-prefix skewed (median 1, 75th percentile 2, max 33 in
Hetzner's 78.46.0.0/15, which also hosted 22 middle relays); and guard/exit
capacity concentrated so that just 5 ASes host 20% of guard+exit relays.

:func:`generate_consensus` reproduces those marginals at a configurable
scale on top of a caller-supplied pool of hosting ASes (normally drawn from
the synthetic topology), so every downstream computation — longest-prefix
mapping, concentration curves, attack targeting — runs on data with the
same shape as the paper's.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.analysis.prefixes import Prefix, format_ip
from repro.tor.consensus import Consensus
from repro.tor.relay import Flag, Relay

__all__ = ["ConsensusConfig", "SyntheticTorNetwork", "generate_consensus"]

#: Display names for the largest synthetic hosters, mirroring the paper's
#: observation ("Hetzner Online AG, OVH SAS, Abovenet Communications,
#: Fiberring and Online.net").
_TOP_HOSTER_NAMES = (
    "HetznerOnline-sim",
    "OVH-sim",
    "Abovenet-sim",
    "Fiberring-sim",
    "OnlineNet-sim",
)


@dataclass(frozen=True)
class ConsensusConfig:
    """Targets for the synthetic consensus; defaults are the paper's counts."""

    scale: float = 1.0
    total_relays: int = 4586
    guard_relays: int = 1918  # includes the dual-flagged ones
    exit_relays: int = 891  # includes the dual-flagged ones
    dual_relays: int = 442
    tor_prefixes: int = 1251
    hosting_ases: int = 650
    #: relays in the largest prefix (78.46.0.0/15 hosted 33 guard/exit)
    max_prefix_guard_exit: int = 33
    max_prefix_middles: int = 22
    #: Zipf exponent for assigning prefixes to hosting ASes; 0.8 puts ~20%
    #: of guard/exit relays in the top five ASes at 650 hosts
    hosting_zipf: float = 0.8
    #: lognormal bandwidth parameters (KB/s), clamped at the cap so one
    #: lucky draw cannot dominate the whole consensus at small scales
    bandwidth_median: float = 4000.0
    bandwidth_sigma: float = 1.3
    bandwidth_cap: float = 200_000.0
    #: fraction of relays declaring a family
    family_fraction: float = 0.06
    seed: int = 0
    #: first address of the block Tor prefixes are carved from
    address_base: int = 60 << 24  # 60.0.0.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.dual_relays > min(self.guard_relays, self.exit_relays):
            raise ValueError("dual relays cannot exceed guard or exit counts")
        if self.guard_relays + self.exit_relays - self.dual_relays > self.total_relays:
            raise ValueError("flagged relays exceed total relays")

    def scaled(self, value: int) -> int:
        return max(1, round(value * self.scale))


@dataclass
class SyntheticTorNetwork:
    """A consensus plus its ground-truth network embedding."""

    consensus: Consensus
    #: the §4 "Tor prefixes": most-specific prefixes of guard/exit relays
    tor_prefixes: FrozenSet[Prefix]
    #: every announced relay-hosting prefix (incl. middle-only) -> origin AS
    prefix_origins: Dict[Prefix, int]
    #: relay fingerprint -> its hosting prefix
    relay_prefix: Dict[str, Prefix]
    #: hosting AS -> human-readable name
    as_names: Dict[int, str]

    def relays_in_prefix(self, prefix: Prefix) -> List[Relay]:
        return [
            self.consensus.relay(fp)
            for fp, p in self.relay_prefix.items()
            if p == prefix
        ]

    def relay_origin(self, fingerprint: str) -> int:
        return self.prefix_origins[self.relay_prefix[fingerprint]]

    def guard_exit_relays_per_as(self) -> Dict[int, int]:
        """Hosting-AS -> number of guard/exit relays (Figure 2 left input)."""
        counts: Dict[int, int] = {}
        for relay in self.consensus.relays:
            if not (relay.is_guard or relay.is_exit):
                continue
            asn = self.relay_origin(relay.fingerprint)
            counts[asn] = counts.get(asn, 0) + 1
        return counts


#: (relay count, probability) for guard/exit relays per prefix — tuned for
#: median 1, p75 2, mean ≈ 1.9 like the paper's distribution.
_PREFIX_SIZE_DIST: Tuple[Tuple[int, float], ...] = (
    (1, 0.62),
    (2, 0.18),
    (3, 0.09),
    (4, 0.05),
    (5, 0.03),
    (7, 0.015),
    (10, 0.01),
    (14, 0.005),
)

#: prefix length distribution for hosting blocks
_PREFIX_LEN_DIST: Tuple[Tuple[int, float], ...] = (
    (24, 0.55),
    (23, 0.15),
    (22, 0.12),
    (21, 0.08),
    (20, 0.06),
    (19, 0.04),
)


def generate_consensus(
    config: ConsensusConfig,
    hosting_asns: Sequence[int],
) -> SyntheticTorNetwork:
    """Build a synthetic Tor network hosted on the given AS pool."""
    rng = random.Random(config.seed)
    n_prefixes = config.scaled(config.tor_prefixes)
    n_hosts = min(config.scaled(config.hosting_ases), len(hosting_asns))
    if n_hosts < 1:
        raise ValueError("need at least one hosting AS")
    hosts = list(hosting_asns[:n_hosts])

    # --- per-prefix guard/exit relay counts (skewed, one giant prefix) ----
    # The giant Hetzner-style prefix sits at index 0 so the global relay
    # cap can never starve it.
    giant_count = config.scaled(config.max_prefix_guard_exit)
    counts = [giant_count] + [
        _draw_discrete(rng, _PREFIX_SIZE_DIST) for _ in range(max(0, n_prefixes - 1))
    ]

    # --- assign prefixes to hosting ASes by Zipf weight --------------------
    zipf = [1.0 / (rank + 1) ** config.hosting_zipf for rank in range(len(hosts))]
    total_zipf = sum(zipf)
    prefix_host: List[int] = [hosts[0]]  # the giant /15 goes to the top hoster
    for _ in range(len(counts) - 1):
        prefix_host.append(hosts[_draw_weighted_index(rng, zipf, total_zipf)])
    # Guarantee every hosting AS appears ("announced by 650 distinct ASes"):
    unused = [h for h in hosts if h not in set(prefix_host)]
    replaceable = list(range(1, len(prefix_host)))
    rng.shuffle(replaceable)
    for host, idx in zip(unused, replaceable):
        prefix_host[idx] = host

    # --- carve address blocks ------------------------------------------------
    cursor = config.address_base
    prefixes: List[Prefix] = []
    for i in range(len(counts)):
        length = 15 if i == 0 else _draw_discrete(rng, _PREFIX_LEN_DIST)
        cursor, prefix = _allocate(cursor, length)
        prefixes.append(prefix)

    # --- create guard/exit relays --------------------------------------------
    n_ge_target = config.scaled(config.guard_relays + config.exit_relays - config.dual_relays)
    p_dual = config.dual_relays / (config.guard_relays + config.exit_relays - config.dual_relays)
    p_guard_only = (config.guard_relays - config.dual_relays) / (
        config.guard_relays + config.exit_relays - config.dual_relays
    )

    relays: List[Relay] = []
    relay_prefix: Dict[str, Prefix] = {}
    serial = 0
    host_rank = {h: rank for rank, h in enumerate(hosts)}

    def make_relay(prefix: Prefix, host: int, flags: Set[Flag]) -> Relay:
        nonlocal serial
        serial += 1
        address = format_ip(prefix.nth_ip(1 + (serial % max(2, prefix.num_addresses - 2))))
        # Larger hosters run beefier relays: bandwidth gets a rank-based boost.
        boost = 1.0 + 3.0 / math.sqrt(1 + host_rank[host])
        draw = rng.lognormvariate(math.log(config.bandwidth_median), config.bandwidth_sigma)
        bandwidth = max(20, int(min(draw * boost, config.bandwidth_cap)))
        relay = Relay(
            fingerprint=f"{serial:040X}",
            nickname=f"relay{serial}",
            address=address,
            or_port=9001 if serial % 3 else 443,
            bandwidth=bandwidth,
            flags=frozenset(flags | {Flag.RUNNING, Flag.VALID, Flag.FAST}),
        )
        relay_prefix[relay.fingerprint] = prefix
        return relay

    made_ge = 0
    for prefix, host, count in zip(prefixes, prefix_host, counts):
        for _ in range(count):
            if made_ge >= n_ge_target + giant_count:
                break
            roll = rng.random()
            if roll < p_dual:
                flags = {Flag.GUARD, Flag.EXIT, Flag.STABLE}
            elif roll < p_dual + p_guard_only:
                flags = {Flag.GUARD, Flag.STABLE}
            else:
                flags = {Flag.EXIT}
            relays.append(make_relay(prefix, host, flags))
            made_ge += 1

    # --- middle-only relays ----------------------------------------------------
    n_total = config.scaled(config.total_relays)
    n_middle = max(0, n_total - len(relays))
    middle_prefixes: List[Prefix] = []
    middle_hosts: List[int] = []
    # The giant prefix hosts its share of middles too (the paper's "+22").
    for _ in range(min(config.scaled(config.max_prefix_middles), n_middle)):
        middle_prefixes.append(prefixes[0])
        middle_hosts.append(prefix_host[0])
    cursor_mid = cursor
    while len(middle_prefixes) < n_middle:
        host = hosts[_draw_weighted_index(rng, zipf, total_zipf)]
        length = _draw_discrete(rng, _PREFIX_LEN_DIST)
        cursor_mid, prefix = _allocate(cursor_mid, length)
        per_prefix = _draw_discrete(rng, _PREFIX_SIZE_DIST)
        for _ in range(min(per_prefix, n_middle - len(middle_prefixes))):
            middle_prefixes.append(prefix)
            middle_hosts.append(host)
    for prefix, host in zip(middle_prefixes, middle_hosts):
        relays.append(make_relay(prefix, host, set()))

    # --- families ---------------------------------------------------------------
    _assign_families(rng, relays, relay_prefix, config.family_fraction)

    # --- bookkeeping ---------------------------------------------------------------
    prefix_origins: Dict[Prefix, int] = {}
    for prefix, host in zip(prefixes, prefix_host):
        prefix_origins[prefix] = host
    for prefix, host in zip(middle_prefixes, middle_hosts):
        prefix_origins.setdefault(prefix, host)

    ge_prefixes = frozenset(
        relay_prefix[r.fingerprint] for r in relays if r.is_guard or r.is_exit
    )
    as_names = {
        host: (_TOP_HOSTER_NAMES[rank] if rank < len(_TOP_HOSTER_NAMES) else f"hoster-{host}")
        for rank, host in enumerate(hosts)
    }

    consensus = Consensus(relays, valid_after=0.0)
    return SyntheticTorNetwork(
        consensus=consensus,
        tor_prefixes=ge_prefixes,
        prefix_origins=prefix_origins,
        relay_prefix=relay_prefix,
        as_names=as_names,
    )


def _assign_families(
    rng: random.Random,
    relays: List[Relay],
    relay_prefix: Dict[str, Prefix],
    fraction: float,
) -> None:
    """Group a fraction of same-prefix relays into declared families."""
    if fraction <= 0:
        return
    by_prefix: Dict[Prefix, List[int]] = {}
    for i, relay in enumerate(relays):
        by_prefix.setdefault(relay_prefix[relay.fingerprint], []).append(i)
    target = int(len(relays) * fraction)
    grouped = 0
    for indices in by_prefix.values():
        if grouped >= target:
            break
        if len(indices) < 2:
            continue
        members = indices[: min(len(indices), rng.randint(2, 5))]
        fps = frozenset(relays[i].fingerprint for i in members)
        for i in members:
            relay = relays[i]
            relays[i] = Relay(
                fingerprint=relay.fingerprint,
                nickname=relay.nickname,
                address=relay.address,
                or_port=relay.or_port,
                bandwidth=relay.bandwidth,
                flags=relay.flags,
                family=fps - {relay.fingerprint},
            )
        grouped += len(members)


def _draw_discrete(rng: random.Random, dist: Tuple[Tuple[int, float], ...]) -> int:
    total = sum(p for _v, p in dist)
    pick = rng.uniform(0, total)
    acc = 0.0
    for value, p in dist:
        acc += p
        if pick <= acc:
            return value
    return dist[-1][0]


def _draw_weighted_index(rng: random.Random, weights: Sequence[float], total: float) -> int:
    pick = rng.uniform(0, total)
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if pick <= acc:
            return i
    return len(weights) - 1


def _allocate(cursor: int, length: int) -> Tuple[int, Prefix]:
    """Allocate the next aligned block of the given prefix length."""
    size = 1 << (32 - length)
    aligned = (cursor + size - 1) & ~(size - 1)
    prefix = Prefix(aligned, length)
    return aligned + size, prefix
