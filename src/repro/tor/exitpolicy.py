"""Tor exit policies: which destinations an exit relay will connect to.

Exit relays publish ordered accept/reject rules over (address, port);
clients must pick an exit whose policy admits the destination.  This
matters to the paper's adversary model: the *usable* exit population for
a given destination (say, a web server on 443) is smaller than the
Exit-flagged population, concentrating traffic — and interception value —
on fewer prefixes.

Syntax follows dirspec/torrc: ``accept *:80``, ``reject 10.0.0.0/8:*``,
``accept *:443``, ``reject *:*``; first matching rule wins, with an
implicit trailing ``reject *:*`` (like Tor's default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.analysis.prefixes import Prefix, parse_ip

__all__ = ["PolicyRule", "ExitPolicy", "DEFAULT_EXIT_POLICY", "REJECT_ALL"]


@dataclass(frozen=True)
class PolicyRule:
    """One accept/reject rule: address block + port range."""

    accept: bool
    #: None means "*" (any address)
    prefix: Optional[Prefix]
    port_low: int
    port_high: int

    def __post_init__(self) -> None:
        if not 1 <= self.port_low <= self.port_high <= 65535:
            raise ValueError(
                f"invalid port range {self.port_low}-{self.port_high}"
            )

    def matches(self, ip: int, port: int) -> bool:
        if not self.port_low <= port <= self.port_high:
            return False
        return self.prefix is None or self.prefix.contains_ip(ip)

    @classmethod
    def parse(cls, text: str) -> "PolicyRule":
        """Parse ``accept|reject <addr>[/len]:<port|lo-hi|*>``."""
        parts = text.strip().split()
        if len(parts) != 2 or parts[0] not in ("accept", "reject"):
            raise ValueError(f"malformed policy rule: {text!r}")
        accept = parts[0] == "accept"
        addr_part, _, port_part = parts[1].rpartition(":")
        if not addr_part or not port_part:
            raise ValueError(f"malformed address:port in rule: {text!r}")

        prefix: Optional[Prefix]
        if addr_part == "*":
            prefix = None
        elif "/" in addr_part:
            prefix = Prefix.parse(addr_part)
        else:
            prefix = Prefix(parse_ip(addr_part), 32)

        if port_part == "*":
            low, high = 1, 65535
        elif "-" in port_part:
            lo_text, _, hi_text = port_part.partition("-")
            low, high = int(lo_text), int(hi_text)
        else:
            low = high = int(port_part)
        return cls(accept=accept, prefix=prefix, port_low=low, port_high=high)

    def __str__(self) -> str:
        verb = "accept" if self.accept else "reject"
        addr = "*" if self.prefix is None else str(self.prefix)
        if self.port_low == 1 and self.port_high == 65535:
            ports = "*"
        elif self.port_low == self.port_high:
            ports = str(self.port_low)
        else:
            ports = f"{self.port_low}-{self.port_high}"
        return f"{verb} {addr}:{ports}"


class ExitPolicy:
    """An ordered rule list; first match wins, default reject."""

    def __init__(self, rules: Sequence[Union[PolicyRule, str]]) -> None:
        self.rules: Tuple[PolicyRule, ...] = tuple(
            rule if isinstance(rule, PolicyRule) else PolicyRule.parse(rule)
            for rule in rules
        )

    def allows(self, address: Union[str, int], port: int) -> bool:
        """True if the policy admits connecting to (address, port)."""
        ip = parse_ip(address) if isinstance(address, str) else address
        if not 1 <= port <= 65535:
            raise ValueError(f"invalid port {port}")
        for rule in self.rules:
            if rule.matches(ip, port):
                return rule.accept
        return False  # implicit reject *:*

    def allows_some_port(self, ports: Sequence[int] = (80, 443)) -> bool:
        """Whether the policy is a usable general exit (Tor's Exit-flag
        heuristic checks ports 80/443-style reachability)."""
        probe_ip = parse_ip("93.184.216.34")  # an arbitrary public address
        return any(self.allows(probe_ip, port) for port in ports)

    @classmethod
    def parse(cls, text: str) -> "ExitPolicy":
        """Parse newline- or comma-separated rules."""
        chunks = [
            chunk.strip()
            for chunk in text.replace(",", "\n").splitlines()
            if chunk.strip()
        ]
        if not chunks:
            raise ValueError("empty exit policy")
        return cls(chunks)

    def __str__(self) -> str:
        return ", ".join(str(rule) for rule in self.rules)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExitPolicy) and self.rules == other.rules

    def __hash__(self) -> int:
        return hash(self.rules)


#: A common permissive web-exit policy (web + mail-submission + IRC-ish).
DEFAULT_EXIT_POLICY = ExitPolicy(
    [
        "reject 10.0.0.0/8:*",
        "reject 192.168.0.0/16:*",
        "reject 127.0.0.0/8:*",
        "reject *:25",
        "accept *:20-23",
        "accept *:43",
        "accept *:53",
        "accept *:80",
        "accept *:110",
        "accept *:143",
        "accept *:443",
        "accept *:993-995",
        "accept *:5190",
        "accept *:6660-6669",
        "accept *:8080",
        "accept *:8443",
    ]
)

#: A middle-only relay's policy.
REJECT_ALL = ExitPolicy(["reject *:*"])
