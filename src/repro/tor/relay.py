"""Tor relay descriptors.

Only the consensus attributes the paper's analyses use are modelled: the
relay's address (which determines its BGP prefix and hosting AS), its flags
(Guard/Exit decide which circuit positions it can fill), and its consensus
bandwidth weight (which drives Tor's probability-proportional-to-bandwidth
relay selection, and hence which relays an attacker targets first).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Optional, Union

from repro.analysis.prefixes import parse_ip

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.tor.exitpolicy import ExitPolicy

__all__ = ["Flag", "Relay"]


class Flag(enum.Enum):
    """Consensus router-status flags (the subset that matters here)."""

    GUARD = "Guard"
    EXIT = "Exit"
    FAST = "Fast"
    STABLE = "Stable"
    RUNNING = "Running"
    VALID = "Valid"
    BADEXIT = "BadExit"

    @classmethod
    def from_name(cls, name: str) -> "Flag":
        for flag in cls:
            if flag.value == name:
                return flag
        raise ValueError(f"unknown relay flag {name!r}")


@dataclass(frozen=True)
class Relay:
    """One relay as listed in a network consensus."""

    fingerprint: str
    nickname: str
    address: str
    or_port: int
    #: consensus weight in kilobytes/second
    bandwidth: int
    flags: FrozenSet[Flag] = frozenset({Flag.RUNNING, Flag.VALID})
    #: fingerprints of same-family relays (never combined in one circuit)
    family: FrozenSet[str] = frozenset()
    #: published exit policy; None means "whatever the Exit flag implies"
    exit_policy: Optional["ExitPolicy"] = None

    def __post_init__(self) -> None:
        if not self.fingerprint:
            raise ValueError("relay fingerprint must be non-empty")
        if self.bandwidth < 0:
            raise ValueError(f"negative bandwidth for {self.fingerprint}")
        if not 0 < self.or_port < 65536:
            raise ValueError(f"invalid OR port {self.or_port}")
        parse_ip(self.address)  # validates the dotted quad

    @property
    def is_guard(self) -> bool:
        return Flag.GUARD in self.flags

    @property
    def is_exit(self) -> bool:
        return Flag.EXIT in self.flags and Flag.BADEXIT not in self.flags

    @property
    def is_guard_and_exit(self) -> bool:
        return self.is_guard and self.is_exit

    @property
    def is_running(self) -> bool:
        return Flag.RUNNING in self.flags

    @property
    def ip(self) -> int:
        """The address as a 32-bit integer."""
        return parse_ip(self.address)

    @property
    def slash16(self) -> int:
        """The /16 network of the address (Tor's same-subnet exclusion)."""
        return self.ip >> 16

    def supports_exit_to(self, address: Union[str, int], port: int) -> bool:
        """Whether this relay can serve as the exit for a destination.

        Requires the Exit flag; relays publishing an explicit policy are
        additionally checked against it (first-match accept/reject).
        """
        if not self.is_exit:
            return False
        if self.exit_policy is None:
            return True
        return self.exit_policy.allows(address, port)

    def in_same_family(self, other: "Relay") -> bool:
        """Mutual family membership (either side listing the other counts,
        as Tor treats family conservatively for path selection)."""
        return (
            other.fingerprint in self.family
            or self.fingerprint in other.family
        )
