"""Layered circuit encryption: why relays only learn their neighbours.

§2: "Layered encryption is used to ensure that each relay learns the
identity of only the previous hop and the next hop in the communications,
and no single relay can link the client to the destination."  That
property is the reason the paper's adversary works at the *network* layer
— the content gives nothing away — so the repo carries a working model of
it:

- a Diffie-Hellman circuit handshake per hop (RFC 3526 group-14 modp, the
  same group Tor's original TAP handshake used), giving the client one
  shared key per relay;
- per-hop stream encryption with an HMAC-SHA256 counter keystream (a
  structurally faithful stand-in for AES-CTR, which the standard library
  lacks) plus a running digest so the exit recognises cells addressed to
  it (Tor's "recognized" field);
- :class:`CircuitCrypto` for the client side and :class:`RelayCrypto` for
  each hop: the client onion-wraps outbound cells; every relay peels
  exactly one layer; only the exit sees plaintext.

The tests assert the anonymity-relevant properties: the middle hop cannot
read or undetectably modify traffic, and each hop learns nothing beyond
its own layer.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "DhKeyPair",
    "dh_keypair",
    "dh_shared_key",
    "circuit_handshake",
    "RelayCrypto",
    "CircuitCrypto",
    "CELL_PAYLOAD_BYTES",
]

#: RFC 3526 group 14: 2048-bit MODP prime (generator 2) — the group Tor's
#: TAP onionskin handshake used.
_MODP_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
_GENERATOR = 2

#: payload bytes carried per onion-encrypted relay cell
CELL_PAYLOAD_BYTES = 498


@dataclass(frozen=True)
class DhKeyPair:
    """A Diffie-Hellman keypair (private exponent, public value)."""

    private: int
    public: int


def dh_keypair(rng: random.Random) -> DhKeyPair:
    """Generate a keypair in group 14.

    A seeded ``random.Random`` keeps simulations reproducible; this is a
    model, not a production key generator.
    """
    private = rng.getrandbits(256) | (1 << 255)
    public = pow(_GENERATOR, private, _MODP_PRIME)
    return DhKeyPair(private=private, public=public)


def dh_shared_key(own: DhKeyPair, peer_public: int) -> bytes:
    """The derived symmetric key: SHA-256 over the DH shared secret."""
    if not 1 < peer_public < _MODP_PRIME - 1:
        raise ValueError("peer public value outside the group")
    secret = pow(peer_public, own.private, _MODP_PRIME)
    return hashlib.sha256(secret.to_bytes(256, "big")).digest()


def circuit_handshake(
    client_rng: random.Random,
    relay_rngs: Sequence[random.Random],
) -> Tuple["CircuitCrypto", List["RelayCrypto"]]:
    """Run the per-hop handshake for a whole circuit.

    For each hop the client sends an ephemeral public value (inside the
    previous hops' layers, which this model elides) and the relay answers
    with its own; both sides derive the same key — returned as the
    client's :class:`CircuitCrypto` and each relay's :class:`RelayCrypto`.
    """
    client_keys: List[bytes] = []
    relay_cryptos: List[RelayCrypto] = []
    for relay_rng in relay_rngs:
        client_eph = dh_keypair(client_rng)
        relay_eph = dh_keypair(relay_rng)
        client_key = dh_shared_key(client_eph, relay_eph.public)
        relay_key = dh_shared_key(relay_eph, client_eph.public)
        assert client_key == relay_key  # both sides of the same DH
        client_keys.append(client_key)
        relay_cryptos.append(RelayCrypto(relay_key))
    return CircuitCrypto(client_keys), relay_cryptos


def _keystream(key: bytes, direction: bytes, counter: int, length: int) -> bytes:
    """HMAC-SHA256 counter-mode keystream (AES-CTR stand-in)."""
    out = bytearray()
    block = 0
    while len(out) < length:
        out += hmac.new(
            key, direction + counter.to_bytes(8, "big") + block.to_bytes(8, "big"),
            hashlib.sha256,
        ).digest()
        block += 1
    return bytes(out[:length])


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


_DIGEST_LEN = 8


class RelayCrypto:
    """One relay's view of a circuit: its layer key and cell counters."""

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise ValueError("layer key must be 32 bytes")
        self._key = key
        self._fwd_counter = 0
        self._bwd_counter = 0

    def peel(self, cell: bytes) -> bytes:
        """Remove this relay's layer from an outbound (client->exit) cell."""
        stream = _keystream(self._key, b"fwd", self._fwd_counter, len(cell))
        self._fwd_counter += 1
        return _xor(cell, stream)

    def wrap(self, cell: bytes) -> bytes:
        """Add this relay's layer to an inbound (exit->client) cell."""
        stream = _keystream(self._key, b"bwd", self._bwd_counter, len(cell))
        self._bwd_counter += 1
        return _xor(cell, stream)

    def recognise(self, peeled: bytes) -> Optional[bytes]:
        """If the peeled cell is addressed to this relay (digest checks
        out), return its payload; None means 'not mine, forward it'."""
        if len(peeled) < _DIGEST_LEN:
            return None
        digest, payload = peeled[:_DIGEST_LEN], peeled[_DIGEST_LEN:]
        expected = hmac.new(self._key, b"digest" + payload, hashlib.sha256).digest()[:_DIGEST_LEN]
        if hmac.compare_digest(digest, expected):
            return payload
        return None

    def seal(self, payload: bytes) -> bytes:
        """Exit-side framing for inbound payloads (digest + payload)."""
        digest = hmac.new(self._key, b"digest" + payload, hashlib.sha256).digest()[:_DIGEST_LEN]
        return digest + payload


class CircuitCrypto:
    """The client's side: one key per hop, entry first."""

    def __init__(self, keys: Sequence[bytes]) -> None:
        if not keys:
            raise ValueError("circuit needs at least one hop")
        for key in keys:
            if len(key) != 32:
                raise ValueError("layer keys must be 32 bytes")
        self._keys = list(keys)
        self._fwd_counters = [0] * len(keys)
        self._bwd_counters = [0] * len(keys)

    @property
    def hops(self) -> int:
        return len(self._keys)

    def encrypt_outbound(self, payload: bytes) -> bytes:
        """Onion-wrap a payload for the exit: digest, then one stream
        layer per hop, outermost = entry guard."""
        if len(payload) > CELL_PAYLOAD_BYTES - _DIGEST_LEN:
            raise ValueError("payload exceeds cell capacity")
        exit_key = self._keys[-1]
        digest = hmac.new(exit_key, b"digest" + payload, hashlib.sha256).digest()[:_DIGEST_LEN]
        cell = digest + payload
        for i in range(len(self._keys) - 1, -1, -1):
            stream = _keystream(self._keys[i], b"fwd", self._fwd_counters[i], len(cell))
            self._fwd_counters[i] += 1
            cell = _xor(cell, stream)
        return cell

    def decrypt_inbound(self, cell: bytes) -> Optional[bytes]:
        """Unwrap an inbound cell (each hop added one layer, entry last);
        returns the payload, or None if the digest fails (tampering)."""
        for i in range(len(self._keys)):
            stream = _keystream(self._keys[i], b"bwd", self._bwd_counters[i], len(cell))
            self._bwd_counters[i] += 1
            cell = _xor(cell, stream)
        exit_key = self._keys[-1]
        if len(cell) < _DIGEST_LEN:
            return None
        digest, payload = cell[:_DIGEST_LEN], cell[_DIGEST_LEN:]
        expected = hmac.new(exit_key, b"digest" + payload, hashlib.sha256).digest()[:_DIGEST_LEN]
        if not hmac.compare_digest(digest, expected):
            return None
        return payload
