"""A Tor client: a network location plus guard state and circuit building."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.tor.circuit import Circuit
from repro.tor.consensus import Consensus
from repro.tor.pathsel import GuardManager, PathConstraints, PathSelector
from repro.tor.relay import Relay

__all__ = ["TorClient"]


class TorClient:
    """One Tor user, attached to an AS, holding a guard set over time.

    The client is the unit of analysis for §3.1: its guard set stays fixed
    for a month, while the AS-level paths between ``client_asn`` and each
    guard's AS drift underneath it.
    """

    def __init__(
        self,
        client_asn: int,
        consensus: Consensus,
        rng: Optional[random.Random] = None,
        num_guards: int = 3,
        rotation_days: float = 30.0,
        constraints: PathConstraints = PathConstraints(),
    ) -> None:
        self.client_asn = client_asn
        self.consensus = consensus
        self.rng = rng if rng is not None else random.Random(client_asn)
        self.constraints = constraints
        self.guard_manager = GuardManager(
            consensus,
            self.rng,
            num_guards=num_guards,
            rotation_days=rotation_days,
            constraints=constraints,
        )
        self._selector = PathSelector(consensus, self.rng, constraints)

    @property
    def guards(self) -> List[Relay]:
        return self.guard_manager.guards

    def build_circuit(
        self,
        now: float = 0.0,
        destination: Optional[Tuple[str, int]] = None,
    ) -> Optional[Circuit]:
        """Build a fresh circuit through one of the client's guards.

        With ``destination`` as ``(address, port)``, only exits whose
        published policy admits that destination are considered.
        """
        guard = self.guard_manager.pick_guard(now)
        return self._selector.build_circuit(guard=guard, destination=destination)

    def build_circuits(self, count: int, now: float = 0.0) -> List[Circuit]:
        """Build ``count`` circuits (skipping any that fail constraints)."""
        circuits: List[Circuit] = []
        for _ in range(count):
            circuit = self.build_circuit(now)
            if circuit is not None:
                circuits.append(circuit)
        return circuits
