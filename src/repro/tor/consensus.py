"""The network consensus: the relay directory Tor clients download.

Includes the *bandwidth-weights* machinery from dir-spec §3.8.3: because
Guard- and Exit-flagged capacity is scarce relative to demand, the
directory authorities publish position weights (Wgg, Wed, ...) that scale a
relay's bandwidth depending on the position it is considered for, so that
scarce capacity is reserved for the positions that need it.  The weights
matter here because they decide *which* relays carry most traffic — i.e.
which prefixes an AS-level adversary should intercept (§3.2: "an adversary
could intercept traffic towards high bandwidth guard relays and exit
relays").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tor.relay import Flag, Relay

__all__ = ["BandwidthWeights", "Consensus", "Position"]


#: Circuit positions for weight lookups.
class Position:
    GUARD = "guard"
    MIDDLE = "middle"
    EXIT = "exit"


@dataclass(frozen=True)
class BandwidthWeights:
    """Position weights, as fractions in [0, 1] (consensus stores 1/10000).

    Naming follows dir-spec: ``W<position><class>`` where position is
    g(uard)/m(iddle)/e(xit) and class is g(uard-only)/e(xit-only)/d(ual,
    Guard+Exit)/m(middle, neither flag).
    """

    Wgg: float
    Wgd: float
    Wmg: float
    Wmm: float
    Wme: float
    Wmd: float
    Wee: float
    Wed: float

    def __post_init__(self) -> None:
        for name in ("Wgg", "Wgd", "Wmg", "Wmm", "Wme", "Wmd", "Wee", "Wed"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")

    def weight(self, relay: Relay, position: str) -> float:
        """The multiplier applied to ``relay.bandwidth`` for ``position``."""
        dual = relay.is_guard_and_exit
        if position == Position.GUARD:
            if not relay.is_guard:
                return 0.0
            return self.Wgd if dual else self.Wgg
        if position == Position.EXIT:
            if not relay.is_exit:
                return 0.0
            return self.Wed if dual else self.Wee
        if position == Position.MIDDLE:
            if dual:
                return self.Wmd
            if relay.is_guard:
                return self.Wmg
            if relay.is_exit:
                return self.Wme
            return self.Wmm
        raise ValueError(f"unknown position {position!r}")

    @classmethod
    def compute(cls, G: float, M: float, E: float, D: float) -> "BandwidthWeights":
        """Derive weights from class bandwidth totals (dir-spec §3.8.3).

        ``G``/``M``/``E``/``D`` are the bandwidth totals of guard-only,
        unflagged, exit-only, and dual (Guard+Exit) relays.  The full spec
        algorithm distinguishes many sub-cases; this implements the three
        top-level ones, which cover every real consensus:

        - both guard and exit capacity plentiful (``E+D >= T/3 <= G+D``):
          balance everything equally;
        - exactly one of them scarce: dedicate the scarce class (and the
          dual relays) entirely to the scarce position;
        - both scarce: dedicate each class to its own position and split
          dual capacity in proportion to the shortfalls.
        """
        for name, value in (("G", G), ("M", M), ("E", E), ("D", D)):
            if value < 0:
                raise ValueError(f"negative bandwidth total {name}={value}")
        T = G + M + E + D
        if T <= 0:
            raise ValueError("total bandwidth must be positive")
        third = T / 3.0
        guard_scarce = G + D < third
        exit_scarce = E + D < third

        if not guard_scarce and not exit_scarce:
            # Case 1: plentiful. Spread guard and exit capacity so every
            # position ends up with T/3 where possible.
            Wgg = min(1.0, third / G) if G > 0 else 0.0
            Wee = min(1.0, third / E) if E > 0 else 0.0
            # Dual relays fill whatever the dedicated classes left over.
            need_g = max(0.0, third - Wgg * G)
            need_e = max(0.0, third - Wee * E)
            if D > 0:
                Wgd = min(1.0, need_g / D)
                Wed = min(1.0, max(need_e / D, 1.0 - Wgd))
                if Wgd + Wed > 1.0:
                    scale = 1.0 / (Wgd + Wed)
                    Wgd *= scale
                    Wed *= scale
            else:
                Wgd = Wed = 0.0
            Wmd = max(0.0, 1.0 - Wgd - Wed)
            Wmg = max(0.0, 1.0 - Wgg)
            Wme = max(0.0, 1.0 - Wee)
            return cls(Wgg=Wgg, Wgd=Wgd, Wmg=Wmg, Wmm=1.0, Wme=Wme, Wmd=Wmd, Wee=Wee, Wed=Wed)

        if guard_scarce and exit_scarce:
            # Case 2: both scarce. Dedicate classes to their positions and
            # split D by relative shortfall.
            shortfall_g = max(0.0, third - G)
            shortfall_e = max(0.0, third - E)
            total_short = shortfall_g + shortfall_e
            Wgd = shortfall_g / total_short if total_short > 0 else 0.5
            Wed = 1.0 - Wgd
            return cls(Wgg=1.0, Wgd=Wgd, Wmg=0.0, Wmm=1.0, Wme=0.0, Wmd=0.0, Wee=1.0, Wed=Wed)

        if exit_scarce:
            # Case 3a: exits scarce, guards plentiful: all exit-capable
            # capacity works as exit; guard-only capacity covers guard+middle.
            Wgg = min(1.0, third / G) if G > 0 else 0.0
            return cls(Wgg=Wgg, Wgd=0.0, Wmg=max(0.0, 1.0 - Wgg), Wmm=1.0, Wme=0.0, Wmd=0.0, Wee=1.0, Wed=1.0)

        # Case 3b: guards scarce, exits plentiful.
        Wee = min(1.0, third / E) if E > 0 else 0.0
        return cls(Wgg=1.0, Wgd=1.0, Wmg=0.0, Wmm=1.0, Wme=max(0.0, 1.0 - Wee), Wmd=0.0, Wee=Wee, Wed=0.0)


class Consensus:
    """A network consensus: relays plus derived position weights."""

    def __init__(
        self,
        relays: Sequence[Relay],
        valid_after: float = 0.0,
        weights: Optional[BandwidthWeights] = None,
    ) -> None:
        fingerprints = [r.fingerprint for r in relays]
        if len(set(fingerprints)) != len(fingerprints):
            raise ValueError("duplicate relay fingerprints in consensus")
        self._relays: Tuple[Relay, ...] = tuple(relays)
        self._by_fingerprint: Dict[str, Relay] = {r.fingerprint: r for r in relays}
        self.valid_after = valid_after
        self.weights = weights if weights is not None else self._derive_weights()

    def _derive_weights(self) -> BandwidthWeights:
        G = sum(r.bandwidth for r in self._relays if r.is_guard and not r.is_exit)
        E = sum(r.bandwidth for r in self._relays if r.is_exit and not r.is_guard)
        D = sum(r.bandwidth for r in self._relays if r.is_guard_and_exit)
        M = sum(r.bandwidth for r in self._relays if not r.is_guard and not r.is_exit)
        if G + M + E + D <= 0:
            return BandwidthWeights(1, 1, 0, 1, 0, 0, 1, 0)
        return BandwidthWeights.compute(G=G, M=M, E=E, D=D)

    # -- queries --------------------------------------------------------------

    @property
    def relays(self) -> Tuple[Relay, ...]:
        return self._relays

    def __len__(self) -> int:
        return len(self._relays)

    def relay(self, fingerprint: str) -> Relay:
        return self._by_fingerprint[fingerprint]

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._by_fingerprint

    def guards(self) -> List[Relay]:
        """Relays usable in the guard position."""
        return [r for r in self._relays if r.is_guard and r.is_running]

    def exits(self) -> List[Relay]:
        """Relays usable in the exit position."""
        return [r for r in self._relays if r.is_exit and r.is_running]

    def guard_and_exit(self) -> List[Relay]:
        return [r for r in self._relays if r.is_guard_and_exit and r.is_running]

    def running(self) -> List[Relay]:
        return [r for r in self._relays if r.is_running]

    def total_bandwidth(self) -> int:
        return sum(r.bandwidth for r in self._relays)

    def position_weight(self, relay: Relay, position: str) -> float:
        """Effective selection weight of ``relay`` for ``position``."""
        if not relay.is_running:
            return 0.0
        return relay.bandwidth * self.weights.weight(relay, position)

    # -- serialization (simplified network-status format) ----------------------

    def to_text(self) -> str:
        """Serialise in a compact network-status-like document."""
        lines: List[str] = [f"valid-after {self.valid_after}"]
        w = self.weights
        lines.append(
            "bandwidth-weights "
            + " ".join(
                f"{name}={int(round(getattr(w, name) * 10000))}"
                for name in ("Wgg", "Wgd", "Wmg", "Wmm", "Wme", "Wmd", "Wee", "Wed")
            )
        )
        for relay in self._relays:
            lines.append(
                f"r {relay.nickname} {relay.fingerprint} {relay.address} {relay.or_port}"
            )
            lines.append("s " + " ".join(sorted(f.value for f in relay.flags)))
            lines.append(f"w Bandwidth={relay.bandwidth}")
            if relay.family:
                lines.append("family " + " ".join(sorted(relay.family)))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "Consensus":
        """Parse the output of :meth:`to_text`."""
        valid_after = 0.0
        weights: Optional[BandwidthWeights] = None
        relays: List[Relay] = []
        current: Optional[Dict] = None

        def finish() -> None:
            nonlocal current
            if current is not None:
                relays.append(
                    Relay(
                        fingerprint=current["fingerprint"],
                        nickname=current["nickname"],
                        address=current["address"],
                        or_port=current["or_port"],
                        bandwidth=current.get("bandwidth", 0),
                        flags=frozenset(current.get("flags", {Flag.RUNNING, Flag.VALID})),
                        family=frozenset(current.get("family", ())),
                    )
                )
                current = None

        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            keyword, _, rest = line.partition(" ")
            if keyword == "valid-after":
                valid_after = float(rest)
            elif keyword == "bandwidth-weights":
                values = dict(item.split("=") for item in rest.split())
                weights = BandwidthWeights(
                    **{name: int(v) / 10000.0 for name, v in values.items()}
                )
            elif keyword == "r":
                finish()
                parts = rest.split()
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: malformed r line {line!r}")
                current = {
                    "nickname": parts[0],
                    "fingerprint": parts[1],
                    "address": parts[2],
                    "or_port": int(parts[3]),
                }
            elif keyword == "s":
                if current is None:
                    raise ValueError(f"line {lineno}: s line outside relay entry")
                current["flags"] = {Flag.from_name(name) for name in rest.split()}
            elif keyword == "w":
                if current is None:
                    raise ValueError(f"line {lineno}: w line outside relay entry")
                current["bandwidth"] = int(rest.partition("=")[2])
            elif keyword == "family":
                if current is None:
                    raise ValueError(f"line {lineno}: family line outside relay entry")
                current["family"] = rest.split()
            else:
                raise ValueError(f"line {lineno}: unknown keyword {keyword!r}")
        finish()
        return cls(relays, valid_after=valid_after, weights=weights)
