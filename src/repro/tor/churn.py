"""Consensus churn: the relay population as it evolves day by day.

The Tor network the paper measured is not static — relays join, leave,
and change bandwidth hourly; clients keep functioning because guard sets
heal (a vanished guard is replaced) and selection re-normalises.  Churn
matters to the temporal analysis in two opposing ways: a client whose
guard *churns out* re-rolls its entry point (more AS exposure, on top of
§3.1's BGP churn), while relay arrival dilutes the weight of any fixed
interception target.

:func:`evolve_consensus` produces a day-indexed series of consensuses by
applying seeded birth/death/bandwidth-drift processes to a starting
consensus; :func:`guard_survival` measures how long guard sets actually
last under it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.tor.consensus import Consensus
from repro.tor.pathsel import GuardManager
from repro.tor.relay import Relay

__all__ = ["ChurnConfig", "evolve_consensus", "guard_survival"]

_DAY = 86_400.0


@dataclass(frozen=True)
class ChurnConfig:
    """Daily churn rates, calibrated to the scale of public Tor metrics
    (a few percent of relays turn over per day)."""

    daily_death_rate: float = 0.02
    daily_birth_rate: float = 0.02
    #: multiplicative lognormal drift on relay bandwidths, per day
    bandwidth_drift_sigma: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("daily_death_rate", "daily_birth_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.bandwidth_drift_sigma < 0:
            raise ValueError("bandwidth_drift_sigma must be non-negative")


def evolve_consensus(
    initial: Consensus,
    days: int,
    config: ChurnConfig = ChurnConfig(),
) -> List[Consensus]:
    """A consensus per day (index 0 = the initial document).

    Deaths remove relays; births clone the flag/bandwidth profile of a
    random surviving relay at a fresh address and fingerprint (keeping the
    population's composition stable); bandwidths drift multiplicatively.
    """
    if days < 1:
        raise ValueError("need at least one day")
    rng = random.Random(config.seed)
    series = [initial]
    current = list(initial.relays)
    next_serial = 0

    for day in range(1, days):
        survivors: List[Relay] = []
        for relay in current:
            if rng.random() < config.daily_death_rate:
                continue
            drift = rng.lognormvariate(0.0, config.bandwidth_drift_sigma)
            survivors.append(
                Relay(
                    fingerprint=relay.fingerprint,
                    nickname=relay.nickname,
                    address=relay.address,
                    or_port=relay.or_port,
                    bandwidth=max(1, int(relay.bandwidth * drift)),
                    flags=relay.flags,
                    family=relay.family,
                    exit_policy=relay.exit_policy,
                )
            )
        births = int(len(current) * config.daily_birth_rate)
        for _ in range(births):
            if not survivors:
                break
            template = survivors[rng.randrange(len(survivors))]
            next_serial += 1
            third = rng.randrange(1, 255)
            fourth = rng.randrange(1, 255)
            survivors.append(
                Relay(
                    fingerprint=f"NEW{day:03d}X{next_serial:032X}",
                    nickname=f"fresh{day}n{next_serial}",
                    address=f"198.{rng.randrange(18, 20)}.{third}.{fourth}",
                    or_port=9001,
                    bandwidth=template.bandwidth,
                    flags=template.flags,
                )
            )
        series.append(Consensus(survivors, valid_after=day * _DAY))
        current = survivors
    return series


@dataclass(frozen=True)
class GuardSurvival:
    """How one client's guard set fared across the series."""

    #: per-day count of original guards still in service
    original_guards_alive: Tuple[int, ...]
    #: total distinct guards the client used across the period
    distinct_guards_used: int


def guard_survival(
    series: Sequence[Consensus],
    num_guards: int = 3,
    seed: int = 0,
    rotation_days: float = 30.0,
) -> GuardSurvival:
    """Track a client's guard set across an evolving consensus series.

    Each day the client refreshes its directory information: guards that
    left the consensus are replaced (Tor's behaviour), which is an extra
    source of entry-point churn *independent* of BGP dynamics.
    """
    if not series:
        raise ValueError("empty consensus series")
    rng = random.Random(seed)
    manager = GuardManager(series[0], rng, num_guards=num_guards, rotation_days=rotation_days)
    original = {g.fingerprint for g in manager.guards}
    used = set(original)
    alive_counts: List[int] = []
    for day, consensus in enumerate(series):
        manager.consensus = consensus  # the daily directory fetch
        current = manager.current_guards(now=day * _DAY)
        used.update(g.fingerprint for g in current)
        alive_counts.append(sum(1 for g in current if g.fingerprint in original))
    return GuardSurvival(
        original_guards_alive=tuple(alive_counts),
        distinct_guards_used=len(used),
    )
