"""Tor path selection: bandwidth-weighted relay choice and guard management.

Implements the two Tor mechanisms the paper's arguments hinge on:

- **Probability-proportional-to-bandwidth selection** (§2: "clients select
  relays with a probability that is proportional to their network
  capacity"), with the consensus position weights applied.  This is why
  high-bandwidth guard/exit prefixes are the attractive interception
  targets of §3.2.
- **Guard sets** (§2): each client keeps a small fixed set of entry guards
  (three in the 2014 implementation, with a proposal to move to one guard
  for nine months).  Guards defend against malicious-relay rotation
  attacks, but §3.1 shows they do *not* defend against AS-level observers,
  because the AS paths underneath a fixed guard keep changing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.tor.circuit import Circuit
from repro.tor.consensus import Consensus, Position
from repro.tor.relay import Relay

__all__ = ["PathConstraints", "PathSelector", "GuardManager", "weighted_choice"]

#: seconds in a day, for guard rotation arithmetic
_DAY = 86_400.0


def weighted_choice(
    rng: random.Random, relays: Sequence[Relay], weight: Callable[[Relay], float]
) -> Optional[Relay]:
    """Pick a relay with probability proportional to ``weight(relay)``.

    Returns None when no relay has positive weight.
    """
    weights = [max(0.0, weight(r)) for r in relays]
    total = sum(weights)
    if total <= 0:
        return None
    pick = rng.uniform(0.0, total)
    acc = 0.0
    for relay, w in zip(relays, weights):
        acc += w
        if pick <= acc:
            return relay
    return relays[-1]


@dataclass(frozen=True)
class PathConstraints:
    """Which relay-combination rules to enforce when building circuits."""

    distinct_slash16: bool = True
    distinct_family: bool = True
    #: optional extra predicate (guard, middle, exit all tested pairwise is
    #: overkill; this receives the whole tentative circuit) — the AS-aware
    #: countermeasures of §5 plug in here.
    circuit_filter: Optional[Callable[[Circuit], bool]] = None

    def compatible(self, a: Relay, b: Relay) -> bool:
        if a.fingerprint == b.fingerprint:
            return False
        if self.distinct_slash16 and a.slash16 == b.slash16:
            return False
        if self.distinct_family and a.in_same_family(b):
            return False
        return True


class PathSelector:
    """Builds circuits from a consensus using Tor's weighting rules."""

    def __init__(
        self,
        consensus: Consensus,
        rng: random.Random,
        constraints: PathConstraints = PathConstraints(),
        max_attempts: int = 50,
    ) -> None:
        self.consensus = consensus
        self.rng = rng
        self.constraints = constraints
        self.max_attempts = max_attempts

    def pick(
        self,
        position: str,
        exclude: Sequence[Relay] = (),
        predicate: Optional[Callable[[Relay], bool]] = None,
    ) -> Optional[Relay]:
        """Pick one relay for ``position``, compatible with ``exclude``.

        ``predicate`` adds an eligibility filter (e.g. "exit policy admits
        this destination").
        """
        candidates = [
            r
            for r in self.consensus.running()
            if all(self.constraints.compatible(r, other) for other in exclude)
            and (predicate is None or predicate(r))
        ]
        return weighted_choice(
            self.rng, candidates, lambda r: self.consensus.position_weight(r, position)
        )

    def build_circuit(
        self,
        guard: Optional[Relay] = None,
        destination: Optional[Tuple[str, int]] = None,
    ) -> Optional[Circuit]:
        """Build a (guard, middle, exit) circuit.

        Tor picks the exit first, then the guard (here: the caller's pinned
        entry guard, if any), then the middle.  With ``destination`` given
        as ``(address, port)``, only exits whose policy admits it are
        eligible.  Returns None if the constraints cannot be satisfied
        within ``max_attempts``.
        """
        for _ in range(self.max_attempts):
            exit_relay = self.pick(
                Position.EXIT,
                exclude=[guard] if guard else [],
                predicate=(
                    (lambda r: r.supports_exit_to(*destination))
                    if destination is not None
                    else None
                ),
            )
            if exit_relay is None:
                return None
            chosen_guard = guard
            if chosen_guard is None:
                chosen_guard = self.pick(Position.GUARD, exclude=[exit_relay])
                if chosen_guard is None:
                    return None
            elif not self.constraints.compatible(chosen_guard, exit_relay):
                continue
            middle = self.pick(Position.MIDDLE, exclude=[chosen_guard, exit_relay])
            if middle is None:
                continue
            circuit = Circuit(guard=chosen_guard, middle=middle, exit=exit_relay)
            if self.constraints.circuit_filter is not None and not self.constraints.circuit_filter(circuit):
                continue
            return circuit
        return None


class GuardManager:
    """A client's entry-guard set with rotation.

    Guards are sampled bandwidth-weighted at creation and replaced when
    they expire (default rotation 30 days, matching the 2014 behaviour; set
    ``rotation_days`` to ~270 to model the "one fast guard for 9 months"
    proposal the paper's footnote discusses) or when they leave the
    consensus.
    """

    def __init__(
        self,
        consensus: Consensus,
        rng: random.Random,
        num_guards: int = 3,
        rotation_days: float = 30.0,
        constraints: PathConstraints = PathConstraints(),
    ) -> None:
        if num_guards < 1:
            raise ValueError("need at least one guard")
        if rotation_days <= 0:
            raise ValueError("rotation_days must be positive")
        self.consensus = consensus
        self.rng = rng
        self.num_guards = num_guards
        self.rotation_days = rotation_days
        self.constraints = constraints
        self._guards: List[Relay] = []
        self._expiry: List[float] = []
        self._fill(now=0.0)

    @property
    def guards(self) -> List[Relay]:
        return list(self._guards)

    def current_guards(self, now: float) -> List[Relay]:
        """The guard set at time ``now``, rotating out expired guards."""
        for i in range(len(self._guards) - 1, -1, -1):
            if now >= self._expiry[i] or self._guards[i].fingerprint not in self.consensus:
                del self._guards[i]
                del self._expiry[i]
        self._fill(now)
        return list(self._guards)

    def pick_guard(self, now: float) -> Relay:
        """One guard from the current set, uniformly (Tor round-robins)."""
        guards = self.current_guards(now)
        if not guards:
            raise RuntimeError("no usable guards in consensus")
        return self.rng.choice(guards)

    def _fill(self, now: float) -> None:
        selector = PathSelector(self.consensus, self.rng, self.constraints)
        attempts = 0
        while len(self._guards) < self.num_guards and attempts < 200:
            attempts += 1
            candidate = selector.pick(Position.GUARD, exclude=self._guards)
            if candidate is None:
                break
            self._guards.append(candidate)
            # Stagger expiry like Tor: uniform within [rotation, 2x rotation).
            lifetime = self.rng.uniform(1.0, 2.0) * self.rotation_days * _DAY
            self._expiry.append(now + lifetime)
