"""Tor circuits: an ordered (guard, middle, exit) relay triple."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.tor.relay import Relay

__all__ = ["Circuit"]


@dataclass(frozen=True)
class Circuit:
    """A three-hop circuit.

    The two ends — client↔guard and exit↔destination — are the segments an
    AS-level adversary correlates; the middle relay exists to break the
    direct link between them.
    """

    guard: Relay
    middle: Relay
    exit: Relay

    def __post_init__(self) -> None:
        fingerprints = {self.guard.fingerprint, self.middle.fingerprint, self.exit.fingerprint}
        if len(fingerprints) != 3:
            raise ValueError("circuit relays must be three distinct relays")

    @property
    def relays(self) -> Tuple[Relay, Relay, Relay]:
        return (self.guard, self.middle, self.exit)

    def __iter__(self) -> Iterator[Relay]:
        return iter(self.relays)

    def obeys_constraints(self) -> bool:
        """Tor's relay-combination rules: no two relays in the same /16 or
        in the same declared family."""
        relays = self.relays
        for i, a in enumerate(relays):
            for b in relays[i + 1 :]:
                if a.slash16 == b.slash16:
                    return False
                if a.in_same_family(b):
                    return False
        return True

    def describe(self) -> str:
        return (
            f"{self.guard.nickname}({self.guard.address}) -> "
            f"{self.middle.nickname}({self.middle.address}) -> "
            f"{self.exit.nickname}({self.exit.address})"
        )
