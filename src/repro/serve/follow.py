"""Bridge a trace's churn schedule into a live serving tier.

``repro serve --follow DAYS`` (and the CI live-replay smoke) use this
module to push a trace's core-link outages into a running daemon: the
trace's ground-truth ``core_fail``/``core_recover`` events become
``down``/``up`` deltas, windowed by :func:`repro.bgpsim.stream.replay`,
and every window — empty ones included — is applied as exactly one
``apply-events`` batch.  The daemon's topology epoch therefore advances
by precisely one per replay window, which is what makes the epoch-by-
epoch equality gates (bench and CI) deterministic: window *k* completes
at epoch ``k + 1``.

``apply`` is any callable taking a list of wire-form events and
returning a report doc with an ``"epoch"`` key — in-process that is
``QueryFacade.apply_events`` (via :func:`facade_apply`), over the wire
it is ``ServeClient.apply_events``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.bgpsim.stream import DAY, ReplayReport, Window, replay

__all__ = ["LinkEvent", "ChurnFeed", "link_events", "follow", "facade_apply"]


@dataclass(frozen=True)
class LinkEvent:
    """One link delta on the trace timeline (replay windows sort on ``time``)."""

    time: float
    op: str  # "down" | "up"
    link: Tuple[int, int]


_CORE_OPS = {"core_fail": "down", "core_recover": "up"}


def link_events(events: Iterable[object]) -> List[LinkEvent]:
    """Extract link deltas from a trace's ground-truth event list.

    ``events`` is :attr:`~repro.bgpsim.trace.TraceStream.events` (or any
    iterable of :class:`~repro.bgpsim.trace.TraceEvent`); only the core
    fail/recover kinds carry topology churn — TE switches, prepends, and
    session resets change announcements, not link liveness.
    """
    out: List[LinkEvent] = []
    for event in events:
        op = _CORE_OPS.get(event.kind)
        if op is None:
            continue
        a, b = event.detail
        out.append(LinkEvent(time=event.time, op=op, link=(int(a), int(b))))
    out.sort(key=lambda e: e.time)
    return out


@dataclass
class ChurnFeed:
    """A :class:`~repro.bgpsim.stream.StreamConsumer` applying churn windows.

    Every consumed window triggers exactly one ``apply`` call (one epoch
    bump), carrying the window's deltas — an empty list for quiet
    windows, so elapsed trace time maps 1:1 onto epochs.
    """

    apply: Callable[[List[dict]], dict]
    windows: int = 0
    events: int = 0
    epoch: Optional[int] = None
    reports: List[dict] = field(default_factory=list)

    def consume(self, window: Window) -> None:
        wire = [
            {"op": e.op, "link": [e.link[0], e.link[1]]} for e in window.events
        ]
        report = self.apply(wire)
        self.windows += 1
        self.events += len(wire)
        self.epoch = report.get("epoch")
        self.reports.append(
            {
                "window": window.index,
                "events": len(wire),
                "epoch": self.epoch,
                "invalidated": report.get("invalidated"),
            }
        )

    def state(self) -> dict:
        return {
            "windows": self.windows,
            "events": self.events,
            "epoch": self.epoch,
        }

    def restore(self, state: dict) -> None:
        self.windows = int(state.get("windows", 0))
        self.events = int(state.get("events", 0))
        self.epoch = state.get("epoch")


def facade_apply(facade) -> Callable[[List[dict]], dict]:
    """Adapt ``QueryFacade.apply_events`` to the wire-doc shape."""

    def apply(events: List[dict]) -> dict:
        report = facade.apply_events(events)
        return {"epoch": report.epoch, "invalidated": report.invalidated}

    return apply


def follow(
    events: Iterable[LinkEvent],
    apply: Callable[[List[dict]], dict],
    *,
    window_seconds: float = DAY,
    duration: Optional[float] = None,
) -> Tuple[ReplayReport, ChurnFeed]:
    """Replay link deltas into ``apply``, one window (= one epoch) at a time."""
    feed = ChurnFeed(apply=apply)
    report = replay(
        list(events),
        feed,
        window_seconds=window_seconds,
        duration=duration,
    )
    return report, feed
