"""JSONL socket framing for the routing daemon.

One frame = one JSON object on one ``\\n``-terminated line, UTF-8.  The
codec is shared by the daemon and the blocking client, so framing rules
live in exactly one place:

- frames are capped at :data:`MAX_FRAME_BYTES` (oversized frames are a
  protocol error — the peer is told, then the connection is closed,
  because line-sync can't be trusted past an overrun);
- a frame that is not valid UTF-8 JSON, or whose top level is not an
  object, is malformed — the daemon answers with an error frame and keeps
  the connection (the stream is still line-synchronised).

Request envelope::

    {"op": "<name>", "id": <any JSON, echoed back>, ...op fields}

Response envelope::

    {"ok": true,  "op": ..., "id": ..., "schema_version": 1, "result": {...}}
    {"ok": false, "op": ..., "id": ..., "schema_version": 1,
     "error": {"kind": "...", "message": "..."}}
"""

from __future__ import annotations

import json
from typing import Mapping, Optional

from repro.serve.api import API_SCHEMA_VERSION

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_frame",
    "decode_frame",
    "response_ok",
    "response_error",
]

#: Hard cap on one frame (the line, newline included).  Generous enough
#: for thousands of queries per batch, small enough to bound a client's
#: memory claim on the daemon.
MAX_FRAME_BYTES = 1 << 20


class FrameError(ValueError):
    """A frame violates the protocol (size, encoding, or shape)."""

    def __init__(self, message: str, *, fatal: bool = False) -> None:
        super().__init__(message)
        #: fatal errors desynchronise the stream; the connection must close
        self.fatal = fatal


def encode_frame(doc: Mapping[str, object]) -> bytes:
    """One wire frame: canonical JSON + newline, size-checked."""
    line = json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    data = line.encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            fatal=True,
        )
    return data


def decode_frame(line: bytes, max_bytes: int = MAX_FRAME_BYTES) -> dict:
    """Parse one received line into a request/response document."""
    if len(line) > max_bytes:
        raise FrameError(
            f"frame of {len(line)} bytes exceeds the {max_bytes}-byte cap",
            fatal=True,
        )
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"malformed frame: {exc}") from None
    if not isinstance(doc, dict):
        raise FrameError(
            f"frame must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def response_ok(
    op: str, result: Mapping[str, object], request_id: object = None
) -> dict:
    return {
        "ok": True,
        "op": op,
        "id": request_id,
        "schema_version": API_SCHEMA_VERSION,
        "result": dict(result),
    }


def response_error(
    op: Optional[str], kind: str, message: str, request_id: object = None
) -> dict:
    return {
        "ok": False,
        "op": op,
        "id": request_id,
        "schema_version": API_SCHEMA_VERSION,
        "error": {"kind": kind, "message": message},
    }
