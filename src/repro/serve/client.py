"""Blocking client for the routing daemon.

:class:`ServeClient` speaks the JSONL protocol over a plain TCP socket
with no asyncio on the caller's side — the shape tests, scripts, and the
CI smoke job want.  Each request blocks until its response frame arrives;
the daemon guarantees responses come back in request order per client.

Usage::

    with ServeClient.connect("127.0.0.1", 7777) as client:
        response = client.batch([PathQuery(src=10, dst=20)])
        print(response.results[0].path)
"""

from __future__ import annotations

import socket
from typing import Iterable, Optional

from repro.serve import protocol
from repro.serve.api import BatchRequest, BatchResponse, decode, encode

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The daemon answered with an error frame."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.error_message = message


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.daemon.RoutingDaemon`."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rb")
        self._next_id = 0

    @classmethod
    def connect(
        cls, host: str, port: int, *, timeout: Optional[float] = 30.0
    ) -> "ServeClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- raw request/response ------------------------------------------------

    def request(self, op: str, **fields: object) -> dict:
        """Send one op frame, block for its response, return the result doc.

        Raises :class:`ServeError` on an error response and
        ``ConnectionError`` if the daemon hangs up without answering.
        """
        self._next_id += 1
        doc = {"op": op, "id": self._next_id, **fields}
        self._sock.sendall(protocol.encode_frame(doc))
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = protocol.decode_frame(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                str(error.get("kind", "UnknownError")),
                str(error.get("message", "")),
            )
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    def send_raw(self, data: bytes) -> dict:
        """Ship pre-encoded bytes and read one response frame (for tests)."""
        self._sock.sendall(data)
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return protocol.decode_frame(line)

    # -- typed ops -----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def info(self) -> dict:
        return self.request("info")

    def stats(self) -> dict:
        return self.request("stats")

    def batch(
        self, queries: Iterable[object], *, request_id: Optional[str] = None
    ) -> BatchResponse:
        """Run a batch of typed queries; returns the typed response."""
        request = BatchRequest(queries=tuple(queries), id=request_id)
        result = self.request("batch", request=encode(request))
        response = decode(result)
        if not isinstance(response, BatchResponse):
            raise ServeError("ProtocolError", "batch op returned a non-batch result")
        return response

    def apply_events(self, events: Iterable[object]) -> dict:
        """Feed link up/down deltas into the daemon's session pool.

        ``events`` are ``("down", (a, b))`` / ``("up", (a, b))`` tuples or
        wire-form ``{"op": ..., "link": [a, b]}`` dicts.  Returns the churn
        report doc: the new ``epoch``, the full ``excluded`` link list, and
        ``repaired``/``proven``/``invalidated`` counts.
        """
        wire = []
        for event in events:
            if isinstance(event, dict):
                wire.append({"op": event.get("op"), "link": list(event.get("link"))})
            else:
                op, link = event
                wire.append({"op": op, "link": [int(link[0]), int(link[1])]})
        return self.request("apply-events", events=wire)

    def snapshot(self, path: str) -> int:
        """Dump the daemon's result cache to ``path``; returns entry count."""
        return int(self.request("snapshot", path=path).get("entries", 0))

    def restore(self, path: str) -> int:
        """Load a cache snapshot into the daemon; returns entries added."""
        return int(self.request("restore", path=path).get("entries", 0))

    def shutdown(self) -> bool:
        """Ask the daemon to stop; the connection closes after the ack."""
        result = self.request("shutdown")
        return bool(result.get("stopping"))
