"""The unified typed query API — the *single* query surface of the repo.

Every route question this reproduction asks — "what is the policy path
from src to dst?", "which ASes observe both ends of this circuit?",
"what does this hijack capture?" — is expressed as one of three typed
queries, batched into a :class:`BatchRequest`, and answered with typed
results carrying ``schema_version``:

- :class:`PathQuery` → :class:`PathResult` — one (src, dst) policy path;
- :class:`ExposureQuery` → :class:`ExposureResult` — the ASes observing
  both ends of a circuit under an observation mode (§3.3), optionally
  intersected with a colluding adversary set;
- :class:`HijackQuery` → :class:`HijackQueryResult` — a hijack's capture
  set and Tor-level damage (§3.2), optionally scored against client ASes.

The same objects travel two ways: in-process callers hand them to
:class:`repro.serve.facade.QueryFacade` (which resilience, surveillance,
and the CLI all route through), and the :mod:`repro.serve.daemon`
serialises them over a line-JSON socket via :func:`encode` /
:func:`decode`.  Both paths produce bit-identical results because both
bottom out in the same facade.

Two further request shapes exist for the in-process tier only (they carry
no wire form because their results are kernel outcome objects):

- :class:`PathBatch` → :class:`PathBatchResult` — the typed form of
  :meth:`repro.asgraph.engine.RoutingEngine.paths_many`;
- :class:`OutcomeBatch` → :class:`OutcomeBatchResult` — the typed form of
  :meth:`repro.asgraph.engine.RoutingEngine.outcomes_many`.

Wire form: every object is a JSON document with a ``"type"``
discriminator; :func:`decode` validates shape and values and raises
:class:`WireError` with a message suitable for an error response.  All
collection fields are normalised (sorted, de-duplicated where they are
sets) at construction, so ``decode(encode(x)) == x`` holds exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "API_SCHEMA_VERSION",
    "WireError",
    "PathQuery",
    "ExposureQuery",
    "HijackQuery",
    "PathResult",
    "ExposureResult",
    "HijackQueryResult",
    "QueryError",
    "BatchRequest",
    "BatchResponse",
    "PathBatch",
    "PathBatchResult",
    "OutcomeBatch",
    "OutcomeBatchResult",
    "encode",
    "decode",
    "query_key",
]

#: Version of the wire schema; bump on any incompatible payload change.
API_SCHEMA_VERSION = 1

#: Observation modes an :class:`ExposureQuery` accepts (the values of
#: :class:`repro.core.surveillance.ObservationMode`, kept as plain strings
#: so this module stays dependency-free; cross-checked by the test suite).
EXPOSURE_MODES = ("forward", "reverse", "either")

#: Attack kinds a :class:`HijackQuery` accepts (the values of
#: :class:`repro.bgpsim.attacks.AttackKind`, same plain-string rationale).
HIJACK_KINDS = (
    "same-prefix-hijack",
    "more-specific-hijack",
    "interception",
    "community-scoped-hijack",
)


class WireError(ValueError):
    """A wire document is malformed: wrong type, field, or value."""


def _check_asn(name: str, value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise WireError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def _asn_tuple(name: str, values: Iterable[object]) -> Tuple[int, ...]:
    return tuple(sorted({_check_asn(name, v) for v in values}))


# -- queries -----------------------------------------------------------------


@dataclass(frozen=True)
class PathQuery:
    """Policy path from ``src`` towards ``dst``'s prefix."""

    src: int
    dst: int

    def __post_init__(self) -> None:
        _check_asn("src", self.src)
        _check_asn("dst", self.dst)


@dataclass(frozen=True)
class ExposureQuery:
    """Which ASes observe both ends of one circuit (§3.3).

    ``mode`` is an observation model value (``"forward"`` | ``"reverse"``
    | ``"either"``).  With a non-empty ``adversaries`` set the result also
    reports whether the colluding set compromises the circuit.
    """

    client: int
    guard: int
    exit: int
    dest: int
    mode: str = "either"
    adversaries: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in ("client", "guard", "exit", "dest"):
            _check_asn(name, getattr(self, name))
        if self.mode not in EXPOSURE_MODES:
            raise WireError(
                f"mode must be one of {EXPOSURE_MODES}, got {self.mode!r}"
            )
        object.__setattr__(
            self, "adversaries", _asn_tuple("adversaries", self.adversaries)
        )


@dataclass(frozen=True)
class HijackQuery:
    """A hijack of ``victim``'s prefix by ``attacker`` (§3.2).

    ``clients`` (optional) are client ASes to score: the result reports
    which of them the attacker captures and — for same-prefix hijacks —
    which still route to the true origin (the resilience question).
    """

    victim: int
    attacker: int
    kind: str = "same-prefix-hijack"
    clients: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        _check_asn("victim", self.victim)
        _check_asn("attacker", self.attacker)
        if self.kind not in HIJACK_KINDS:
            raise WireError(
                f"kind must be one of {HIJACK_KINDS}, got {self.kind!r}"
            )
        object.__setattr__(self, "clients", _asn_tuple("clients", self.clients))


# -- results -----------------------------------------------------------------


@dataclass(frozen=True)
class PathResult:
    """Answer to a :class:`PathQuery`; ``path`` is None when unreachable."""

    src: int
    dst: int
    path: Optional[Tuple[int, ...]] = None
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_asn("src", self.src)
        _check_asn("dst", self.dst)
        if self.path is not None:
            object.__setattr__(
                self, "path", tuple(_check_asn("path hop", h) for h in self.path)
            )


@dataclass(frozen=True)
class ExposureResult:
    """Answer to an :class:`ExposureQuery`.

    ``observers`` are the ASes seeing both circuit ends under the query's
    mode; ``compromised`` is None when the query named no adversaries.
    """

    query: ExposureQuery
    observers: Tuple[int, ...]
    compromised: Optional[bool] = None
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "observers", _asn_tuple("observers", self.observers))

    @property
    def num_observers(self) -> int:
        return len(self.observers)


@dataclass(frozen=True)
class HijackQueryResult:
    """Answer to a :class:`HijackQuery`.

    ``victim_retained_clients`` is populated for same-prefix hijacks only
    (the resilience semantics: clients whose selected route still reaches
    the true origin); it is empty for other kinds, where "not captured"
    does not imply "still reaches the victim".
    """

    query: HijackQuery
    capture_set: Tuple[int, ...]
    capture_fraction: float
    interception_feasible: bool = False
    captured_clients: Tuple[int, ...] = ()
    victim_retained_clients: Tuple[int, ...] = ()
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "capture_set", _asn_tuple("capture_set", self.capture_set)
        )
        object.__setattr__(
            self,
            "captured_clients",
            _asn_tuple("captured_clients", self.captured_clients),
        )
        object.__setattr__(
            self,
            "victim_retained_clients",
            _asn_tuple("victim_retained_clients", self.victim_retained_clients),
        )
        if not isinstance(self.capture_fraction, float):
            object.__setattr__(
                self, "capture_fraction", float(self.capture_fraction)
            )


@dataclass(frozen=True)
class QueryError:
    """A per-query failure slot inside a :class:`BatchResponse`.

    One bad query never poisons its batch: the daemon answers the others
    and puts a :class:`QueryError` in the failing slot.
    """

    kind: str
    message: str
    schema_version: int = API_SCHEMA_VERSION


# -- batches -----------------------------------------------------------------

_QUERY_TYPES = (PathQuery, ExposureQuery, HijackQuery)
_RESULT_TYPES = (PathResult, ExposureResult, HijackQueryResult, QueryError)


@dataclass(frozen=True)
class BatchRequest:
    """An ordered batch of queries; results come back slot-for-slot."""

    queries: Tuple[object, ...]
    id: Optional[str] = None

    def __post_init__(self) -> None:
        queries = tuple(self.queries)
        for q in queries:
            if not isinstance(q, _QUERY_TYPES):
                raise WireError(f"not a query object: {q!r}")
        object.__setattr__(self, "queries", queries)
        if self.id is not None and not isinstance(self.id, str):
            raise WireError(f"batch id must be a string, got {self.id!r}")


@dataclass(frozen=True)
class BatchResponse:
    """Results aligned with the request's queries (errors slot in-place)."""

    results: Tuple[object, ...]
    id: Optional[str] = None
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        results = tuple(self.results)
        for r in results:
            if not isinstance(r, _RESULT_TYPES):
                raise WireError(f"not a result object: {r!r}")
        object.__setattr__(self, "results", results)


# -- in-process batch shapes (no wire form) ----------------------------------


@dataclass(frozen=True)
class PathBatch:
    """Typed request for :meth:`RoutingEngine.paths_many`.

    ``workers``/``chunk_size`` carry the process-pool fan-out knobs that
    used to be loose keyword arguments.
    """

    queries: Tuple[PathQuery, ...]
    workers: Optional[int] = None
    chunk_size: int = 8

    def __post_init__(self) -> None:
        queries = tuple(self.queries)
        for q in queries:
            if not isinstance(q, PathQuery):
                raise WireError(f"not a PathQuery: {q!r}")
        object.__setattr__(self, "queries", queries)

    @classmethod
    def of(
        cls,
        pairs: Iterable[Tuple[int, int]],
        workers: Optional[int] = None,
        chunk_size: int = 8,
    ) -> "PathBatch":
        """Build from raw (src, dst) pairs."""
        return cls(
            queries=tuple(PathQuery(src=s, dst=d) for s, d in pairs),
            workers=workers,
            chunk_size=chunk_size,
        )


@dataclass(frozen=True)
class PathBatchResult:
    """Per-query paths, input order preserved (duplicates included)."""

    results: Tuple[PathResult, ...]
    schema_version: int = API_SCHEMA_VERSION

    def mapping(self) -> Dict[Tuple[int, int], Optional[Tuple[int, ...]]]:
        """The legacy ``{(src, dst): path}`` view."""
        return {(r.src, r.dst): r.path for r in self.results}

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


@dataclass(frozen=True)
class OutcomeBatch:
    """Typed request for :meth:`RoutingEngine.outcomes_many`.

    ``rows`` are announcement sets in any shape ``outcome()`` accepts;
    ``targets`` is None, one shared set, or a per-row sequence — exactly
    the semantics the loose-argument form had.
    """

    rows: Tuple[object, ...]
    excluded_links: Optional[Tuple[frozenset, ...]] = None
    origin_export_scopes: Optional[Tuple[Tuple[int, frozenset], ...]] = None
    targets: object = None

    @classmethod
    def of(
        cls,
        rows: Sequence[object],
        excluded_links: Optional[Iterable[Iterable[int]]] = None,
        origin_export_scopes: Optional[Dict[int, frozenset]] = None,
        targets: object = None,
    ) -> "OutcomeBatch":
        return cls(
            rows=tuple(rows),
            excluded_links=(
                tuple(frozenset(l) for l in excluded_links)
                if excluded_links is not None
                else None
            ),
            origin_export_scopes=(
                tuple(sorted(origin_export_scopes.items()))
                if origin_export_scopes is not None
                else None
            ),
            targets=targets,
        )


@dataclass(frozen=True)
class OutcomeBatchResult:
    """Per-row routing outcomes, input order preserved."""

    outcomes: Tuple[object, ...]  # RoutingOutcome / CompactOutcome per row

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __getitem__(self, index):
        return self.outcomes[index]


# -- wire codec --------------------------------------------------------------


def encode(obj: object) -> dict:
    """The JSON-able wire document of any wire-typed API object."""
    if isinstance(obj, PathQuery):
        return {"type": "path", "src": obj.src, "dst": obj.dst}
    if isinstance(obj, ExposureQuery):
        return {
            "type": "exposure",
            "client": obj.client,
            "guard": obj.guard,
            "exit": obj.exit,
            "dest": obj.dest,
            "mode": obj.mode,
            "adversaries": list(obj.adversaries),
        }
    if isinstance(obj, HijackQuery):
        return {
            "type": "hijack",
            "victim": obj.victim,
            "attacker": obj.attacker,
            "kind": obj.kind,
            "clients": list(obj.clients),
        }
    if isinstance(obj, PathResult):
        return {
            "type": "path_result",
            "schema_version": obj.schema_version,
            "src": obj.src,
            "dst": obj.dst,
            "path": list(obj.path) if obj.path is not None else None,
        }
    if isinstance(obj, ExposureResult):
        return {
            "type": "exposure_result",
            "schema_version": obj.schema_version,
            "query": encode(obj.query),
            "observers": list(obj.observers),
            "compromised": obj.compromised,
        }
    if isinstance(obj, HijackQueryResult):
        return {
            "type": "hijack_result",
            "schema_version": obj.schema_version,
            "query": encode(obj.query),
            "capture_set": list(obj.capture_set),
            "capture_fraction": obj.capture_fraction,
            "interception_feasible": obj.interception_feasible,
            "captured_clients": list(obj.captured_clients),
            "victim_retained_clients": list(obj.victim_retained_clients),
        }
    if isinstance(obj, QueryError):
        return {
            "type": "query_error",
            "schema_version": obj.schema_version,
            "kind": obj.kind,
            "message": obj.message,
        }
    if isinstance(obj, BatchRequest):
        return {
            "type": "batch",
            "id": obj.id,
            "queries": [encode(q) for q in obj.queries],
        }
    if isinstance(obj, BatchResponse):
        return {
            "type": "batch_result",
            "schema_version": obj.schema_version,
            "id": obj.id,
            "results": [encode(r) for r in obj.results],
        }
    raise WireError(f"object has no wire form: {obj!r}")


def _require(doc: dict, field_name: str) -> object:
    if field_name not in doc:
        raise WireError(f"{doc.get('type', '?')} document missing {field_name!r}")
    return doc[field_name]


def _check_version(doc: dict) -> int:
    version = doc.get("schema_version", API_SCHEMA_VERSION)
    if version != API_SCHEMA_VERSION:
        raise WireError(
            f"unsupported schema_version {version!r} "
            f"(this build speaks {API_SCHEMA_VERSION})"
        )
    return version


def decode(doc: object) -> object:
    """Inverse of :func:`encode`; raises :class:`WireError` on bad input."""
    if not isinstance(doc, dict):
        raise WireError(f"wire document must be a JSON object, got {type(doc).__name__}")
    kind = doc.get("type")
    try:
        if kind == "path":
            return PathQuery(src=_require(doc, "src"), dst=_require(doc, "dst"))
        if kind == "exposure":
            return ExposureQuery(
                client=_require(doc, "client"),
                guard=_require(doc, "guard"),
                exit=_require(doc, "exit"),
                dest=_require(doc, "dest"),
                mode=doc.get("mode", "either"),
                adversaries=tuple(doc.get("adversaries", ())),
            )
        if kind == "hijack":
            return HijackQuery(
                victim=_require(doc, "victim"),
                attacker=_require(doc, "attacker"),
                kind=doc.get("kind", "same-prefix-hijack"),
                clients=tuple(doc.get("clients", ())),
            )
        if kind == "path_result":
            path = doc.get("path")
            return PathResult(
                src=_require(doc, "src"),
                dst=_require(doc, "dst"),
                path=tuple(path) if path is not None else None,
                schema_version=_check_version(doc),
            )
        if kind == "exposure_result":
            query = decode(_require(doc, "query"))
            if not isinstance(query, ExposureQuery):
                raise WireError("exposure_result query is not an exposure query")
            return ExposureResult(
                query=query,
                observers=tuple(_require(doc, "observers")),
                compromised=doc.get("compromised"),
                schema_version=_check_version(doc),
            )
        if kind == "hijack_result":
            query = decode(_require(doc, "query"))
            if not isinstance(query, HijackQuery):
                raise WireError("hijack_result query is not a hijack query")
            return HijackQueryResult(
                query=query,
                capture_set=tuple(_require(doc, "capture_set")),
                capture_fraction=float(_require(doc, "capture_fraction")),
                interception_feasible=bool(doc.get("interception_feasible", False)),
                captured_clients=tuple(doc.get("captured_clients", ())),
                victim_retained_clients=tuple(
                    doc.get("victim_retained_clients", ())
                ),
                schema_version=_check_version(doc),
            )
        if kind == "query_error":
            return QueryError(
                kind=str(_require(doc, "kind")),
                message=str(_require(doc, "message")),
                schema_version=_check_version(doc),
            )
        if kind == "batch":
            queries = _require(doc, "queries")
            if not isinstance(queries, list):
                raise WireError("batch queries must be a list")
            decoded = tuple(decode(q) for q in queries)
            for q in decoded:
                if not isinstance(q, _QUERY_TYPES):
                    raise WireError(f"batch contains a non-query: {q!r}")
            return BatchRequest(queries=decoded, id=doc.get("id"))
        if kind == "batch_result":
            results = _require(doc, "results")
            if not isinstance(results, list):
                raise WireError("batch_result results must be a list")
            decoded = tuple(decode(r) for r in results)
            for r in decoded:
                if not isinstance(r, _RESULT_TYPES):
                    raise WireError(f"batch_result contains a non-result: {r!r}")
            return BatchResponse(
                results=decoded, id=doc.get("id"),
                schema_version=_check_version(doc),
            )
    except WireError:
        raise
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed {kind!r} document: {exc}") from None
    raise WireError(f"unknown wire type {kind!r}")


def query_key(query: object) -> str:
    """Canonical cache key of a query: its wire form, key-sorted."""
    return json.dumps(encode(query), sort_keys=True, separators=(",", ":"))
