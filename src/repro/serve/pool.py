"""Warm routing-session pool with an epoch-stamped churn feed.

:class:`SessionPool` generalises the private per-origin session LRU the
trace engine used to carry (``TraceEngine._session_for``) into a shared,
first-class subsystem: an LRU-bounded pool of live
:class:`~repro.asgraph.incremental.DynamicRoutingSession` objects keyed
by their announcement set, plus the *current* link-exclusion state those
sessions are kept in sync with.

Two call patterns share the pool:

- **live serving** (:class:`~repro.serve.facade.QueryFacade`,
  :class:`~repro.serve.daemon.RoutingDaemon`): the pool owns one global
  exclusion set fed by :meth:`apply_events` deltas (link ``down``/``up``);
  every borrow diffs the session onto that state via ``set_excluded``, so
  a churn event costs a subtree repair instead of a fresh propagation;
- **trace generation** (:class:`~repro.bgpsim.trace.TraceEngine`): each
  borrow passes its *own* per-event exclusion set (``excluded=``), and the
  pool is purely the LRU + single-release eviction discipline.

Epoch semantics: :meth:`apply_events` is the only writer.  Each call —
even an empty one — advances the monotonic ``epoch`` by exactly one and
eagerly re-syncs every pooled session, returning which keys *provably*
kept their routes (every per-link diff was a routing-neutral ``noop`` in
the session's stats) so the result cache can invalidate exactly the
affected origins' documents.  Readers
(batches) enter :meth:`reader`; ``apply_events`` takes the writer side of
the same gate, so a query batch always executes entirely at epoch N or
entirely at epoch N+1 — never a torn mix.

Eviction releases a session exactly once: over-cap entries are popped
from the LRU and ``release()``d so their undo logs and label arrays
cannot be pinned alive by lingering references.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph

__all__ = ["ChurnReport", "PoolStats", "SessionPool", "normalize_events"]

_Link = FrozenSet[int]
#: a churn delta: ("down" | "up", (a, b))
_Event = Tuple[str, Tuple[int, int]]


def normalize_events(
    events: Iterable[object], graph: Optional[ASGraph] = None
) -> List[_Event]:
    """Canonicalise a churn-event batch.

    Accepts ``("down", (a, b))`` tuples or wire-form
    ``{"op": "down", "link": [a, b]}`` dicts; returns ``(op, (lo, hi))``
    tuples.  With ``graph`` given, refuses events naming ASes or links the
    topology does not have — a failed link that never existed is a caller
    bug, not a routing no-op.
    """
    out: List[_Event] = []
    for event in events:
        if isinstance(event, dict):
            op, link = event.get("op"), event.get("link")
        else:
            op, link = event  # type: ignore[misc]
        if op not in ("down", "up"):
            raise ValueError(f"churn event op must be 'down' or 'up', got {op!r}")
        try:
            a, b = (int(x) for x in link)  # type: ignore[union-attr]
        except (TypeError, ValueError):
            raise ValueError(f"churn event link must be an (a, b) pair, got {link!r}")
        if a == b:
            raise ValueError(f"churn event link endpoints are equal: {a}")
        if graph is not None:
            for asn in (a, b):
                if asn not in graph:
                    raise ValueError(f"AS{asn} not in topology")
            if b not in graph.neighbours(a):
                raise ValueError(f"no link {a}-{b} in topology")
        out.append((op, (min(a, b), max(a, b))))
    return out


@dataclass(frozen=True)
class ChurnReport:
    """What one :meth:`SessionPool.apply_events` call did."""

    #: the epoch after the bump (monotonic, one per apply call)
    epoch: int
    #: events applied (after normalisation)
    events: int
    #: exclusion set now in force
    excluded_links: FrozenSet[_Link]
    #: pooled keys whose routes changed (subtree repairs happened)
    repaired_keys: Tuple[Tuple[int, ...], ...]
    #: pooled keys whose routes provably did not change
    proven_keys: Tuple[Tuple[int, ...], ...]
    #: True when the event batch left the exclusion set exactly as it was
    unchanged: bool
    #: result-cache entries invalidated by this bump (filled by the facade)
    invalidated: int = 0


@dataclass(frozen=True)
class PoolStats:
    """Counter snapshot for the pool."""

    sessions: int
    hits: int
    misses: int
    created: int
    evictions: int
    repairs: int
    epoch: int
    excluded_links: int


class _RWGate:
    """A tiny reader-writer gate: many batches, one epoch bump.

    Readers (query batches) may overlap; the writer (``apply_events``)
    excludes new readers, drains the in-flight ones, and runs alone.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._writer = True
            while self._readers:
                self._cond.wait()
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class SessionPool:
    """LRU-bounded pool of warm routing sessions keyed by announcement set.

    ``counter_prefix`` names the :mod:`repro.obs` counters
    (``<prefix>.created`` / ``.hits`` / ``.misses`` / ``.evictions`` /
    ``.repairs`` and the ``<prefix>.epoch`` gauge); the serve tier uses
    the default ``serve.pool``, the trace engine keeps its historical
    ``trace.sessions`` names.
    """

    def __init__(
        self,
        graph: ASGraph,
        *,
        engine: Optional[RoutingEngine] = None,
        cap: int = 256,
        counter_prefix: str = "serve.pool",
    ) -> None:
        if cap < 1:
            raise ValueError("cap must be positive")
        self.graph = graph
        self.engine = engine if engine is not None else shared_engine()
        self.cap = cap
        self.counter_prefix = counter_prefix
        self._lock = threading.Lock()
        self._gate = _RWGate()
        self._sessions: "OrderedDict[Tuple[int, ...], object]" = OrderedDict()
        self._excluded: FrozenSet[_Link] = frozenset()
        self._epoch = 0
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.created = 0
        self.evictions = 0
        self.repairs = 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def keys(self) -> List[Tuple[int, ...]]:
        """The pooled announcement-set keys, LRU order (oldest first)."""
        with self._lock:
            return list(self._sessions)

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def excluded_links(self) -> FrozenSet[_Link]:
        return self._excluded

    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(
                sessions=len(self._sessions),
                hits=self.hits,
                misses=self.misses,
                created=self.created,
                evictions=self.evictions,
                repairs=self.repairs,
                epoch=self._epoch,
                excluded_links=len(self._excluded),
            )

    # -- borrow / return -----------------------------------------------------

    @staticmethod
    def key_for(origins: Union[int, Iterable[int]]) -> Tuple[int, ...]:
        """Canonical pool key for an announcement set."""
        if isinstance(origins, int):
            return (origins,)
        return tuple(sorted(set(int(o) for o in origins)))

    @staticmethod
    def _sync(session: object, target: FrozenSet[_Link]) -> bool:
        """Diff ``session`` onto ``target``; True if routes may have changed.

        ``set_excluded`` reports whether the *exclusion set* moved, which
        overstates churn: failing a link no route crosses is recorded as a
        ``noop`` in the session's stats without touching any label.  The
        events-minus-noops delta is therefore the proof we need — zero
        non-noop operations means the routes are bit-identical to before
        the call.  Sessions without that accounting (the legacy recompute
        kernel) conservatively report every exclusion change as a route
        change.
        """
        stats = getattr(session, "stats", None)
        before = (stats.events, stats.noops) if stats is not None else (0, 0)
        if not session.set_excluded(target):
            return False
        if stats is None:
            return True
        events = stats.events - before[0]
        noops = stats.noops - before[1]
        return events > noops

    @contextmanager
    def borrow(
        self,
        origins: Union[int, Iterable[int]],
        *,
        excluded: Optional[FrozenSet[_Link]] = None,
    ) -> Iterator[object]:
        """Borrow the warm session for ``origins``; returns it on exit.

        The session is taken *out* of the pool for the duration (two
        threads borrowing the same key get distinct sessions), synced to
        the pool's current exclusion set — or to ``excluded`` when the
        caller manages its own per-query exclusions, as the trace engine
        does — and put back on exit even if the body raises, so an error
        path can never leak an unreleased session.
        """
        if self._closed:
            raise RuntimeError("session pool is closed")
        key = self.key_for(origins)
        with self._lock:
            session = self._sessions.pop(key, None)
            if session is not None:
                self.hits += 1
            else:
                self.misses += 1
            target = excluded if excluded is not None else self._excluded
        prefix = self.counter_prefix
        if session is None:
            obs.add(f"{prefix}.misses")
            session = self.engine.session(
                self.graph, list(key), excluded_links=target
            )
            with self._lock:
                self.created += 1
            obs.add(f"{prefix}.created")
        else:
            obs.add(f"{prefix}.hits")
            if self._sync(session, target):
                with self._lock:
                    self.repairs += 1
                obs.add(f"{prefix}.repairs")
        try:
            yield session
        finally:
            self._return(key, session)

    def _return(self, key: Tuple[int, ...], session: object) -> None:
        to_release: List[object] = []
        with self._lock:
            if self._closed or getattr(session, "released", False):
                if not getattr(session, "released", True):
                    to_release.append(session)
            elif key in self._sessions:
                # A concurrent borrower of the same key already returned
                # its session; keep the resident one, retire this copy.
                to_release.append(session)
            else:
                self._sessions[key] = session
                self._sessions.move_to_end(key)
            while len(self._sessions) > self.cap:
                _k, evicted = self._sessions.popitem(last=False)
                to_release.append(evicted)
            evictions = len(to_release)
            self.evictions += evictions
        for evicted in to_release:
            # Release outside the lock: drops the undo log, children
            # index, and label arrays exactly once per evicted session.
            evicted.release()
            obs.add(f"{self.counter_prefix}.evictions")

    # -- churn feed ----------------------------------------------------------

    @contextmanager
    def reader(self) -> Iterator[None]:
        """Shared-side gate for query batches.

        Everything executed inside sees one consistent epoch:
        :meth:`apply_events` waits for open readers and blocks new ones.
        """
        with self._gate.read():
            yield

    def apply_events(self, events: Iterable[object]) -> ChurnReport:
        """Apply a batch of link ``down``/``up`` deltas; one epoch bump.

        Takes the writer side of the batch gate, updates the exclusion
        set, and eagerly re-syncs every pooled session via per-link
        ``set_excluded`` diffing — the keys whose every diff op was a
        routing-neutral no-op come back as ``proven_keys`` so cached
        results that depend only on them can survive the epoch.
        """
        parsed = normalize_events(events, self.graph)
        with self._gate.write():
            with self._lock:
                if self._closed:
                    raise RuntimeError("session pool is closed")
                excluded = set(self._excluded)
                for op, (a, b) in parsed:
                    link = frozenset((a, b))
                    if op == "down":
                        excluded.add(link)
                    else:
                        excluded.discard(link)
                new = frozenset(excluded)
                unchanged = new == self._excluded
                self._excluded = new
                self._epoch += 1
                epoch = self._epoch
                sessions = list(self._sessions.items())
            repaired: List[Tuple[int, ...]] = []
            proven: List[Tuple[int, ...]] = []
            dropped: List[Tuple[int, ...]] = []
            for key, session in sessions:
                try:
                    changed = self._sync(session, new)
                except RuntimeError:
                    dropped.append(key)  # released out from under us
                    continue
                if changed:
                    repaired.append(key)
                else:
                    proven.append(key)
            with self._lock:
                self.repairs += len(repaired)
                for key in dropped:
                    self._sessions.pop(key, None)
        prefix = self.counter_prefix
        if repaired:
            obs.add(f"{prefix}.repairs", len(repaired))
        obs.add(f"{prefix}.events", len(parsed))
        obs.gauge(f"{prefix}.epoch", epoch)
        return ChurnReport(
            epoch=epoch,
            events=len(parsed),
            excluded_links=new,
            repaired_keys=tuple(repaired),
            proven_keys=tuple(proven),
            unchanged=unchanged,
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release every pooled session; further borrows raise."""
        with self._lock:
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.release()
