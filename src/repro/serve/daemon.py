"""The long-lived routing daemon: compile the graph once, query forever.

An asyncio TCP server that owns a warm :class:`RoutingEngine` and answers
the unified query API (:mod:`repro.serve.api`) over the JSONL protocol
(:mod:`repro.serve.protocol`).  Design points:

- **one facade** — every query runs through the same
  :class:`~repro.serve.facade.QueryFacade` an in-process caller would
  use, so daemon answers are bit-identical to direct calls;
- **per-client ordering** — each connection's requests are processed
  sequentially by its handler coroutine, so responses always come back in
  request order; concurrency happens *across* connections, with the
  blocking engine work pushed onto a thread pool so the event loop stays
  responsive;
- **graceful failure** — malformed frames and bad queries produce error
  responses, never a crash; oversized frames get an error and a close
  (line-sync is unrecoverable past an overrun); a client disconnecting
  mid-request just ends its handler;
- **observability** — requests are counted and spanned through
  :mod:`repro.obs`, so running under ``--obs-out`` streams the daemon's
  metrics as JSONL like every other command;
- **snapshot/restore** — the serve-tier result cache can be dumped to and
  reloaded from :mod:`repro.persist` checkpoints while running; snapshots
  carry the topology epoch and refuse a daemon whose epoch differs;
- **live churn** — the ``apply-events`` op feeds link up/down deltas into
  the daemon's :class:`~repro.serve.pool.SessionPool`, bumping the
  topology epoch atomically with respect to in-flight batches (a batch's
  answers are always entirely from epoch N or entirely from N+1) and
  invalidating exactly the affected cache entries.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import obs
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.serve import protocol
from repro.serve.api import BatchRequest, decode, encode
from repro.serve.facade import QueryFacade, ResultCache
from repro.serve.pool import SessionPool

__all__ = ["ServeConfig", "ServeStats", "RoutingDaemon"]


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs (address, framing cap, cache and pool sizes)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read it back from ``daemon.address``
    port: int = 0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    cache_entries: int = 65536
    #: warm incremental sessions kept by the SessionPool (LRU)
    pool_entries: int = 256


@dataclass(frozen=True)
class ServeStats:
    """Counter snapshot reported by the ``stats`` op and at shutdown."""

    connections: int
    requests: int
    batches: int
    queries: int
    errors: int
    cache_entries: int
    cache_hits: int
    cache_misses: int
    epoch: int = 0
    pool_sessions: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    pool_evictions: int = 0
    pool_repairs: int = 0


class RoutingDaemon:
    """One graph, one engine, one result cache, many clients."""

    def __init__(
        self,
        graph: ASGraph,
        *,
        engine: Optional[RoutingEngine] = None,
        config: ServeConfig = ServeConfig(),
    ) -> None:
        self.graph = graph
        self.engine = engine if engine is not None else shared_engine()
        self.config = config
        self.cache = ResultCache(max_entries=config.cache_entries)
        self.pool = SessionPool(
            graph, engine=self.engine, cap=config.pool_entries
        )
        self.facade = QueryFacade(
            graph, engine=self.engine, cache=self.cache, pool=self.pool
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None
        self._connections = 0
        self._requests = 0
        self._batches = 0
        self._queries = 0
        self._errors = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); valid once started."""
        if self._server is None:
            raise RuntimeError("daemon is not listening")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting clients; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_frame_bytes + 1,
        )
        return self.address

    async def wait_stopped(self) -> None:
        """Block until a ``shutdown`` request arrives, then close."""
        assert self._stopping is not None, "daemon is not started"
        await self._stopping.wait()
        await self.aclose()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            self.pool.close()
        if self._stopping is not None:
            self._stopping.set()

    def serve_forever(self) -> ServeStats:
        """Blocking entry point: run until a client asks for shutdown.

        Returns the final counter snapshot (also what ``repro serve``
        renders after the daemon exits).
        """

        async def _run() -> None:
            await self.start()
            await self.wait_stopped()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass
        return self.stats()

    def stats(self) -> ServeStats:
        pool = self.pool.stats()
        return ServeStats(
            connections=self._connections,
            requests=self._requests,
            batches=self._batches,
            queries=self._queries,
            errors=self._errors,
            cache_entries=len(self.cache),
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            epoch=pool.epoch,
            pool_sessions=pool.sessions,
            pool_hits=pool.hits,
            pool_misses=pool.misses,
            pool_evictions=pool.evictions,
            pool_repairs=pool.repairs,
        )

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        obs.add("serve.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    # The line outgrew the stream limit: protocol violation,
                    # tell the client and drop the connection.
                    await self._send(
                        writer,
                        protocol.response_error(
                            None,
                            "FrameError",
                            f"frame exceeds the "
                            f"{self.config.max_frame_bytes}-byte cap",
                        ),
                    )
                    break
                if not line:
                    break  # client closed
                response, keep_open = await self._respond(line)
                await self._send(writer, response)
                if not keep_open:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-write; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, doc: dict) -> None:
        writer.write(protocol.encode_frame(doc))
        await writer.drain()

    async def _respond(self, line: bytes) -> Tuple[dict, bool]:
        """Answer one frame; returns (response doc, keep connection open)."""
        self._requests += 1
        obs.add("serve.requests")
        try:
            doc = protocol.decode_frame(line, self.config.max_frame_bytes)
        except protocol.FrameError as exc:
            self._errors += 1
            obs.add("serve.errors")
            return (
                protocol.response_error(None, "FrameError", str(exc)),
                not exc.fatal,
            )
        op = doc.get("op")
        request_id = doc.get("id")
        try:
            if op == "ping":
                return protocol.response_ok(op, {"pong": True}, request_id), True
            if op == "info":
                return protocol.response_ok(op, self._info(), request_id), True
            if op == "batch":
                result = await self._run_batch(doc)
                return protocol.response_ok(op, result, request_id), True
            if op == "apply-events":
                result = await self._run_apply_events(doc)
                return protocol.response_ok(op, result, request_id), True
            if op == "stats":
                return protocol.response_ok(op, self._stats_doc(), request_id), True
            if op == "snapshot":
                path = self._require_path(doc)
                entries = self.cache.snapshot(
                    path, self.engine.fingerprint(self.graph)
                )
                obs.add("serve.snapshots")
                return (
                    protocol.response_ok(
                        op, {"path": path, "entries": entries}, request_id
                    ),
                    True,
                )
            if op == "restore":
                path = self._require_path(doc)
                entries = self.cache.restore(
                    path, self.engine.fingerprint(self.graph)
                )
                obs.add("serve.restores")
                return (
                    protocol.response_ok(
                        op, {"path": path, "entries": entries}, request_id
                    ),
                    True,
                )
            if op == "shutdown":
                assert self._stopping is not None
                self._stopping.set()
                return (
                    protocol.response_ok(op, {"stopping": True}, request_id),
                    False,
                )
            raise ValueError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 — daemon must never crash
            self._errors += 1
            obs.add("serve.errors")
            return (
                protocol.response_error(
                    op if isinstance(op, str) else None,
                    type(exc).__name__,
                    str(exc),
                    request_id,
                ),
                True,
            )

    # -- ops -----------------------------------------------------------------

    async def _run_batch(self, doc: dict) -> dict:
        request = decode(doc.get("request"))
        if not isinstance(request, BatchRequest):
            raise ValueError("batch op requires a 'request' of type batch")
        self._batches += 1
        self._queries += len(request.queries)

        def work() -> dict:
            with obs.span("serve.batch", queries=len(request.queries)):
                response = self.facade.execute_batch(request)
            return encode(response)

        # The engine is CPU-bound and thread-safe: run it off the event
        # loop so other clients' frames keep flowing while this one routes.
        return await asyncio.get_running_loop().run_in_executor(None, work)

    async def _run_apply_events(self, doc: dict) -> dict:
        events = doc.get("events")
        if not isinstance(events, list):
            raise ValueError("apply-events op requires an 'events' list")

        def work() -> dict:
            with obs.span("serve.apply_events", events=len(events)):
                report = self.facade.apply_events(events)
            obs.add("serve.epoch_bumps")
            return {
                "epoch": report.epoch,
                "events": report.events,
                "excluded": sorted(
                    sorted(link) for link in report.excluded_links
                ),
                "repaired": len(report.repaired_keys),
                "proven": len(report.proven_keys),
                "invalidated": report.invalidated,
                "unchanged": report.unchanged,
            }

        # Runs on the same executor as batches; the pool's writer gate
        # drains in-flight batches before the epoch bump, so no batch
        # ever straddles two epochs.
        return await asyncio.get_running_loop().run_in_executor(None, work)

    def _info(self) -> dict:
        return {
            "num_ases": len(self.graph),
            "num_links": self.graph.num_links(),
            "ases": sorted(self.graph.ases),
            "kernel": self.engine.kernel,
            "graph_fingerprint": self.engine.fingerprint(self.graph),
        }

    def _stats_doc(self) -> dict:
        stats = self.stats()
        engine = self.engine.stats()
        obs.gauge("serve.cache.entries", stats.cache_entries)
        obs.gauge("serve.pool.epoch", stats.epoch)
        return {
            "serve": {
                "connections": stats.connections,
                "requests": stats.requests,
                "batches": stats.batches,
                "queries": stats.queries,
                "errors": stats.errors,
                "cache_entries": stats.cache_entries,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
            },
            "pool": {
                "epoch": stats.epoch,
                "sessions": stats.pool_sessions,
                "hits": stats.pool_hits,
                "misses": stats.pool_misses,
                "evictions": stats.pool_evictions,
                "repairs": stats.pool_repairs,
                "excluded": sorted(
                    sorted(link) for link in self.pool.excluded_links
                ),
            },
            "engine": {
                "queries": engine.queries,
                "hits": engine.hits,
                "misses": engine.misses,
                "evictions": engine.evictions,
                "entries": engine.entries,
                "compute_seconds": engine.compute_seconds,
                "batches": engine.batches,
                "sessions": engine.sessions,
            },
        }

    @staticmethod
    def _require_path(doc: dict) -> str:
        path = doc.get("path")
        if not isinstance(path, str) or not path:
            raise ValueError(f"op {doc.get('op')!r} requires a 'path' string")
        return path
