"""Serving layer: the unified query API, its facade, and the daemon.

``repro.serve.api`` is the single typed query surface for routing
questions — in-process callers execute it through
:class:`~repro.serve.facade.QueryFacade`, remote callers through
:class:`~repro.serve.daemon.RoutingDaemon` /
:class:`~repro.serve.client.ServeClient`, and both paths produce
bit-identical results.
"""

from repro.serve.api import (
    API_SCHEMA_VERSION,
    BatchRequest,
    BatchResponse,
    ExposureQuery,
    ExposureResult,
    HijackQuery,
    HijackQueryResult,
    OutcomeBatch,
    OutcomeBatchResult,
    PathBatch,
    PathBatchResult,
    PathQuery,
    PathResult,
    QueryError,
    WireError,
    decode,
    encode,
    query_key,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import RoutingDaemon, ServeConfig, ServeStats
from repro.serve.facade import QueryFacade, ResultCache
from repro.serve.follow import ChurnFeed, LinkEvent, follow, link_events
from repro.serve.pool import ChurnReport, PoolStats, SessionPool
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "API_SCHEMA_VERSION",
    "BatchRequest",
    "BatchResponse",
    "ExposureQuery",
    "ExposureResult",
    "HijackQuery",
    "HijackQueryResult",
    "OutcomeBatch",
    "OutcomeBatchResult",
    "PathBatch",
    "PathBatchResult",
    "PathQuery",
    "PathResult",
    "QueryError",
    "WireError",
    "decode",
    "encode",
    "query_key",
    "ServeClient",
    "ServeError",
    "RoutingDaemon",
    "ServeConfig",
    "ServeStats",
    "QueryFacade",
    "ResultCache",
    "SessionPool",
    "ChurnReport",
    "PoolStats",
    "ChurnFeed",
    "LinkEvent",
    "follow",
    "link_events",
    "MAX_FRAME_BYTES",
    "FrameError",
    "decode_frame",
    "encode_frame",
]
