"""Query execution behind the unified API, shared by all callers.

:class:`QueryFacade` is *the* implementation of the typed query surface in
:mod:`repro.serve.api`: the daemon deserialises wire queries into it, and
in-process callers (``core/resilience``, ``core/surveillance``, the CLI)
construct one directly.  Either way the answers are bit-identical because
there is exactly one execution path.

Three execution modes share that path, picked per facade:

- **batched** (default): path queries go through the engine's grouped
  ``paths_many``, same-prefix hijacks share one multi-origin propagation
  via ``outcomes_many``, and exposure queries warm all four endpoint
  origins in one batched pass before reading segment views;
- **pooled** (``pool=`` a :class:`~repro.serve.pool.SessionPool`): the
  facade consults the pool's warm incremental sessions first — a borrow
  costs a ``set_excluded`` diff, not a propagation — and falls back to
  the engine (with the pool's live exclusion set) for attack kinds a
  plain session cannot express; batches run under the pool's reader gate
  so an ``apply-events`` epoch bump never tears a batch;
- **excluded** (``excluded_links=`` a static set): the cold reference for
  a churned topology — every answer recomputed through the engine under
  the full exclusion set.  Pooled answers at any epoch are bit-identical
  to an excluded-mode facade built with that epoch's exclusion set.

:class:`ResultCache` is the serving tier's memo: completed wire results
keyed by the query's canonical wire form, LRU-bounded, stamped with the
pool keys each answer depends on, and versioned by the topology epoch —
churn invalidates exactly the entries whose dependencies could not be
proven unchanged, instead of flushing the cache.  Snapshots carry the
epoch alongside the graph fingerprint and refuse to restore into a
daemon whose epoch differs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import ExitStack
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.persist import CheckpointWriter, read_checkpoint
from repro.serve.api import (
    API_SCHEMA_VERSION,
    BatchRequest,
    BatchResponse,
    ExposureQuery,
    ExposureResult,
    HijackQuery,
    HijackQueryResult,
    OutcomeBatch,
    PathBatch,
    PathQuery,
    PathResult,
    QueryError,
    decode,
    encode,
    query_key,
)
from repro.serve.pool import ChurnReport, SessionPool

__all__ = ["QueryFacade", "ResultCache"]

#: experiment name recorded in cache snapshot headers
_SNAPSHOT_EXPERIMENT = "serve-cache"

_Link = FrozenSet[int]
#: a cache entry's dependency: one pool key (announcement set)
_Dep = Tuple[int, ...]


class ResultCache:
    """Thread-safe LRU of wire-form query results, versioned by epoch.

    Entries map :func:`repro.serve.api.query_key` strings to wire result
    documents plus the pool keys (announcement sets) the answer depends
    on.  :meth:`advance_epoch` drops exactly the entries whose
    dependencies were not proven unchanged by the churn bump.  Snapshots
    reuse the :mod:`repro.persist` checkpoint format (versioned header +
    one record per entry), tagged with the graph fingerprint *and* the
    topology epoch so a snapshot can never be restored against a
    different topology or a daemon whose epoch has moved.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._deps: Dict[str, Tuple[_Dep, ...]] = {}
        #: reverse index: pool key -> cache keys depending on it
        self._by_dep: Dict[_Dep, Set[str]] = {}
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            doc = self._entries.get(key)
            if doc is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return doc

    def put(self, key: str, doc: dict, deps: Tuple[_Dep, ...] = ()) -> None:
        with self._lock:
            if key in self._entries:
                self._drop_deps(key)
            self._entries[key] = doc
            self._entries.move_to_end(key)
            self._deps[key] = deps
            for dep in deps:
                self._by_dep.setdefault(dep, set()).add(key)
            while len(self._entries) > self.max_entries:
                old_key, _ = self._entries.popitem(last=False)
                self._drop_deps(old_key)

    def _drop_deps(self, key: str) -> None:
        """Remove ``key`` from the reverse index (lock held)."""
        for dep in self._deps.pop(key, ()):
            holders = self._by_dep.get(dep)
            if holders is not None:
                holders.discard(key)
                if not holders:
                    del self._by_dep[dep]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- epoch versioning ----------------------------------------------------

    def advance_epoch(
        self,
        epoch: int,
        proven: Iterable[_Dep] = (),
        *,
        keep_all: bool = False,
    ) -> int:
        """Move the cache to ``epoch``; returns entries invalidated.

        ``proven`` are the pool keys whose routes the churn bump provably
        left unchanged (``SessionPool.apply_events``'s ``proven_keys``).
        An entry survives only when *every* one of its dependencies is
        proven — anything else could have a different answer at the new
        epoch and is dropped.  ``keep_all=True`` is the no-op-bump fast
        path (the event batch did not change the exclusion set at all),
        where every entry stays valid.
        """
        with self._lock:
            if epoch < self._epoch:
                raise ValueError(
                    f"epoch moved backwards: cache at {self._epoch}, got {epoch}"
                )
            self._epoch = epoch
            if keep_all:
                return 0
            proven_set = set(proven)
            doomed = [
                key
                for key, deps in self._deps.items()
                if not deps or any(dep not in proven_set for dep in deps)
            ]
            for key in doomed:
                self._entries.pop(key, None)
                self._drop_deps(key)
            self.invalidations += len(doomed)
            return len(doomed)

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self, path: str, graph_fingerprint: str) -> int:
        """Write every entry to ``path``; returns the entry count."""
        with self._lock:
            entries = [
                (key, doc, self._deps.get(key, ()))
                for key, doc in self._entries.items()
            ]
            epoch = self._epoch
        with CheckpointWriter.create(
            path,
            {
                "experiment": _SNAPSHOT_EXPERIMENT,
                "seed": 0,
                "total_trials": len(entries),
                "params": {
                    "graph_fingerprint": graph_fingerprint,
                    "api_schema_version": API_SCHEMA_VERSION,
                    "topology_epoch": epoch,
                },
            },
        ) as writer:
            for index, (key, doc, deps) in enumerate(entries):
                writer.append(
                    {
                        "type": "trial",
                        "id": key,
                        "index": index,
                        "result": doc,
                        "deps": [list(dep) for dep in deps],
                    }
                )
        return len(entries)

    def restore(self, path: str, graph_fingerprint: str) -> int:
        """Load a snapshot written by :meth:`snapshot`; returns entries added.

        Raises ``ValueError`` when the snapshot belongs to a different
        topology or API schema version, or when its topology epoch does
        not match this cache's — a snapshot taken before (or after) churn
        that this daemon has (or has not) seen would silently serve
        answers from the wrong topology state.
        """
        header, records = read_checkpoint(path)
        if header.get("experiment") != _SNAPSHOT_EXPERIMENT:
            raise ValueError(
                f"{path} is not a serve-cache snapshot "
                f"(experiment {header.get('experiment')!r})"
            )
        params = header.get("params") or {}
        snap_fp = params.get("graph_fingerprint")
        if snap_fp != graph_fingerprint:
            raise ValueError(
                f"snapshot {path} was taken over graph {snap_fp!r}, "
                f"this daemon serves {graph_fingerprint!r}"
            )
        if params.get("api_schema_version") != API_SCHEMA_VERSION:
            raise ValueError(
                f"snapshot {path} speaks api schema "
                f"{params.get('api_schema_version')!r}, "
                f"this build speaks {API_SCHEMA_VERSION}"
            )
        snap_epoch = int(params.get("topology_epoch", 0))
        if snap_epoch != self._epoch:
            raise ValueError(
                f"snapshot {path} was taken at topology epoch {snap_epoch}, "
                f"this daemon's epoch has advanced to {self._epoch}"
                if snap_epoch < self._epoch
                else f"snapshot {path} was taken at topology epoch "
                f"{snap_epoch}, ahead of this daemon's epoch {self._epoch}"
            )
        count = 0
        for record in records:
            key, doc = record.get("id"), record.get("result")
            if isinstance(key, str) and isinstance(doc, dict):
                decode(doc)  # refuse to cache entries this build can't speak
                deps = tuple(
                    tuple(int(a) for a in dep)
                    for dep in record.get("deps") or ()
                )
                self.put(key, doc, deps)
                count += 1
        return count


class QueryFacade:
    """Execute typed queries against one graph through one engine.

    ``cache`` (optional) is a :class:`ResultCache` consulted before — and
    populated after — execution; the daemon wires one in, in-process
    callers usually don't (the engine's outcome LRU already memoises the
    expensive part).  ``pool`` (optional) is a
    :class:`~repro.serve.pool.SessionPool` of warm incremental sessions
    consulted before the engine; ``excluded_links`` (optional, exclusive
    with ``pool``) pins a static exclusion set for cold recomputes over a
    churned topology.
    """

    def __init__(
        self,
        graph: ASGraph,
        *,
        engine: Optional[RoutingEngine] = None,
        cache: Optional[ResultCache] = None,
        pool: Optional[SessionPool] = None,
        excluded_links: Optional[Iterable[Iterable[int]]] = None,
    ) -> None:
        self.graph = graph
        self.engine = engine if engine is not None else shared_engine()
        self.cache = cache
        self.pool = pool
        if pool is not None and excluded_links:
            raise ValueError(
                "pass excluded_links or pool, not both: a pool owns its "
                "exclusion state (feed it through pool.apply_events)"
            )
        self.excluded_links: FrozenSet[_Link] = (
            frozenset(frozenset(link) for link in excluded_links)
            if excluded_links
            else frozenset()
        )

    # -- churn ---------------------------------------------------------------

    def apply_events(self, events: Iterable[object]) -> ChurnReport:
        """Feed link up/down deltas into the pool and version the cache.

        The pool bumps its epoch and repairs its warm sessions; the cache
        (when present) advances to the same epoch, dropping exactly the
        entries whose dependencies were not proven unchanged.  Returns
        the pool's :class:`~repro.serve.pool.ChurnReport` with
        ``invalidated`` filled in.
        """
        import dataclasses

        if self.pool is None:
            raise RuntimeError("facade has no session pool to apply events to")
        report = self.pool.apply_events(events)
        invalidated = 0
        if self.cache is not None:
            invalidated = self.cache.advance_epoch(
                report.epoch,
                report.proven_keys,
                keep_all=report.unchanged,
            )
        return dataclasses.replace(report, invalidated=invalidated)

    # -- single queries ------------------------------------------------------

    def execute(self, query: object) -> object:
        """Answer one query; returns the matching typed result."""
        response = self.execute_batch(BatchRequest(queries=(query,)))
        return response.results[0]

    # -- batches -------------------------------------------------------------

    def execute_batch(self, request: BatchRequest) -> BatchResponse:
        """Answer every query in the batch, slot-for-slot.

        A query that fails (unknown AS, etc.) yields a
        :class:`~repro.serve.api.QueryError` in its slot; the rest of the
        batch is unaffected.  With a pool attached the whole batch runs
        under the pool's reader gate, so every answer (and every cache
        write) belongs to one epoch — a concurrent ``apply-events``
        waits, it never tears the batch.
        """
        if self.pool is not None:
            with self.pool.reader():
                return self._execute_batch(request)
        return self._execute_batch(request)

    def _execute_batch(self, request: BatchRequest) -> BatchResponse:
        results: List[Optional[object]] = [None] * len(request.queries)
        todo: List[int] = []
        keys: List[Optional[str]] = [None] * len(request.queries)
        if self.cache is not None:
            for i, query in enumerate(request.queries):
                key = query_key(query)
                keys[i] = key
                doc = self.cache.get(key)
                if doc is not None:
                    results[i] = decode(doc)
                else:
                    todo.append(i)
        else:
            todo = list(range(len(request.queries)))

        path_rows = [i for i in todo if isinstance(request.queries[i], PathQuery)]
        hijack_rows = [i for i in todo if isinstance(request.queries[i], HijackQuery)]
        exposure_rows = [
            i for i in todo if isinstance(request.queries[i], ExposureQuery)
        ]
        if path_rows:
            self._execute_paths(request, path_rows, results)
        if hijack_rows:
            self._execute_hijacks(request, hijack_rows, results)
        if exposure_rows:
            self._execute_exposures(request, exposure_rows, results)

        if self.cache is not None:
            for i in todo:
                if not isinstance(results[i], QueryError):
                    self.cache.put(
                        keys[i],
                        encode(results[i]),
                        self._query_deps(request.queries[i]),
                    )
        return BatchResponse(results=tuple(results), id=request.id)

    # -- per-kind executors --------------------------------------------------

    def _execute_paths(
        self,
        request: BatchRequest,
        rows: List[int],
        results: List[Optional[object]],
    ) -> None:
        queries: List[PathQuery] = [request.queries[i] for i in rows]
        valid = [
            (i, q)
            for i, q in zip(rows, queries)
            if self._endpoints_ok(i, results, q.src, q.dst)
        ]
        if not valid:
            return
        if self.pool is not None:
            by_dst: Dict[int, List[Tuple[int, PathQuery]]] = {}
            for i, q in valid:
                by_dst.setdefault(q.dst, []).append((i, q))
            for dst, group in by_dst.items():
                with self.pool.borrow(dst) as session:
                    for i, q in group:
                        results[i] = PathResult(
                            src=q.src, dst=q.dst, path=session.path(q.src)
                        )
            return
        if self.excluded_links:
            # paths_many keys cannot carry exclusions; route the churned
            # recompute through per-origin outcomes instead.
            by_dst = {}
            for i, q in valid:
                by_dst.setdefault(q.dst, []).append((i, q))
            outcomes = self.engine.outcomes_many(
                self.graph,
                OutcomeBatch.of(
                    [[dst] for dst in by_dst],
                    excluded_links=self.excluded_links,
                ),
            )
            for dst, outcome in zip(by_dst, outcomes):
                for i, q in by_dst[dst]:
                    results[i] = PathResult(
                        src=q.src, dst=q.dst, path=outcome.path(q.src)
                    )
            return
        batch = self.engine.paths_many(
            self.graph, PathBatch(queries=tuple(q for _, q in valid))
        )
        for (i, _q), result in zip(valid, batch.results):
            results[i] = result

    def _execute_hijacks(
        self,
        request: BatchRequest,
        rows: List[int],
        results: List[Optional[object]],
    ) -> None:
        from repro.bgpsim.attacks import AttackKind, simulate_hijack

        excluded = self._current_excluded()
        same_prefix: List[Tuple[int, HijackQuery]] = []
        for i in rows:
            query: HijackQuery = request.queries[i]
            if not self._endpoints_ok(i, results, query.victim, query.attacker):
                continue
            if query.victim == query.attacker:
                results[i] = QueryError(
                    kind="ValueError",
                    message=f"victim and attacker are both AS{query.victim}",
                )
                continue
            if query.kind == AttackKind.SAME_PREFIX.value:
                same_prefix.append((i, query))
            else:
                try:
                    hijack = simulate_hijack(
                        self.graph,
                        victim=query.victim,
                        attacker=query.attacker,
                        kind=AttackKind(query.kind),
                        engine=self.engine,
                        excluded_links=excluded or None,
                    )
                except ValueError as exc:
                    results[i] = QueryError(kind="ValueError", message=str(exc))
                    continue
                captured = tuple(
                    c for c in query.clients if c in hijack.capture_set
                )
                results[i] = HijackQueryResult(
                    query=query,
                    capture_set=tuple(hijack.capture_set),
                    capture_fraction=hijack.capture_fraction,
                    interception_feasible=hijack.interception_feasible,
                    captured_clients=captured,
                )
        if not same_prefix:
            return
        total = len(self.graph)
        if self.pool is not None:
            # Warm pair sessions: a repeat of the same victim/attacker
            # pair across epochs costs a set_excluded diff, not a fresh
            # two-origin propagation.
            for i, query in same_prefix:
                with self.pool.borrow((query.victim, query.attacker)) as session:
                    outcome = session.outcome()
                self._finish_same_prefix(i, query, outcome, total, results)
            return
        # All same-prefix rows share one multi-origin propagation — the
        # same key shape ``simulate_hijack`` uses, so the engine LRU is
        # shared with every other same-prefix caller.
        outcomes = self.engine.outcomes_many(
            self.graph,
            OutcomeBatch.of(
                [(q.victim, q.attacker) for _, q in same_prefix],
                excluded_links=excluded or None,
            ),
        )
        for (i, query), outcome in zip(same_prefix, outcomes):
            self._finish_same_prefix(i, query, outcome, total, results)

    @staticmethod
    def _finish_same_prefix(
        i: int,
        query: HijackQuery,
        outcome: object,
        total: int,
        results: List[Optional[object]],
    ) -> None:
        captured_set = outcome.capture_set(query.attacker)
        retained_set = outcome.capture_set(query.victim)
        results[i] = HijackQueryResult(
            query=query,
            capture_set=tuple(captured_set),
            capture_fraction=len(captured_set) / total,
            captured_clients=tuple(
                c for c in query.clients if c in captured_set
            ),
            victim_retained_clients=tuple(
                c for c in query.clients if c in retained_set
            ),
        )

    def _execute_exposures(
        self,
        request: BatchRequest,
        rows: List[int],
        results: List[Optional[object]],
    ) -> None:
        from repro.core.surveillance import SurveillanceModel

        valid: List[Tuple[int, ExposureQuery]] = []
        origins: Dict[int, None] = {}
        for i in rows:
            query: ExposureQuery = request.queries[i]
            if not self._endpoints_ok(
                i, results, query.client, query.guard, query.exit, query.dest
            ):
                continue
            valid.append((i, query))
            for asn in (query.client, query.guard, query.exit, query.dest):
                origins[asn] = None
        if not valid:
            return
        if self.pool is not None:
            with ExitStack() as stack:
                sessions = {
                    o: stack.enter_context(self.pool.borrow(o)) for o in origins
                }
                self._resolve_exposures(
                    valid, results, lambda src, dst: sessions[dst].path(src)
                )
            return
        if self.excluded_links:
            outcomes = self.engine.outcomes_many(
                self.graph,
                OutcomeBatch.of(
                    [[o] for o in origins], excluded_links=self.excluded_links
                ),
            )
            by_origin = dict(zip(origins, outcomes))
            self._resolve_exposures(
                valid, results, lambda src, dst: by_origin[dst].path(src)
            )
            return
        model = SurveillanceModel(self.graph, engine=self.engine)
        # One batched propagation for every endpoint origin in the batch.
        model._warm(*origins)
        self._resolve_exposures(valid, results, model.path)

    def _resolve_exposures(
        self,
        valid: List[Tuple[int, ExposureQuery]],
        results: List[Optional[object]],
        path_fn,
    ) -> None:
        """Segment-view math over any path source (model, pool, outcomes)."""
        from repro.core.surveillance import ObservationMode, SegmentView

        def segment(a: int, b: int) -> SegmentView:
            forward = path_fn(a, b) or (a, b)
            reverse = path_fn(b, a) or (b, a)
            return SegmentView(
                forward=frozenset(forward), reverse=frozenset(reverse)
            )

        for i, query in valid:
            mode = ObservationMode(query.mode)
            entry = segment(query.client, query.guard)
            exit_side = segment(query.exit, query.dest)
            observers = entry.observers(mode) & exit_side.observers(mode)
            compromised: Optional[bool] = None
            if query.adversaries:
                adversary_set = set(query.adversaries)
                compromised = bool(
                    adversary_set & entry.observers(mode)
                ) and bool(adversary_set & exit_side.observers(mode))
            results[i] = ExposureResult(
                query=query,
                observers=tuple(observers),
                compromised=compromised,
            )

    # -- helpers -------------------------------------------------------------

    def _current_excluded(self) -> FrozenSet[_Link]:
        if self.pool is not None:
            return self.pool.excluded_links
        return self.excluded_links

    @staticmethod
    def _query_deps(query: object) -> Tuple[Tuple[int, ...], ...]:
        """Pool keys whose routing state this query's answer depends on."""
        if isinstance(query, PathQuery):
            return ((query.dst,),)
        if isinstance(query, ExposureQuery):
            deps = {
                (asn,)
                for asn in (query.client, query.guard, query.exit, query.dest)
            }
            return tuple(sorted(deps))
        if isinstance(query, HijackQuery):
            pair = tuple(sorted((query.victim, query.attacker)))
            from repro.bgpsim.attacks import AttackKind

            if query.kind == AttackKind.SAME_PREFIX.value:
                return (pair,)
            # Other attack kinds mix the pair propagation with single-origin
            # baselines; depend on all three, conservatively.
            return tuple(sorted({(query.victim,), (query.attacker,), pair}))
        return ()

    def _endpoints_ok(
        self, i: int, results: List[Optional[object]], *asns: int
    ) -> bool:
        for asn in asns:
            if asn not in self.graph:
                results[i] = QueryError(
                    kind="ValueError",
                    message=f"AS{asn} not in topology",
                )
                return False
        return True
