"""Query execution behind the unified API, shared by all callers.

:class:`QueryFacade` is *the* implementation of the typed query surface in
:mod:`repro.serve.api`: the daemon deserialises wire queries into it, and
in-process callers (``core/resilience``, ``core/surveillance``, the CLI)
construct one directly.  Either way the answers are bit-identical because
there is exactly one execution path.

Batch execution preserves the engine-level batching the per-caller code
used to hand-roll: path queries go through the engine's grouped
``paths_many``, same-prefix hijacks share one multi-origin propagation via
``outcomes_many``, and exposure queries warm all four endpoint origins in
one batched pass before reading segment views.

:class:`ResultCache` is the serving tier's memo: completed wire results
keyed by the query's canonical wire form, LRU-bounded, and snapshottable
through :mod:`repro.persist`'s versioned JSONL checkpoint format — so a
daemon can dump its warm state and a successor can start warm.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.persist import CheckpointWriter, read_checkpoint
from repro.serve.api import (
    API_SCHEMA_VERSION,
    BatchRequest,
    BatchResponse,
    ExposureQuery,
    ExposureResult,
    HijackQuery,
    HijackQueryResult,
    OutcomeBatch,
    PathBatch,
    PathQuery,
    PathResult,
    QueryError,
    decode,
    encode,
    query_key,
)

__all__ = ["QueryFacade", "ResultCache"]

#: experiment name recorded in cache snapshot headers
_SNAPSHOT_EXPERIMENT = "serve-cache"


class ResultCache:
    """Thread-safe LRU of wire-form query results.

    Entries map :func:`repro.serve.api.query_key` strings to wire result
    documents.  Snapshots reuse the :mod:`repro.persist` checkpoint format
    (versioned header + one record per entry), tagged with the graph
    fingerprint so a snapshot can never be restored against a different
    topology.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            doc = self._entries.get(key)
            if doc is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return doc

    def put(self, key: str, doc: dict) -> None:
        with self._lock:
            self._entries[key] = doc
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self, path: str, graph_fingerprint: str) -> int:
        """Write every entry to ``path``; returns the entry count."""
        with self._lock:
            entries = list(self._entries.items())
        with CheckpointWriter.create(
            path,
            {
                "experiment": _SNAPSHOT_EXPERIMENT,
                "seed": 0,
                "total_trials": len(entries),
                "params": {
                    "graph_fingerprint": graph_fingerprint,
                    "api_schema_version": API_SCHEMA_VERSION,
                },
            },
        ) as writer:
            for index, (key, doc) in enumerate(entries):
                writer.append(
                    {"type": "trial", "id": key, "index": index, "result": doc}
                )
        return len(entries)

    def restore(self, path: str, graph_fingerprint: str) -> int:
        """Load a snapshot written by :meth:`snapshot`; returns entries added.

        Raises ``ValueError`` when the snapshot belongs to a different
        topology or API schema version.
        """
        header, records = read_checkpoint(path)
        if header.get("experiment") != _SNAPSHOT_EXPERIMENT:
            raise ValueError(
                f"{path} is not a serve-cache snapshot "
                f"(experiment {header.get('experiment')!r})"
            )
        params = header.get("params") or {}
        snap_fp = params.get("graph_fingerprint")
        if snap_fp != graph_fingerprint:
            raise ValueError(
                f"snapshot {path} was taken over graph {snap_fp!r}, "
                f"this daemon serves {graph_fingerprint!r}"
            )
        if params.get("api_schema_version") != API_SCHEMA_VERSION:
            raise ValueError(
                f"snapshot {path} speaks api schema "
                f"{params.get('api_schema_version')!r}, "
                f"this build speaks {API_SCHEMA_VERSION}"
            )
        count = 0
        for record in records:
            key, doc = record.get("id"), record.get("result")
            if isinstance(key, str) and isinstance(doc, dict):
                decode(doc)  # refuse to cache entries this build can't speak
                self.put(key, doc)
                count += 1
        return count


class QueryFacade:
    """Execute typed queries against one graph through one engine.

    ``cache`` (optional) is a :class:`ResultCache` consulted before — and
    populated after — execution; the daemon wires one in, in-process
    callers usually don't (the engine's outcome LRU already memoises the
    expensive part).
    """

    def __init__(
        self,
        graph: ASGraph,
        *,
        engine: Optional[RoutingEngine] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.graph = graph
        self.engine = engine if engine is not None else shared_engine()
        self.cache = cache

    # -- single queries ------------------------------------------------------

    def execute(self, query: object) -> object:
        """Answer one query; returns the matching typed result."""
        response = self.execute_batch(BatchRequest(queries=(query,)))
        return response.results[0]

    # -- batches -------------------------------------------------------------

    def execute_batch(self, request: BatchRequest) -> BatchResponse:
        """Answer every query in the batch, slot-for-slot.

        A query that fails (unknown AS, etc.) yields a
        :class:`~repro.serve.api.QueryError` in its slot; the rest of the
        batch is unaffected.
        """
        results: List[Optional[object]] = [None] * len(request.queries)
        todo: List[int] = []
        keys: List[Optional[str]] = [None] * len(request.queries)
        if self.cache is not None:
            for i, query in enumerate(request.queries):
                key = query_key(query)
                keys[i] = key
                doc = self.cache.get(key)
                if doc is not None:
                    results[i] = decode(doc)
                else:
                    todo.append(i)
        else:
            todo = list(range(len(request.queries)))

        path_rows = [i for i in todo if isinstance(request.queries[i], PathQuery)]
        hijack_rows = [i for i in todo if isinstance(request.queries[i], HijackQuery)]
        exposure_rows = [
            i for i in todo if isinstance(request.queries[i], ExposureQuery)
        ]
        if path_rows:
            self._execute_paths(request, path_rows, results)
        if hijack_rows:
            self._execute_hijacks(request, hijack_rows, results)
        if exposure_rows:
            self._execute_exposures(request, exposure_rows, results)

        if self.cache is not None:
            for i in todo:
                if not isinstance(results[i], QueryError):
                    self.cache.put(keys[i], encode(results[i]))
        return BatchResponse(results=tuple(results), id=request.id)

    # -- per-kind executors --------------------------------------------------

    def _execute_paths(
        self,
        request: BatchRequest,
        rows: List[int],
        results: List[Optional[object]],
    ) -> None:
        queries: List[PathQuery] = [request.queries[i] for i in rows]
        valid = [
            (i, q)
            for i, q in zip(rows, queries)
            if self._endpoints_ok(i, results, q.src, q.dst)
        ]
        if not valid:
            return
        batch = self.engine.paths_many(
            self.graph, PathBatch(queries=tuple(q for _, q in valid))
        )
        for (i, _q), result in zip(valid, batch.results):
            results[i] = result

    def _execute_hijacks(
        self,
        request: BatchRequest,
        rows: List[int],
        results: List[Optional[object]],
    ) -> None:
        from repro.bgpsim.attacks import AttackKind, simulate_hijack

        same_prefix: List[Tuple[int, HijackQuery]] = []
        for i in rows:
            query: HijackQuery = request.queries[i]
            if not self._endpoints_ok(i, results, query.victim, query.attacker):
                continue
            if query.victim == query.attacker:
                results[i] = QueryError(
                    kind="ValueError",
                    message=f"victim and attacker are both AS{query.victim}",
                )
                continue
            if query.kind == AttackKind.SAME_PREFIX.value:
                same_prefix.append((i, query))
            else:
                try:
                    hijack = simulate_hijack(
                        self.graph,
                        victim=query.victim,
                        attacker=query.attacker,
                        kind=AttackKind(query.kind),
                        engine=self.engine,
                    )
                except ValueError as exc:
                    results[i] = QueryError(kind="ValueError", message=str(exc))
                    continue
                captured = tuple(
                    c for c in query.clients if c in hijack.capture_set
                )
                results[i] = HijackQueryResult(
                    query=query,
                    capture_set=tuple(hijack.capture_set),
                    capture_fraction=hijack.capture_fraction,
                    interception_feasible=hijack.interception_feasible,
                    captured_clients=captured,
                )
        if not same_prefix:
            return
        # All same-prefix rows share one multi-origin propagation — the
        # same key shape ``simulate_hijack`` uses, so the engine LRU is
        # shared with every other same-prefix caller.
        outcomes = self.engine.outcomes_many(
            self.graph,
            OutcomeBatch.of([(q.victim, q.attacker) for _, q in same_prefix]),
        )
        total = len(self.graph)
        for (i, query), outcome in zip(same_prefix, outcomes):
            captured_set = outcome.capture_set(query.attacker)
            retained_set = outcome.capture_set(query.victim)
            results[i] = HijackQueryResult(
                query=query,
                capture_set=tuple(captured_set),
                capture_fraction=len(captured_set) / total,
                captured_clients=tuple(
                    c for c in query.clients if c in captured_set
                ),
                victim_retained_clients=tuple(
                    c for c in query.clients if c in retained_set
                ),
            )

    def _execute_exposures(
        self,
        request: BatchRequest,
        rows: List[int],
        results: List[Optional[object]],
    ) -> None:
        from repro.core.surveillance import ObservationMode, SurveillanceModel

        model = SurveillanceModel(self.graph, engine=self.engine)
        valid: List[Tuple[int, ExposureQuery]] = []
        origins: Dict[int, None] = {}
        for i in rows:
            query: ExposureQuery = request.queries[i]
            if not self._endpoints_ok(
                i, results, query.client, query.guard, query.exit, query.dest
            ):
                continue
            valid.append((i, query))
            for asn in (query.client, query.guard, query.exit, query.dest):
                origins[asn] = None
        if not valid:
            return
        # One batched propagation for every endpoint origin in the batch.
        model._warm(*origins)
        for i, query in valid:
            mode = ObservationMode(query.mode)
            observers = model.circuit_observers(
                query.client, query.guard, query.exit, query.dest, mode
            )
            compromised: Optional[bool] = None
            if query.adversaries:
                adversary_set = set(query.adversaries)
                entry = model.segment_view(query.client, query.guard)
                exit_side = model.segment_view(query.exit, query.dest)
                compromised = bool(
                    adversary_set & entry.observers(mode)
                ) and bool(adversary_set & exit_side.observers(mode))
            results[i] = ExposureResult(
                query=query,
                observers=tuple(observers),
                compromised=compromised,
            )

    # -- helpers -------------------------------------------------------------

    def _endpoints_ok(
        self, i: int, results: List[Optional[object]], *asns: int
    ) -> bool:
        for asn in asns:
            if asn not in self.graph:
                results[i] = QueryError(
                    kind="ValueError",
                    message=f"AS{asn} not in topology",
                )
                return False
        return True
