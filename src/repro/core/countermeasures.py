"""Countermeasures (§5) and their evaluation hooks.

Three of the paper's four proposals are implemented (the fourth — IPsec —
is a deployment recommendation, quantified here only as "the asymmetric
correlator gets no ACK side-channel", i.e. reverse-direction observations
are dropped from the surveillance model):

- **Dynamics-aware relay selection**: relays publish the ASes historically
  seen on paths towards them; clients reject circuits where some AS
  appears on both the entry side and the exit side, *after accounting for
  path dynamics* (the historical union, not just the current path).
- **Control-plane monitoring**: watch collector streams for hijack
  signatures (new origin / MOAS, suspicious path shortening).  Anonymity
  favours false positives over false negatives, so the monitor is
  deliberately aggressive.
- **Short-AS-PATH guard preference**: stealthy (community-scoped) hijacks
  only win over ASes with long legitimate paths, so clients bias guard
  selection towards guards with short AS paths from their own AS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.prefixes import Prefix
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.bgpsim.collector import UpdateRecord, UpdateStream
from repro.runner import ExperimentSpec, TransientFields, Trial, run_experiment
from repro.tor.circuit import Circuit
from repro.tor.relay import Relay

__all__ = [
    "MonitorConfig",
    "Alert",
    "PrefixMonitor",
    "dynamics_aware_filter",
    "short_path_guard_weights",
    "short_path_guard_weights_from_graph",
    "path_length_spec",
]


# ---------------------------------------------------------------------------
# Dynamics-aware relay selection
# ---------------------------------------------------------------------------


def dynamics_aware_filter(
    entry_ases: Mapping[str, FrozenSet[int]],
    exit_ases: Mapping[str, FrozenSet[int]],
) -> Callable[[Circuit], bool]:
    """Build a circuit filter rejecting shared-AS circuits.

    Parameters
    ----------
    entry_ases:
        guard fingerprint -> ASes historically observed on the
        client↔guard paths (e.g. last month's union from relay-published
        data plus the client's own traceroutes).
    exit_ases:
        exit fingerprint -> ASes historically observed on the
        exit↔destination paths.

    The returned predicate suits
    :attr:`repro.tor.pathsel.PathConstraints.circuit_filter`: it accepts a
    circuit only when no single AS appears on both segments — §5's "select
    relays such that the same AS does not appear in both the first and the
    last segments, after taking path dynamics into account".  Relays with
    no published history are rejected (fail closed).
    """

    def accept(circuit: Circuit) -> bool:
        entry = entry_ases.get(circuit.guard.fingerprint)
        exit_side = exit_ases.get(circuit.exit.fingerprint)
        if entry is None or exit_side is None:
            return False
        return not (entry & exit_side)

    return accept


# ---------------------------------------------------------------------------
# Control-plane hijack monitoring
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MonitorConfig:
    """Detector aggressiveness knobs.

    For anonymity systems "false positives are much more acceptable than
    false negatives" (§5), so everything defaults to paranoid.
    """

    #: alert whenever a prefix is announced with an unexpected origin AS
    flag_new_origin: bool = True
    #: alert when a known (prefix, session) suddenly sees a path shorter
    #: by at least this many hops (same-prefix hijacks look like shortcuts)
    shortening_threshold: int = 2
    #: alert when a more-specific of a monitored prefix appears
    flag_more_specific: bool = True


@dataclass(frozen=True)
class Alert:
    """One monitor alert."""

    time: float
    prefix: Prefix
    kind: str  # "new-origin" | "path-shortening" | "more-specific"
    detail: str


class PrefixMonitor:
    """Real-time control-plane monitor for Tor relay prefixes (§5).

    Feed it collector updates in time order; it emits alerts that the Tor
    network would broadcast so clients avoid relays under suspicion.
    """

    def __init__(
        self,
        expected_origins: Mapping[Prefix, int],
        config: MonitorConfig = MonitorConfig(),
    ) -> None:
        self.expected_origins: Dict[Prefix, int] = dict(expected_origins)
        self.config = config
        self.alerts: List[Alert] = []
        #: per (session, prefix) last seen path length
        self._last_len: Dict[Tuple, int] = {}
        #: prefixes currently considered under attack
        self.flagged: Set[Prefix] = set()

    def observe(self, record: UpdateRecord, session=None) -> List[Alert]:
        """Process one update; returns the alerts it raised (if any)."""
        raised: List[Alert] = []
        if record.is_withdrawal or record.as_path is None:
            return raised
        prefix = record.prefix
        origin = record.as_path[-1]

        expected = self.expected_origins.get(prefix)
        if expected is not None:
            if self.config.flag_new_origin and origin != expected:
                raised.append(
                    Alert(
                        time=record.time,
                        prefix=prefix,
                        kind="new-origin",
                        detail=f"origin AS{origin}, expected AS{expected}",
                    )
                )
            key = (session, prefix)
            last = self._last_len.get(key)
            if (
                last is not None
                and last - len(record.as_path) >= self.config.shortening_threshold
            ):
                raised.append(
                    Alert(
                        time=record.time,
                        prefix=prefix,
                        kind="path-shortening",
                        detail=f"path length {last} -> {len(record.as_path)}",
                    )
                )
            self._last_len[key] = len(record.as_path)
        elif self.config.flag_more_specific:
            covering = self._covering_monitored(prefix)
            if covering is not None:
                raised.append(
                    Alert(
                        time=record.time,
                        prefix=prefix,
                        kind="more-specific",
                        detail=f"more specific of monitored {covering}",
                    )
                )

        for alert in raised:
            self.flagged.add(alert.prefix)
        self.alerts.extend(raised)
        return raised

    def observe_stream(self, stream: UpdateStream) -> List[Alert]:
        """Process a whole stream; returns all alerts raised."""
        raised: List[Alert] = []
        for record in stream:
            raised.extend(self.observe(record, session=stream.session))
        return raised

    def _covering_monitored(self, prefix: Prefix) -> Optional[Prefix]:
        for monitored in self.expected_origins:
            if monitored.length < prefix.length and monitored.contains_prefix(prefix):
                return monitored
        return None

    @property
    def suspected_prefixes(self) -> FrozenSet[Prefix]:
        """What the Tor network would broadcast as do-not-use."""
        return frozenset(self.flagged)


# ---------------------------------------------------------------------------
# Short-AS-PATH guard preference
# ---------------------------------------------------------------------------


def short_path_guard_weights(
    guards: Sequence[Relay],
    path_length: Callable[[Relay], Optional[int]],
    alpha: float = 2.0,
) -> Dict[str, float]:
    """Multiplicative guard-selection weights favouring short AS paths.

    ``path_length(guard)`` is the AS-path length from the client's AS to
    the guard's prefix (e.g. from a BGP feed or traceroutes); guards with
    unknown paths get weight 0 (fail closed).  The weight is
    ``len^-alpha``: with ``alpha=2`` a 2-hop guard is 4x more likely than
    an equal-bandwidth 4-hop guard.

    §5's trade-off note applies: this biases guard choice and must be
    balanced against the usual guard-count limits; callers combine the
    returned weight with bandwidth weighting.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    weights: Dict[str, float] = {}
    for guard in guards:
        length = path_length(guard)
        if length is None or length < 1:
            weights[guard.fingerprint] = 0.0
        else:
            weights[guard.fingerprint] = float(length) ** -alpha
    return weights


@dataclass(frozen=True)
class _PathLengthContext(TransientFields):
    """Shared world for path-length trials (engine is process-local)."""

    graph: ASGraph
    client_asn: int
    engine: Optional[RoutingEngine] = None

    _transient = ("engine",)


def _path_length_trial(
    ctx: _PathLengthContext, trial: Trial
) -> Optional[int]:
    """AS-path length from the client to one guard origin (None = no route)."""
    origin = trial.params
    eng = ctx.engine if ctx.engine is not None else shared_engine()
    path = eng.path(ctx.graph, ctx.client_asn, origin)
    return len(path) if path is not None else None


def path_length_spec(
    graph: ASGraph,
    client_asn: int,
    origins: Iterable[int],
    *,
    engine: Optional[RoutingEngine] = None,
) -> ExperimentSpec:
    """Per-origin client path lengths as a runner experiment."""
    return ExperimentSpec(
        name="short-path-lengths",
        trial_fn=_path_length_trial,
        trials=tuple((f"origin-{o}", o) for o in sorted(set(origins))),
        context=_PathLengthContext(
            graph=graph, client_asn=client_asn, engine=engine
        ),
        params={"client_asn": client_asn},
    )


def short_path_guard_weights_from_graph(
    graph: ASGraph,
    client_asn: int,
    guards: Sequence[Relay],
    guard_asn: Callable[[Relay], int],
    alpha: float = 2.0,
    *,
    engine: Optional[RoutingEngine] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> Dict[str, float]:
    """:func:`short_path_guard_weights` with path lengths taken from the
    policy-routing model instead of an external feed.

    AS-path lengths from the client towards every distinct guard origin
    run as one :mod:`repro.runner` trial per origin; each query is a
    memoised, early-exiting kernel run, shared across clients through the
    engine cache.  ``jobs``/``checkpoint``/``resume`` shard and persist
    the sweep.
    """
    origins = sorted({guard_asn(g) for g in guards})
    spec = path_length_spec(graph, client_asn, origins, engine=engine)
    report = run_experiment(
        spec, jobs=jobs, checkpoint=checkpoint, resume=resume
    )
    lengths: Dict[int, Optional[int]] = dict(zip(origins, report.results()))
    return short_path_guard_weights(
        guards, lambda g: lengths.get(guard_asn(g)), alpha
    )
