"""Hijack-resilience-aware guard selection.

§5 proposes favouring guards with short AS paths because stealthy hijacks
only win over ASes with longer legitimate routes.  The follow-up
literature (Counter-RAPTOR, Sun et al. 2017) generalises this into a
*resilience* metric: for a client and a candidate guard, the probability
that a randomly placed same-prefix hijacker fails to capture the client's
route to that guard.  Clients then blend resilience with bandwidth when
sampling guards, trading a little load-balancing for a lot of hijack
robustness.

This module computes the metric on the Gao-Rexford model, provides the
blended selection weights, and evaluates the trade-off (expected capture
probability vs. bandwidth-weight distortion).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.runner import ExperimentSpec, TransientFields, Trial, run_experiment
from repro.tor.consensus import Consensus, Position
from repro.tor.relay import Relay

__all__ = [
    "ResilienceTable",
    "compute_resilience",
    "resilience_spec",
    "blended_guard_weights",
    "evaluate_selection",
]


@dataclass(frozen=True)
class ResilienceTable:
    """Per-guard hijack resilience for one client AS.

    ``resilience[fingerprint]`` is the fraction of sampled attacker ASes
    whose same-prefix hijack of the guard's prefix does *not* capture the
    client (i.e. the client keeps routing to the true origin).
    """

    client_asn: int
    resilience: Mapping[str, float]
    attacker_sample: Tuple[int, ...]

    def of(self, relay: Relay) -> float:
        return self.resilience[relay.fingerprint]


@dataclass(frozen=True)
class _ResilienceContext(TransientFields):
    """Shared world for resilience trials (engine is process-local)."""

    graph: ASGraph
    client_asn: int
    attackers: Tuple[int, ...]
    engine: Optional[RoutingEngine] = None

    _transient = ("engine",)


def _resilience_trial(
    ctx: _ResilienceContext, trial: Trial
) -> Tuple[int, int, int]:
    """One guard origin vs. the whole attacker sample.

    Returns ``(origin, survived, trials)``; pure in (context, params), so
    the sweep shards freely.
    """
    # Function-level import: the facade sits above this module in the
    # serving layer; importing it lazily keeps the layering acyclic.
    from repro.serve.api import BatchRequest, HijackQuery, HijackQueryResult
    from repro.serve.facade import QueryFacade

    origin = trial.params
    eng = ctx.engine if ctx.engine is not None else shared_engine()
    attackers = [
        a for a in ctx.attackers if a != origin and a != ctx.client_asn
    ]
    # One shared propagation for the whole attacker sample: warm
    # (origin, attacker) pairs come from the engine LRU, the rest route
    # together through the batch kernel inside the facade.
    facade = QueryFacade(ctx.graph, engine=eng)
    response = facade.execute_batch(
        BatchRequest(
            queries=tuple(
                HijackQuery(
                    victim=origin, attacker=a, clients=(ctx.client_asn,)
                )
                for a in attackers
            )
        )
    )
    survived = sum(
        1
        for result in response.results
        if isinstance(result, HijackQueryResult)
        and ctx.client_asn in result.victim_retained_clients
    )
    return (origin, survived, len(attackers))


def resilience_spec(
    graph: ASGraph,
    client_asn: int,
    origins: Iterable[int],
    attackers: Sequence[int],
    seed: int = 0,
    *,
    engine: Optional[RoutingEngine] = None,
) -> ExperimentSpec:
    """The resilience sweep as a runner experiment: one trial per origin."""
    return ExperimentSpec(
        name="resilience",
        seed=seed,
        trial_fn=_resilience_trial,
        trials=tuple((f"origin-{o}", o) for o in sorted(set(origins))),
        context=_ResilienceContext(
            graph=graph,
            client_asn=client_asn,
            attackers=tuple(attackers),
            engine=engine,
        ),
        params={"client_asn": client_asn, "attackers": len(attackers)},
        encode_result=list,
        decode_result=tuple,
    )


def compute_resilience(
    graph: ASGraph,
    client_asn: int,
    guards: Sequence[Relay],
    guard_asn: Callable[[Relay], int],
    attacker_sample: Optional[Sequence[int]] = None,
    num_attackers: int = 40,
    seed: int = 0,
    *,
    engine: Optional[RoutingEngine] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> ResilienceTable:
    """Compute the client's hijack resilience for each candidate guard.

    For every (guard origin, attacker) pair, run the multi-origin
    Gao-Rexford computation and check whether the client ends up in the
    attacker's capture set.  Guards sharing an origin AS share results, so
    the cost is ``O(distinct origins x attackers)`` route computations —
    and those go through ``engine`` (default: the shared one), so
    resilience tables for *different clients* over the same guard/attacker
    population are nearly free after the first.

    ``attacker_sample`` defaults to a seeded uniform sample of ASes — the
    "randomly located adversary" of the resilience literature.

    The sweep runs on :mod:`repro.runner` with one trial per distinct
    guard origin: ``jobs`` shards it over a process pool, ``checkpoint``
    streams finished origins to disk, and ``resume`` skips origins already
    recorded there.  Results are identical at any ``jobs`` value.
    """
    if client_asn not in graph:
        raise ValueError(f"client AS{client_asn} not in topology")
    if not guards:
        raise ValueError("no candidate guards")
    if attacker_sample is None:
        rng = random.Random(seed)
        pool = sorted(graph.ases - {client_asn})
        attacker_sample = rng.sample(pool, min(num_attackers, len(pool)))
    attackers = tuple(attacker_sample)

    origins = {guard_asn(g) for g in guards}
    spec = resilience_spec(
        graph, client_asn, origins, attackers, seed=seed, engine=engine
    )
    with obs.span(
        "resilience.compute",
        client_asn=client_asn,
        origins=len(origins),
        attackers=len(attackers),
    ):
        report = run_experiment(
            spec, jobs=jobs, checkpoint=checkpoint, resume=resume
        )
    survived: Dict[int, int] = {}
    trials: Dict[int, int] = {}
    for origin, origin_survived, origin_trials in report.results():
        survived[origin] = origin_survived
        trials[origin] = origin_trials

    table = {
        g.fingerprint: (
            survived[guard_asn(g)] / trials[guard_asn(g)]
            if trials[guard_asn(g)]
            else 0.0
        )
        for g in guards
    }
    return ResilienceTable(
        client_asn=client_asn, resilience=table, attacker_sample=attackers
    )


def blended_guard_weights(
    consensus: Consensus,
    table: ResilienceTable,
    guards: Sequence[Relay],
    alpha: float = 0.5,
) -> Dict[str, float]:
    """Counter-RAPTOR-style blend: ``alpha*resilience + (1-alpha)*bw_norm``.

    ``alpha=0`` is vanilla bandwidth weighting; ``alpha=1`` ignores
    bandwidth entirely (bad for load balancing).  The returned weights are
    multiplicative sampling weights over the given guards.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    bw = {g.fingerprint: consensus.position_weight(g, Position.GUARD) for g in guards}
    max_bw = max(bw.values()) if bw else 0.0
    weights: Dict[str, float] = {}
    for g in guards:
        bw_norm = bw[g.fingerprint] / max_bw if max_bw > 0 else 0.0
        weights[g.fingerprint] = alpha * table.of(g) + (1 - alpha) * bw_norm
    return weights


@dataclass(frozen=True)
class SelectionEvaluation:
    """Outcome of :func:`evaluate_selection` for one alpha."""

    alpha: float
    #: E[client captured | random sampled attacker hijacks chosen guard]
    expected_capture: float
    #: total-variation distance from the pure bandwidth distribution —
    #: the load-balancing cost of deviating from Tor's weighting
    bandwidth_distortion: float


def evaluate_selection(
    consensus: Consensus,
    table: ResilienceTable,
    guards: Sequence[Relay],
    alphas: Iterable[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> List[SelectionEvaluation]:
    """Sweep the blend parameter: capture risk vs. load distortion.

    Expected capture for a guard is ``1 - resilience``; the sweep shows the
    paper's §5 trade-off quantitatively ("the client should balance this
    strategy with the need to limit...").
    """
    bw = {g.fingerprint: consensus.position_weight(g, Position.GUARD) for g in guards}
    bw_total = sum(bw.values())
    if bw_total <= 0:
        raise ValueError("guards carry no bandwidth weight")
    bw_dist = {fp: w / bw_total for fp, w in bw.items()}

    results = []
    for alpha in alphas:
        weights = blended_guard_weights(consensus, table, guards, alpha)
        total = sum(weights.values())
        if total <= 0:
            raise ValueError(f"alpha={alpha} produced all-zero weights")
        dist = {fp: w / total for fp, w in weights.items()}
        capture = sum(
            dist[g.fingerprint] * (1.0 - table.of(g)) for g in guards
        )
        distortion = 0.5 * sum(
            abs(dist[fp] - bw_dist[fp]) for fp in dist
        )
        results.append(
            SelectionEvaluation(
                alpha=alpha,
                expected_capture=capture,
                bandwidth_distortion=distortion,
            )
        )
    return results
