"""Asymmetric traffic analysis (§3.3).

The adversary observes the two ends of an anonymous connection in possibly
*opposite* directions: data packets on one side, TCP acknowledgements on
the other.  Because SSL/TLS leaves TCP headers in the clear, cumulative
ACK numbers reveal how many bytes the hidden peer has received.  The
correlator therefore works on *bytes over time* — data bytes by sequence
number at one end, ACKed bytes at the other — which absorbs the lack of
one-to-one packet correspondence that cumulative/delayed ACKs create.

Given candidate flows (decoys), :class:`FlowMatcher` ranks them against a
target observation; a correct match with a clear margin is a
deanonymisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.traffic.capture import PacketCapture, SegmentTaps

__all__ = [
    "pearson",
    "spearman",
    "correlate_captures",
    "correlate_segments",
    "MatchResult",
    "FlowMatcher",
]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0.0 when either side is constant."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    # sqrt separately: var_x * var_y can underflow to 0 for tiny variances
    denom = math.sqrt(var_x) * math.sqrt(var_y)
    if denom <= 0:
        return 0.0
    return max(-1.0, min(1.0, cov / denom))


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson of the rank transforms)."""
    return pearson(_ranks(xs), _ranks(ys))


def _ranks(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg_rank = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    return ranks


def correlate_captures(
    a: PacketCapture,
    b: PacketCapture,
    bin_width: float = 1.0,
    duration: Optional[float] = None,
    method: str = "pearson",
) -> float:
    """Correlation of two byte-count series on a common time grid.

    The series are resampled to per-bin byte increments; ``duration``
    defaults to the longer capture so both sides cover the same window.
    """
    if duration is None:
        duration = max(a.duration, b.duration)
    xs = a.binned(bin_width, duration)
    ys = b.binned(bin_width, duration)
    n = min(len(xs), len(ys))
    xs, ys = xs[:n], ys[:n]
    if method == "pearson":
        return pearson(xs, ys)
    if method == "spearman":
        return spearman(xs, ys)
    raise ValueError(f"unknown correlation method {method!r}")


def correlate_segments(
    taps: SegmentTaps, bin_width: float = 1.0
) -> Dict[Tuple[str, str], float]:
    """All four end-to-end direction combinations of Figure 1(b)/§3.3.

    Keys are (server-side segment, client-side segment) names; the four
    combinations cover data-vs-data (the conventional attack), and the
    three observation patterns only asymmetric analysis can use.
    """
    pairs = {
        ("server to exit", "guard to client"): (taps.server_to_exit, taps.guard_to_client),
        ("server to exit", "client to guard"): (taps.server_to_exit, taps.client_to_guard),
        ("exit to server", "guard to client"): (taps.exit_to_server, taps.guard_to_client),
        ("exit to server", "client to guard"): (taps.exit_to_server, taps.client_to_guard),
    }
    return {
        key: correlate_captures(a, b, bin_width=bin_width) for key, (a, b) in pairs.items()
    }


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one target observation against candidates."""

    #: candidate name -> correlation score, sorted best-first
    scores: Tuple[Tuple[str, float], ...]

    @property
    def best(self) -> str:
        return self.scores[0][0]

    @property
    def best_score(self) -> float:
        return self.scores[0][1]

    @property
    def margin(self) -> float:
        """Score gap between the best and second-best candidates."""
        if len(self.scores) < 2:
            return self.best_score
        return self.scores[0][1] - self.scores[1][1]

    def rank_of(self, name: str) -> int:
        """1-based rank of a candidate (raises if unknown)."""
        for i, (candidate, _score) in enumerate(self.scores, start=1):
            if candidate == name:
                return i
        raise KeyError(f"no candidate named {name!r}")


class FlowMatcher:
    """Ranks candidate flows against a target observation.

    The adversary has one observation at a client-side segment (say, ACKs
    from a client to its guard) and wants to know which of the server-side
    flows it also observes (data to/from monitored destinations) belongs
    to that client.
    """

    def __init__(self, bin_width: float = 1.0, method: str = "pearson") -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self.method = method

    def match(
        self,
        target: PacketCapture,
        candidates: Mapping[str, PacketCapture],
    ) -> MatchResult:
        if not candidates:
            raise ValueError("need at least one candidate flow")
        duration = max(
            [target.duration] + [c.duration for c in candidates.values()]
        )
        scores = [
            (
                name,
                correlate_captures(
                    target, capture, self.bin_width, duration, self.method
                ),
            )
            for name, capture in candidates.items()
        ]
        scores.sort(key=lambda item: (-item[1], item[0]))
        return MatchResult(scores=tuple(scores))
