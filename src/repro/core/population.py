"""Population-scale user simulation: a struct-of-arrays compromise kernel.

The paper's §3 argument is ultimately about *users*: AS-level
adversaries under the guard get re-rolled by BGP on every circuit, so
time-to-first-compromise collapses for whole client populations.  The
per-user object simulation in :mod:`repro.core.usermetrics` tops out at
a few thousand clients; this module scales the same question to 10^6+
clients over a month of relay churn on one machine.

Three ideas carry the whole kernel:

- **Struct of arrays.**  The population is flat arrays — a client-AS
  index per user, a ``num_guards × users`` guard-slot matrix of AS
  registry indices with per-slot expiry days, per-user compromised-
  circuit counts and first-compromise days — never a list of per-user
  objects.
- **Exposure-table dedup.**  Millions of users collapse onto a tiny set
  of distinct (client-AS, guard-AS) and (exit-AS, dest-AS) pairs.  Those
  segments are routed once per run through
  :meth:`SurveillanceModel.exposure_table` (one batched
  ``outcomes_many`` pass over the distinct endpoint ASes) and every
  circuit resolves against the boolean tables by fancy-indexing.
- **Counter-based randomness.**  Every draw is a pure function of
  ``(seed, user, day, circuit, stream)`` through a SplitMix64-style
  finalizer, evaluated identically by the numpy tier and the pure-python
  loop tier.  Results are therefore bit-for-bit independent of the
  backend, of the block size, and of how blocks shard over
  :mod:`repro.runner` workers.

Sharding streams: each user block returns only a
:class:`PopulationAggregate` (histograms and counts); aggregates merge
associatively, so memory stays flat no matter the population size.  Set
``keep_outcomes=True`` (the default for small populations) to also
retain per-user :class:`UserOutcome` rows.
"""

from __future__ import annotations

import hashlib
import math
import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.core.surveillance import ObservationMode, SurveillanceModel
from repro.runner import ExperimentSpec, TransientFields, Trial, run_experiment
from repro.tor.clientdist import ClientASDistribution
from repro.tor.consensus import Consensus, Position

try:  # pragma: no cover - absence is exercised by the numpy-free CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Which tier :func:`simulate_population` uses when ``backend`` is None.
POPULATION_BACKEND = "vector" if _np is not None else "loop"

__all__ = [
    "POPULATION_BACKEND",
    "DayMix",
    "PopulationAggregate",
    "PopulationReport",
    "UserOutcome",
    "population_spec",
    "simulate_population",
]


# --------------------------------------------------------------------------
# Counter-based draws (SplitMix64 finalizer over a keyed lattice)
# --------------------------------------------------------------------------

_MASK = (1 << 64) - 1
_MULT_USER = 0x9E3779B97F4A7C15
_MULT_DAY = 0xD1B54A32D192ED03
_MULT_CIRCUIT = 0x8CB92BA72F3D8DD7
_MULT_STREAM = 0xEB44ACCAB455D165
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_INV_2_53 = 2.0 ** -53

# Every random decision has its own stream id, so a (user, day, circuit,
# stream) key never collides across decision kinds.
_STREAM_CLIENT = 1
_STREAM_GUARD = 2
_STREAM_LIFETIME = 3
_STREAM_SLOT = 4
_STREAM_EXIT = 5
_STREAM_DEST = 6


def _population_seed(seed: int) -> int:
    """64-bit base key for the draw lattice (blake2b of the root seed)."""
    data = f"population\x1f{seed}".encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def _draw_base(seed: int, day: int, circuit: int, stream: int) -> int:
    """Fold everything but the user index into one 64-bit key prefix."""
    return (
        seed
        + day * _MULT_DAY
        + circuit * _MULT_CIRCUIT
        + stream * _MULT_STREAM
    ) & _MASK


def _draw(base: int, user: int) -> float:
    """One uniform in [0, 1) — the loop tier's half of the lattice.

    Depends only on the key, never on evaluation order, which is what
    makes block sharding and the vector tier bit-for-bit equivalent.
    """
    z = (base + user * _MULT_USER) & _MASK
    z ^= z >> 30
    z = (z * _MIX_1) & _MASK
    z ^= z >> 27
    z = (z * _MIX_2) & _MASK
    z ^= z >> 31
    return (z >> 11) * _INV_2_53


def _draws_vector(base: int, users):
    """Vector twin of :func:`_draw` over a uint64 array of user indices.

    uint64 arithmetic wraps with C semantics, matching the explicit
    ``& _MASK`` in the scalar path; ``z >> 11`` fits in 53 bits so the
    float64 conversion is exact.
    """
    np = _np
    z = np.uint64(base) + users * np.uint64(_MULT_USER)
    z = z ^ (z >> np.uint64(30))
    z = z * np.uint64(_MIX_1)
    z = z ^ (z >> np.uint64(27))
    z = z * np.uint64(_MIX_2)
    z = z ^ (z >> np.uint64(31))
    return (z >> np.uint64(11)).astype(np.float64) * _INV_2_53


def _cumulative(weights: Sequence[float]) -> Tuple[float, ...]:
    """Cumulative probabilities via a plain running sum.

    Built once in pure python and shared by both tiers, so
    ``np.searchsorted(cum, u, side="right")`` and
    ``bisect_right(cum, u)`` agree bit-for-bit.
    """
    total = 0.0
    for weight in weights:
        total += weight
    acc = 0.0
    out: List[float] = []
    for weight in weights:
        acc += weight
        out.append(acc / total)
    return tuple(out)


# --------------------------------------------------------------------------
# Per-day AS-level sampling state
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DayMix:
    """One day's AS-level guard/exit sampling state.

    ``guard_reg``/``exit_reg`` index into the run's global guard and exit
    AS registries (ascending-ASN order within the day); ``*_cum`` are the
    matching cumulative position-weight distributions.
    """

    guard_reg: Tuple[int, ...]
    guard_cum: Tuple[float, ...]
    exit_reg: Tuple[int, ...]
    exit_cum: Tuple[float, ...]


def _as_position_weights(
    consensus: Consensus, relay_asn: Callable[[str], int], position: str
) -> Dict[int, float]:
    """Total consensus position weight per origin AS.

    Relays whose fingerprint has no AS assignment (churn-born relays
    outside the static topology mapping) carry no AS-level exposure and
    are skipped.
    """
    weights: Dict[int, float] = {}
    for relay in consensus.relays:
        weight = consensus.position_weight(relay, position)
        if weight <= 0.0:
            continue
        try:
            asn = relay_asn(relay.fingerprint)
        except KeyError:
            continue
        weights[asn] = weights.get(asn, 0.0) + weight
    return weights


def _build_day_mixes(
    series: Sequence[Consensus],
    relay_asn: Callable[[str], int],
    days: int,
) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[DayMix, ...]]:
    """Day mixes plus the global guard/exit AS registries they index.

    Registries grow in day order (then ascending ASN within a day), a
    function of the consensus series alone — never of the users — so
    registry indices are identical across shards and backends.
    """
    guard_registry: Dict[int, int] = {}
    exit_registry: Dict[int, int] = {}
    mixes: List[DayMix] = []
    prev_consensus: Optional[Consensus] = None
    prev_mix: Optional[DayMix] = None
    for day in range(days):
        consensus = series[min(day, len(series) - 1)]
        if consensus is prev_consensus and prev_mix is not None:
            mixes.append(prev_mix)
            continue
        guard_weights = _as_position_weights(
            consensus, relay_asn, Position.GUARD
        )
        exit_weights = _as_position_weights(consensus, relay_asn, Position.EXIT)
        if not guard_weights or not exit_weights:
            raise ValueError(
                f"day {day + 1}'s consensus has no guard or exit capacity"
            )
        guard_items = sorted(guard_weights.items())
        exit_items = sorted(exit_weights.items())
        for asn, _ in guard_items:
            guard_registry.setdefault(asn, len(guard_registry))
        for asn, _ in exit_items:
            exit_registry.setdefault(asn, len(exit_registry))
        mix = DayMix(
            guard_reg=tuple(guard_registry[asn] for asn, _ in guard_items),
            guard_cum=_cumulative([w for _, w in guard_items]),
            exit_reg=tuple(exit_registry[asn] for asn, _ in exit_items),
            exit_cum=_cumulative([w for _, w in exit_items]),
        )
        mixes.append(mix)
        prev_consensus, prev_mix = consensus, mix
    return tuple(guard_registry), tuple(exit_registry), tuple(mixes)


# --------------------------------------------------------------------------
# Results: per-user rows (optional) and streaming aggregates
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class UserOutcome:
    """One user's month: when (if ever) a circuit was first compromised."""

    client_asn: int
    circuits_built: int
    compromised_circuits: int
    #: day (1-based) of the first compromised circuit; None = survived
    first_compromise_day: Optional[int]

    @property
    def compromised(self) -> bool:
        return self.first_compromise_day is not None


@dataclass(frozen=True)
class PopulationAggregate:
    """Streaming per-shard aggregate: histograms only, never user rows.

    ``first_day_hist[0]`` counts never-compromised users and
    ``first_day_hist[d]`` users first compromised on day ``d``;
    ``comp_count_hist[k]`` counts users with exactly ``k`` compromised
    circuits.  Aggregates merge associatively, so shards of any size
    reduce to the same totals.
    """

    users: int
    circuits_built: int
    compromised_circuits: int
    first_day_hist: Tuple[int, ...]
    comp_count_hist: Tuple[int, ...]

    @property
    def compromised_users(self) -> int:
        return self.users - self.first_day_hist[0]

    @staticmethod
    def merge(parts: Iterable["PopulationAggregate"]) -> "PopulationAggregate":
        parts = list(parts)
        if not parts:
            raise ValueError("nothing to merge")
        first_len = max(len(p.first_day_hist) for p in parts)
        count_len = max(len(p.comp_count_hist) for p in parts)
        first_hist = [0] * first_len
        count_hist = [0] * count_len
        users = built = hit = 0
        for part in parts:
            users += part.users
            built += part.circuits_built
            hit += part.compromised_circuits
            for i, v in enumerate(part.first_day_hist):
                first_hist[i] += v
            for i, v in enumerate(part.comp_count_hist):
                count_hist[i] += v
        return PopulationAggregate(
            users=users,
            circuits_built=built,
            compromised_circuits=hit,
            first_day_hist=tuple(first_hist),
            comp_count_hist=tuple(count_hist),
        )


def _aggregate_outcomes(
    outcomes: Sequence[UserOutcome], days: int
) -> PopulationAggregate:
    """Fold per-user rows into the histogram aggregate."""
    first_hist = [0] * (days + 1)
    max_hits = max((o.compromised_circuits for o in outcomes), default=0)
    count_hist = [0] * (max_hits + 1)
    built = hit = 0
    for outcome in outcomes:
        built += outcome.circuits_built
        hit += outcome.compromised_circuits
        first_hist[outcome.first_compromise_day or 0] += 1
        count_hist[outcome.compromised_circuits] += 1
    return PopulationAggregate(
        users=len(outcomes),
        circuits_built=built,
        compromised_circuits=hit,
        first_day_hist=tuple(first_hist),
        comp_count_hist=tuple(count_hist),
    )


@dataclass(frozen=True)
class PopulationReport:
    """Aggregate view over the simulated user population.

    The report is backed by a :class:`PopulationAggregate`; ``outcomes``
    (per-user rows) is retained only when the run keeps them
    (``keep_outcomes``) and is None for population-scale runs.
    Constructing with ``outcomes`` alone (the legacy shape) derives the
    aggregate on the spot.
    """

    outcomes: Optional[Tuple[UserOutcome, ...]]
    days: int
    aggregate: Optional[PopulationAggregate] = None

    def __post_init__(self) -> None:
        if self.aggregate is None:
            if self.outcomes is None:
                raise ValueError("need outcomes or an aggregate")
            object.__setattr__(
                self, "aggregate", _aggregate_outcomes(self.outcomes, self.days)
            )

    @property
    def num_users(self) -> int:
        return self.aggregate.users

    @property
    def fraction_compromised(self) -> float:
        agg = self.aggregate
        if not agg.users:
            return 0.0
        return agg.compromised_users / agg.users

    def fraction_compromised_by_day(self) -> List[float]:
        """Cumulative fraction of users compromised by each day (index 0 =
        day 1) — the Johnson-style survival curve, inverted."""
        agg = self.aggregate
        curve: List[float] = []
        cum = 0
        for day in range(1, self.days + 1):
            if day < len(agg.first_day_hist):
                cum += agg.first_day_hist[day]
            curve.append(cum / agg.users if agg.users else 0.0)
        return curve

    def median_days_to_compromise(self) -> Optional[float]:
        """Median time-to-first-compromise (None if under half were hit)."""
        agg = self.aggregate
        if agg.compromised_users * 2 < agg.users:
            return None
        rank = (agg.users + 1) // 2
        cum = 0
        for day in range(1, len(agg.first_day_hist)):
            cum += agg.first_day_hist[day]
            if cum >= rank:
                return float(day)
        return None

    def time_to_compromise_percentile(self, q: float) -> Optional[int]:
        """Smallest day by which a ``q`` fraction of users is compromised.

        None when the window ends before the quantile is reached — the
        CDF answer for "how long until q of the population is hit".
        """
        agg = self.aggregate
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        rank = math.ceil(q * agg.users)
        cum = 0
        for day in range(1, len(agg.first_day_hist)):
            cum += agg.first_day_hist[day]
            if cum >= rank:
                return day
        return None

    def compromise_rate_percentile(self, q: float) -> float:
        """Nearest-rank percentile of the per-user circuit-compromise rate.

        Rates are compromised circuits over the mean circuits built per
        user (uniform within a kernel run).
        """
        agg = self.aggregate
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if not agg.users or not agg.circuits_built:
            return 0.0
        built_per_user = agg.circuits_built / agg.users
        rank = math.ceil(q * agg.users)
        cum = 0
        for count, bucket in enumerate(agg.comp_count_hist):
            cum += bucket
            if cum >= rank:
                return count / built_per_user
        return (len(agg.comp_count_hist) - 1) / built_per_user

    @property
    def mean_circuit_compromise_rate(self) -> float:
        agg = self.aggregate
        if not agg.circuits_built:
            return 0.0
        return agg.compromised_circuits / agg.circuits_built


@dataclass(frozen=True)
class _BlockResult:
    """One user block's contribution: the aggregate, plus rows if kept."""

    aggregate: PopulationAggregate
    outcomes: Optional[Tuple[UserOutcome, ...]]


def _encode_block(result: _BlockResult) -> dict:
    encoded = {
        "aggregate": {
            "users": result.aggregate.users,
            "circuits_built": result.aggregate.circuits_built,
            "compromised_circuits": result.aggregate.compromised_circuits,
            "first_day_hist": list(result.aggregate.first_day_hist),
            "comp_count_hist": list(result.aggregate.comp_count_hist),
        },
        "outcomes": None,
    }
    if result.outcomes is not None:
        encoded["outcomes"] = [
            [
                o.client_asn,
                o.circuits_built,
                o.compromised_circuits,
                o.first_compromise_day,
            ]
            for o in result.outcomes
        ]
    return encoded


def _decode_block(encoded: dict) -> _BlockResult:
    agg = encoded["aggregate"]
    outcomes = None
    if encoded.get("outcomes") is not None:
        outcomes = tuple(
            UserOutcome(
                client_asn=row[0],
                circuits_built=row[1],
                compromised_circuits=row[2],
                first_compromise_day=row[3],
            )
            for row in encoded["outcomes"]
        )
    return _BlockResult(
        aggregate=PopulationAggregate(
            users=agg["users"],
            circuits_built=agg["circuits_built"],
            compromised_circuits=agg["compromised_circuits"],
            first_day_hist=tuple(agg["first_day_hist"]),
            comp_count_hist=tuple(agg["comp_count_hist"]),
        ),
        outcomes=outcomes,
    )


# --------------------------------------------------------------------------
# The kernel: one user block, loop and vector tiers
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _PopulationContext(TransientFields):
    """Shared world for user-block trials.

    Day mixes, registries, and the client assignment are precomputed at
    spec-build time (so no live callables ship to workers); ``engine`` is
    process-local and rebuilt via :func:`shared_engine` in workers.
    Exactly one of ``client_index`` (explicit roster: per-user registry
    index) or ``client_cum``/``client_pick`` (weighted sampling) is set.
    """

    graph: object
    client_registry: Tuple[int, ...]
    client_index: Optional[Tuple[int, ...]]
    client_cum: Optional[Tuple[float, ...]]
    client_pick: Optional[Tuple[int, ...]]
    guard_registry: Tuple[int, ...]
    exit_registry: Tuple[int, ...]
    day_mixes: Tuple[DayMix, ...]
    destination_asns: Tuple[int, ...]
    adversaries: frozenset
    days: int
    circuits_per_day: int
    num_guards: int
    rotation_days: float
    mode: ObservationMode
    draw_seed: int
    backend: Optional[str]
    keep_outcomes: bool
    engine: object = None

    _transient = ("engine",)


@dataclass
class _ExposureTables:
    """Boolean segment tables: clients × guards and exits × destinations."""

    entry: List[List[bool]]
    exit: List[List[bool]]
    entry_np: object = None
    exit_np: object = None


# One-slot cache: every block of a run shares one context object, so the
# tables (the expensive routed part) are built once per worker process.
_TABLE_CACHE: List[Tuple[_PopulationContext, _ExposureTables]] = []


def _tables_for(ctx: _PopulationContext) -> _ExposureTables:
    if _TABLE_CACHE and _TABLE_CACHE[0][0] is ctx:
        return _TABLE_CACHE[0][1]
    model = SurveillanceModel(ctx.graph, engine=ctx.engine)
    tables = _ExposureTables(
        entry=model.exposure_table(
            ctx.adversaries, ctx.client_registry, ctx.guard_registry, ctx.mode
        ),
        exit=model.exposure_table(
            ctx.adversaries, ctx.exit_registry, ctx.destination_asns, ctx.mode
        ),
    )
    _TABLE_CACHE[:] = [(ctx, tables)]
    return tables


def _resolve_backend(backend: Optional[str]) -> str:
    if backend in (None, "auto"):
        return POPULATION_BACKEND
    if backend == "vector":
        if _np is None:
            raise RuntimeError(
                "population backend 'vector' requires numpy; install it or "
                "use backend='loop'"
            )
        return "vector"
    if backend == "loop":
        return "loop"
    raise ValueError(f"unknown population backend: {backend!r}")


def _client_indices_loop(ctx: _PopulationContext, start: int, end: int):
    """Per-user client registry index, loop tier."""
    if ctx.client_index is not None:
        return ctx.client_index[start:end]
    base = _draw_base(ctx.draw_seed, 0, 0, _STREAM_CLIENT)
    cum, pick = ctx.client_cum, ctx.client_pick
    last = len(cum) - 1
    out = []
    for user in range(start, end):
        index = bisect_right(cum, _draw(base, user))
        out.append(pick[index if index <= last else last])
    return out


def _simulate_block_loop(
    ctx: _PopulationContext, tables: _ExposureTables, start: int, end: int
) -> _BlockResult:
    days, per_day, num_guards = ctx.days, ctx.circuits_per_day, ctx.num_guards
    seed, rotation = ctx.draw_seed, ctx.rotation_days
    mixes = ctx.day_mixes
    entry, exit_table = tables.entry, tables.exit
    num_dests = len(ctx.destination_asns)
    alive_sets = [frozenset(mix.guard_reg) for mix in mixes]
    # Hoist the (day, slot/circuit, stream) key prefixes out of the user
    # loop — the inner loop then only folds in the user term.
    guard_bases = [
        [_draw_base(seed, day, s, _STREAM_GUARD) for s in range(num_guards)]
        for day in range(days + 1)
    ]
    life_bases = [
        [_draw_base(seed, day, s, _STREAM_LIFETIME) for s in range(num_guards)]
        for day in range(days + 1)
    ]
    slot_bases = [
        [_draw_base(seed, day, c, _STREAM_SLOT) for c in range(per_day)]
        for day in range(days + 1)
    ]
    exit_bases = [
        [_draw_base(seed, day, c, _STREAM_EXIT) for c in range(per_day)]
        for day in range(days + 1)
    ]
    dest_bases = [
        [_draw_base(seed, day, c, _STREAM_DEST) for c in range(per_day)]
        for day in range(days + 1)
    ]

    first_hist = [0] * (days + 1)
    count_hist = [0] * (days * per_day + 1)
    outcomes: Optional[List[UserOutcome]] = [] if ctx.keep_outcomes else None
    client_indices = _client_indices_loop(ctx, start, end)

    mix0 = mixes[0]
    glen0 = len(mix0.guard_cum)
    for offset, user in enumerate(range(start, end)):
        client = client_indices[offset]
        entry_row = entry[client]
        slots = [0] * num_guards
        expiry = [0.0] * num_guards
        for s in range(num_guards):
            index = bisect_right(mix0.guard_cum, _draw(guard_bases[0][s], user))
            slots[s] = mix0.guard_reg[index if index < glen0 else glen0 - 1]
            expiry[s] = rotation * (1.0 + _draw(life_bases[0][s], user))
        hits = 0
        first = 0
        for day in range(1, days + 1):
            mix = mixes[day - 1]
            alive = alive_sets[day - 1]
            now = float(day - 1)
            glen = len(mix.guard_cum)
            for s in range(num_guards):
                if expiry[s] <= now or slots[s] not in alive:
                    index = bisect_right(
                        mix.guard_cum, _draw(guard_bases[day][s], user)
                    )
                    slots[s] = mix.guard_reg[index if index < glen else glen - 1]
                    expiry[s] = now + rotation * (
                        1.0 + _draw(life_bases[day][s], user)
                    )
            elen = len(mix.exit_cum)
            for c in range(per_day):
                pick = int(_draw(slot_bases[day][c], user) * num_guards)
                if pick >= num_guards:
                    pick = num_guards - 1
                index = bisect_right(
                    mix.exit_cum, _draw(exit_bases[day][c], user)
                )
                exit_idx = mix.exit_reg[index if index < elen else elen - 1]
                dest = int(_draw(dest_bases[day][c], user) * num_dests)
                if dest >= num_dests:
                    dest = num_dests - 1
                if entry_row[slots[pick]] and exit_table[exit_idx][dest]:
                    hits += 1
                    if first == 0:
                        first = day
        first_hist[first] += 1
        count_hist[hits] += 1
        if outcomes is not None:
            outcomes.append(
                UserOutcome(
                    client_asn=ctx.client_registry[client],
                    circuits_built=days * per_day,
                    compromised_circuits=hits,
                    first_compromise_day=first or None,
                )
            )
    users = end - start
    aggregate = PopulationAggregate(
        users=users,
        circuits_built=users * days * per_day,
        compromised_circuits=sum(
            count * bucket for count, bucket in enumerate(count_hist)
        ),
        first_day_hist=tuple(first_hist),
        comp_count_hist=tuple(count_hist),
    )
    return _BlockResult(
        aggregate=aggregate,
        outcomes=tuple(outcomes) if outcomes is not None else None,
    )


def _simulate_block_vector(
    ctx: _PopulationContext, tables: _ExposureTables, start: int, end: int
) -> _BlockResult:
    np = _np
    days, per_day, num_guards = ctx.days, ctx.circuits_per_day, ctx.num_guards
    seed, rotation = ctx.draw_seed, ctx.rotation_days
    num_dests = len(ctx.destination_asns)
    n = end - start
    users = np.arange(start, end, dtype=np.uint64)
    rows = np.arange(n)

    if tables.entry_np is None:
        tables.entry_np = np.asarray(tables.entry, dtype=bool)
        tables.exit_np = np.asarray(tables.exit, dtype=bool)
    entry_np, exit_np = tables.entry_np, tables.exit_np

    if ctx.client_index is not None:
        clients = np.asarray(ctx.client_index[start:end], dtype=np.int64)
    else:
        cum = np.asarray(ctx.client_cum, dtype=np.float64)
        pick = np.asarray(ctx.client_pick, dtype=np.int64)
        u = _draws_vector(_draw_base(seed, 0, 0, _STREAM_CLIENT), users)
        index = np.minimum(
            np.searchsorted(cum, u, side="right"), cum.size - 1
        )
        clients = pick[index]

    # Per-day sampling tables as arrays, converted once per distinct mix.
    mix_arrays: Dict[int, tuple] = {}

    def arrays_for(mix: DayMix) -> tuple:
        got = mix_arrays.get(id(mix))
        if got is None:
            alive = np.zeros(len(ctx.guard_registry), dtype=bool)
            alive[list(mix.guard_reg)] = True
            got = (
                np.asarray(mix.guard_reg, dtype=np.int64),
                np.asarray(mix.guard_cum, dtype=np.float64),
                np.asarray(mix.exit_reg, dtype=np.int64),
                np.asarray(mix.exit_cum, dtype=np.float64),
                alive,
            )
            mix_arrays[id(mix)] = got
        return got

    guard_reg0, guard_cum0, _, _, _ = arrays_for(ctx.day_mixes[0])
    slots = np.empty((num_guards, n), dtype=np.int64)
    expiry = np.empty((num_guards, n), dtype=np.float64)
    for s in range(num_guards):
        u = _draws_vector(_draw_base(seed, 0, s, _STREAM_GUARD), users)
        index = np.minimum(
            np.searchsorted(guard_cum0, u, side="right"), guard_cum0.size - 1
        )
        slots[s] = guard_reg0[index]
        u = _draws_vector(_draw_base(seed, 0, s, _STREAM_LIFETIME), users)
        expiry[s] = rotation * (1.0 + u)

    hits = np.zeros(n, dtype=np.int64)
    first = np.zeros(n, dtype=np.int64)
    for day in range(1, days + 1):
        guard_reg, guard_cum, exit_reg, exit_cum, alive = arrays_for(
            ctx.day_mixes[day - 1]
        )
        now = float(day - 1)
        for s in range(num_guards):
            stale = (expiry[s] <= now) | ~alive[slots[s]]
            if stale.any():
                stale_users = users[stale]
                u = _draws_vector(
                    _draw_base(seed, day, s, _STREAM_GUARD), stale_users
                )
                index = np.minimum(
                    np.searchsorted(guard_cum, u, side="right"),
                    guard_cum.size - 1,
                )
                slots[s][stale] = guard_reg[index]
                u = _draws_vector(
                    _draw_base(seed, day, s, _STREAM_LIFETIME), stale_users
                )
                expiry[s][stale] = now + rotation * (1.0 + u)
        for c in range(per_day):
            u = _draws_vector(_draw_base(seed, day, c, _STREAM_SLOT), users)
            pick = np.minimum(
                (u * num_guards).astype(np.int64), num_guards - 1
            )
            guard_idx = slots[pick, rows]
            u = _draws_vector(_draw_base(seed, day, c, _STREAM_EXIT), users)
            index = np.minimum(
                np.searchsorted(exit_cum, u, side="right"), exit_cum.size - 1
            )
            exit_idx = exit_reg[index]
            u = _draws_vector(_draw_base(seed, day, c, _STREAM_DEST), users)
            dest = np.minimum((u * num_dests).astype(np.int64), num_dests - 1)
            compromised = entry_np[clients, guard_idx] & exit_np[exit_idx, dest]
            hits += compromised
            first = np.where((first == 0) & compromised, day, first)

    first_hist = np.bincount(first, minlength=days + 1)
    count_hist = np.bincount(hits, minlength=days * per_day + 1)
    outcomes = None
    if ctx.keep_outcomes:
        registry = ctx.client_registry
        outcomes = tuple(
            UserOutcome(
                client_asn=registry[int(clients[i])],
                circuits_built=days * per_day,
                compromised_circuits=int(hits[i]),
                first_compromise_day=int(first[i]) or None,
            )
            for i in range(n)
        )
    aggregate = PopulationAggregate(
        users=n,
        circuits_built=n * days * per_day,
        compromised_circuits=int(hits.sum()),
        first_day_hist=tuple(int(v) for v in first_hist),
        comp_count_hist=tuple(int(v) for v in count_hist),
    )
    return _BlockResult(aggregate=aggregate, outcomes=outcomes)


def _population_block_trial(
    ctx: _PopulationContext, trial: Trial
) -> _BlockResult:
    start, end = trial.params
    tables = _tables_for(ctx)
    if _resolve_backend(ctx.backend) == "vector":
        return _simulate_block_vector(ctx, tables, start, end)
    return _simulate_block_loop(ctx, tables, start, end)


# --------------------------------------------------------------------------
# Spec and entry point
# --------------------------------------------------------------------------

#: Per-user rows are kept by default up to this population size.
KEEP_OUTCOMES_MAX = 100_000
_DEFAULT_BLOCK = 65_536

Clients = Union[Sequence[int], ClientASDistribution]


def population_spec(
    graph,
    consensus: Union[Consensus, Sequence[Consensus]],
    relay_asn: Callable[[str], int],
    clients: Clients,
    destination_asns: Sequence[int],
    adversaries: Iterable[int],
    *,
    num_users: Optional[int] = None,
    days: int = 30,
    circuits_per_day: int = 6,
    num_guards: int = 3,
    rotation_days: float = 30.0,
    mode: ObservationMode = ObservationMode.EITHER,
    seed: int = 0,
    backend: Optional[str] = None,
    keep_outcomes: Optional[bool] = None,
    block_size: Optional[int] = None,
    engine=None,
) -> ExperimentSpec:
    """The population sweep as a runner experiment: one trial per user block.

    ``consensus`` is a single consensus or a day series (e.g. from
    :func:`repro.tor.churn.evolve_consensus`; shorter series repeat their
    last day).  ``clients`` is an explicit per-user AS roster or a
    :class:`~repro.tor.clientdist.ClientASDistribution` with
    ``num_users``.  Day mixes and registries are precomputed here so the
    shipped context carries plain data, never callables.
    """
    if days < 1 or circuits_per_day < 1:
        raise ValueError("days and circuits_per_day must be positive")
    if num_guards < 1:
        raise ValueError("need at least one guard slot")
    if rotation_days <= 0.0:
        raise ValueError("rotation_days must be positive")
    if isinstance(consensus, Consensus):
        series: Sequence[Consensus] = (consensus,)
    else:
        series = tuple(consensus)
    if not series:
        raise ValueError("need at least one consensus day")
    destinations = tuple(destination_asns)
    adversary_set = frozenset(adversaries)
    if not destinations:
        raise ValueError("need clients and destinations")
    if not adversary_set:
        raise ValueError("need at least one adversary AS")
    _resolve_backend(backend)  # fail fast on a bad name

    client_index = client_cum = client_pick = None
    if isinstance(clients, ClientASDistribution):
        if num_users is None or num_users < 1:
            raise ValueError(
                "sampling from a ClientASDistribution needs num_users >= 1"
            )
        client_registry = tuple(sorted(clients.ases))
        registry_index = {asn: i for i, asn in enumerate(client_registry)}
        client_cum = clients.cumulative()
        client_pick = tuple(registry_index[asn] for asn in clients.ases)
    else:
        roster = tuple(clients)
        if not roster:
            raise ValueError("need clients and destinations")
        if num_users is not None and num_users != len(roster):
            raise ValueError(
                "num_users disagrees with the explicit client roster"
            )
        num_users = len(roster)
        client_registry = tuple(sorted(set(roster)))
        registry_index = {asn: i for i, asn in enumerate(client_registry)}
        client_index = tuple(registry_index[asn] for asn in roster)

    guard_registry, exit_registry, day_mixes = _build_day_mixes(
        series, relay_asn, days
    )
    if keep_outcomes is None:
        keep_outcomes = num_users <= KEEP_OUTCOMES_MAX
    if block_size is None:
        block_size = min(num_users, _DEFAULT_BLOCK)
    if block_size < 1:
        raise ValueError("block_size must be positive")

    trials = []
    for block, start in enumerate(range(0, num_users, block_size)):
        end = min(start + block_size, num_users)
        trials.append((f"block-{block}-{start}-{end}", (start, end)))

    return ExperimentSpec(
        name="population",
        seed=seed,
        trial_fn=_population_block_trial,
        trials=tuple(trials),
        context=_PopulationContext(
            graph=graph,
            client_registry=client_registry,
            client_index=client_index,
            client_cum=client_cum,
            client_pick=client_pick,
            guard_registry=guard_registry,
            exit_registry=exit_registry,
            day_mixes=day_mixes,
            destination_asns=destinations,
            adversaries=adversary_set,
            days=days,
            circuits_per_day=circuits_per_day,
            num_guards=num_guards,
            rotation_days=float(rotation_days),
            mode=mode,
            draw_seed=_population_seed(seed),
            backend=backend,
            keep_outcomes=keep_outcomes,
            engine=engine,
        ),
        params={
            "users": num_users,
            "days": days,
            "circuits_per_day": circuits_per_day,
            "mode": mode.value,
            "backend": backend or "auto",
            "block_size": block_size,
        },
        encode_result=_encode_block,
        decode_result=_decode_block,
    )


def simulate_population(
    graph,
    consensus: Union[Consensus, Sequence[Consensus]],
    relay_asn: Callable[[str], int],
    clients: Clients,
    destination_asns: Sequence[int],
    adversaries: Iterable[int],
    *,
    num_users: Optional[int] = None,
    days: int = 30,
    circuits_per_day: int = 6,
    num_guards: int = 3,
    rotation_days: float = 30.0,
    mode: ObservationMode = ObservationMode.EITHER,
    seed: int = 0,
    backend: Optional[str] = None,
    keep_outcomes: Optional[bool] = None,
    block_size: Optional[int] = None,
    engine=None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> PopulationReport:
    """Simulate the whole population's month; returns the report.

    Each user keeps ``num_guards`` persistent guard slots (rotating on a
    staggered ``rotation_days`` schedule, and immediately when the
    slot's AS loses all guard capacity to churn) and builds
    ``circuits_per_day`` circuits a day to random monitored
    destinations; a circuit is compromised when some colluding adversary
    AS observes both of its end segments under ``mode``.

    The population shards over ``jobs`` processes in user blocks with
    streaming aggregate merges; draws are keyed by absolute user index,
    so any ``backend`` / ``block_size`` / ``jobs`` combination produces
    bit-identical results.
    """
    spec = population_spec(
        graph,
        consensus,
        relay_asn,
        clients,
        destination_asns,
        adversaries,
        num_users=num_users,
        days=days,
        circuits_per_day=circuits_per_day,
        num_guards=num_guards,
        rotation_days=rotation_days,
        mode=mode,
        seed=seed,
        backend=backend,
        keep_outcomes=keep_outcomes,
        block_size=block_size,
        engine=engine,
    )
    with obs.span(
        "population.simulate",
        users=spec.params["users"],
        days=days,
        circuits_per_day=circuits_per_day,
        backend=_resolve_backend(backend),
    ) as sim_span:
        started = time.perf_counter()
        report = run_experiment(
            spec, jobs=jobs, checkpoint=checkpoint, resume=resume
        )
        blocks = list(report.results())
        elapsed = time.perf_counter() - started
        aggregate = PopulationAggregate.merge(b.aggregate for b in blocks)
        outcomes = None
        if all(b.outcomes is not None for b in blocks):
            outcomes = tuple(o for b in blocks for o in b.outcomes)
        user_days = aggregate.users * days
        rate = user_days / elapsed if elapsed > 0 else 0.0
        sim_span.set(
            circuits_built=aggregate.circuits_built,
            compromised=aggregate.compromised_circuits,
            user_days=user_days,
        )
        obs.add("population.users", aggregate.users)
        obs.add("population.user_days", user_days)
        obs.add("population.circuits_built", aggregate.circuits_built)
        obs.add(
            "population.circuits_compromised", aggregate.compromised_circuits
        )
        obs.gauge("population.user_days_per_sec", rate)
    return PopulationReport(outcomes=outcomes, days=days, aggregate=aggregate)
