"""Temporal-dynamics analysis (§3.1): exposure growth and compromise risk.

Connects the BGP trace substrate to the anonymity model: for a client AS
observing its own routes towards its guards' prefixes (a full-visibility
"observer" vantage in the trace engine), compute how the set of on-path
ASes grows over the month, and feed the growing ``x`` into
``1 - (1 - f)^x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.exposure import DEFAULT_DWELL_THRESHOLD
from repro.analysis.prefixes import Prefix, format_ip
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.bgpsim.collector import UpdateStream
from repro.bgpsim.trace import MonthTrace
from repro.core.anonymity import compromise_probability
from repro.runner import ExperimentSpec, Trial, run_experiment

__all__ = [
    "DwellTracker",
    "exposure_over_time",
    "compromise_trajectory",
    "ClientExposure",
    "client_exposure",
    "exposure_spec",
    "static_guard_exposure",
]


class DwellTracker:
    """Incremental dwell-qualified AS accounting over one path timeline.

    Feeds on ``(time, path)`` transitions in time order; an AS qualifies
    once its accumulated on-path time reaches the threshold — §4's
    "crossed for at least 5 minutes" rule, evaluated one transition at a
    time so a year-long stream needs no materialized timeline.  The
    ``qualified`` set may be shared between trackers to accumulate a
    union (e.g. across all sessions carrying a guard's prefix) without a
    per-sample union pass.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_DWELL_THRESHOLD,
        qualified: Optional[Set[int]] = None,
    ) -> None:
        self.threshold = threshold
        self.dwell: Dict[int, float] = {}
        self.qualified: Set[int] = qualified if qualified is not None else set()
        self.current_path: Optional[Tuple[int, ...]] = None
        self.since = 0.0

    def _credit(self, until: float) -> None:
        path = self.current_path
        if path is None or until <= self.since:
            return
        span = until - self.since
        dwell = self.dwell
        threshold = self.threshold
        for asn in set(path):
            total = dwell.get(asn, 0.0) + span
            dwell[asn] = total
            if total >= threshold:
                self.qualified.add(asn)

    def observe(self, time: float, path: Optional[Tuple[int, ...]]) -> None:
        """A path transition at ``time`` (``None`` = withdrawn)."""
        self._credit(time)
        self.current_path = path
        self.since = max(self.since, time)

    def advance(self, time: float) -> None:
        """Credit dwell up to ``time`` without changing the path (sampling)."""
        self._credit(time)
        self.since = max(self.since, time)

    def qualified_count(self) -> int:
        return len(self.qualified)

    # -- checkpointing (state shared via ``qualified`` is *not* included;
    # -- the owner of a shared set serializes it once) ---------------------

    def state(self) -> dict:
        return {
            "dwell": {str(asn): total for asn, total in self.dwell.items()},
            "path": list(self.current_path) if self.current_path is not None else None,
            "since": self.since,
        }

    def restore(self, state: dict) -> None:
        self.dwell = {int(asn): float(total) for asn, total in state["dwell"].items()}
        path = state["path"]
        self.current_path = tuple(path) if path is not None else None
        self.since = float(state["since"])


def static_guard_exposure(
    graph: ASGraph,
    client_asn: int,
    guard_asns: Iterable[int],
    *,
    engine: Optional[RoutingEngine] = None,
) -> FrozenSet[int]:
    """ASes on the client's *current* paths towards its guards' origins.

    This is the static-path baseline that prior work assumed fixed and
    that §3.1 shows BGP dynamics grow over time: compare ``len(...)``
    against :func:`client_exposure`'s final ``x`` to quantify the gap.
    Uses the engine's batch API, so a population of clients against a
    shared guard set amortises to one route computation per guard origin.
    """
    from repro.serve.api import PathBatch

    pairs = [(client_asn, g) for g in set(guard_asns)]
    if not pairs:
        raise ValueError("need at least one guard AS")
    eng = engine if engine is not None else shared_engine()
    ases = set()
    for result in eng.paths_many(graph, PathBatch.of(pairs)):
        if result.path:
            ases.update(result.path)
    return frozenset(ases)


def exposure_over_time(
    stream: UpdateStream,
    prefix: Prefix,
    sample_times: Sequence[float],
    dwell_threshold: float = DEFAULT_DWELL_THRESHOLD,
) -> List[int]:
    """Cumulative count of dwell-qualified on-path ASes at each sample time.

    An AS qualifies at time ``t`` once its *accumulated* on-path time up to
    ``t`` reaches ``dwell_threshold`` — the "crossed for at least 5
    minutes" rule of §4, evaluated incrementally.
    """
    if any(t < 0 for t in sample_times):
        raise ValueError("sample times must be non-negative")
    samples = sorted(sample_times)
    timeline = stream.path_timeline(prefix)
    tracker = DwellTracker(dwell_threshold)
    counts: List[int] = []
    seg_idx = 0
    for t in samples:
        while seg_idx < len(timeline) and timeline[seg_idx][0] <= t:
            tracker.observe(*timeline[seg_idx])
            seg_idx += 1
        tracker.advance(t)
        counts.append(tracker.qualified_count())
    return counts


@dataclass(frozen=True)
class ClientExposure:
    """One client's AS exposure towards its guard set over the month."""

    client_asn: int
    guard_prefixes: Tuple[Prefix, ...]
    sample_times: Tuple[float, ...]
    #: x(t): distinct qualified ASes across all guard prefixes, per sample
    x_over_time: Tuple[int, ...]

    @property
    def final_exposure(self) -> int:
        return self.x_over_time[-1] if self.x_over_time else 0

    def compromise_probabilities(self, f: float) -> List[float]:
        """P(compromise) at each sample time for per-AS probability ``f``.

        The union over guards already folds in the guard multiplier ``l``,
        so the exponent here is just the union's size.
        """
        return [compromise_probability(f, x) for x in self.x_over_time]


@dataclass(frozen=True)
class _ExposureContext:
    """Shared world for exposure trials: one observer's update stream."""

    stream: UpdateStream
    sample_times: Tuple[float, ...]
    dwell_threshold: float


def _exposure_trial(
    ctx: _ExposureContext, trial: Trial
) -> List[FrozenSet[int]]:
    """Qualified-AS sets at each sample time for one guard prefix."""
    return _qualified_sets(
        ctx.stream, trial.params, ctx.sample_times, ctx.dwell_threshold
    )


def _encode_qualified_sets(sets: List[FrozenSet[int]]) -> List[List[int]]:
    return [sorted(s) for s in sets]


def _decode_qualified_sets(rows: List[List[int]]) -> List[FrozenSet[int]]:
    return [frozenset(row) for row in rows]


def exposure_spec(
    stream: UpdateStream,
    client_asn: int,
    prefixes: Sequence[Prefix],
    sample_times: Sequence[float],
    dwell_threshold: float = DEFAULT_DWELL_THRESHOLD,
) -> ExperimentSpec:
    """The per-prefix exposure sweep as a runner experiment."""
    return ExperimentSpec(
        name="temporal-exposure",
        trial_fn=_exposure_trial,
        trials=tuple(
            (f"prefix-{format_ip(p.network)}/{p.length}", p) for p in prefixes
        ),
        context=_ExposureContext(
            stream=stream,
            sample_times=tuple(sample_times),
            dwell_threshold=dwell_threshold,
        ),
        params={
            "client_asn": client_asn,
            "samples": len(sample_times),
            "dwell_threshold": dwell_threshold,
        },
        encode_result=_encode_qualified_sets,
        decode_result=_decode_qualified_sets,
    )


def client_exposure(
    trace: MonthTrace,
    client_asn: int,
    guard_prefixes: Iterable[Prefix],
    num_samples: int = 32,
    dwell_threshold: float = DEFAULT_DWELL_THRESHOLD,
    *,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> ClientExposure:
    """Exposure of one observer client towards the given guard prefixes.

    Requires the trace to have been generated with ``client_asn`` among
    its ``observer_asns``.  Runs one :mod:`repro.runner` trial per guard
    prefix, so the sweep shards (``jobs``), checkpoints, and resumes.
    """
    stream = trace.observer_stream(client_asn)
    prefixes = tuple(guard_prefixes)
    if not prefixes:
        raise ValueError("need at least one guard prefix")
    sample_times = tuple(
        trace.duration * (i + 1) / num_samples for i in range(num_samples)
    )

    # Qualified-AS sets per prefix per sample, unioned across the guard
    # set.  Trial ids must be unique, and duplicates cannot change the
    # union anyway, so the spec runs over distinct prefixes only.
    spec = exposure_spec(
        stream,
        client_asn,
        tuple(dict.fromkeys(prefixes)),
        sample_times,
        dwell_threshold,
    )
    report = run_experiment(
        spec, jobs=jobs, checkpoint=checkpoint, resume=resume
    )
    qualified_sets = report.results()
    union_counts: List[int] = []
    for i in range(len(sample_times)):
        union: Set[int] = set()
        for sets in qualified_sets:
            union |= sets[i]
        union_counts.append(len(union))

    return ClientExposure(
        client_asn=client_asn,
        guard_prefixes=prefixes,
        sample_times=sample_times,
        x_over_time=tuple(union_counts),
    )


def _qualified_sets(
    stream: UpdateStream,
    prefix: Prefix,
    sample_times: Sequence[float],
    threshold: float,
) -> List[FrozenSet[int]]:
    """Like :func:`exposure_over_time` but returning the qualified AS sets."""
    samples = sorted(sample_times)
    timeline = stream.path_timeline(prefix)
    tracker = DwellTracker(threshold)
    out: List[FrozenSet[int]] = []
    seg_idx = 0
    for t in samples:
        while seg_idx < len(timeline) and timeline[seg_idx][0] <= t:
            tracker.observe(*timeline[seg_idx])
            seg_idx += 1
        tracker.advance(t)
        out.append(frozenset(tracker.qualified))
    return out


def compromise_trajectory(
    trace: MonthTrace,
    client_asn: int,
    guard_prefixes: Iterable[Prefix],
    f: float,
    num_samples: int = 32,
    dwell_threshold: float = DEFAULT_DWELL_THRESHOLD,
) -> Tuple[Tuple[float, ...], List[float]]:
    """(sample_times, P(compromise at t)) for one client and guard set."""
    exposure = client_exposure(
        trace, client_asn, guard_prefixes, num_samples, dwell_threshold
    )
    return exposure.sample_times, exposure.compromise_probabilities(f)
