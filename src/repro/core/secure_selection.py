"""Real-time monitoring framework for secure path selection.

The paper's future work (§7): "study the design of a real time monitoring
framework for secure path selection in Tor", building on §5's sketch —
collector feeds are watched for hijack signatures, suspicions are
broadcast through the Tor network, and clients avoid relays whose
prefixes are under suspicion.

This module closes that loop in simulation:

- an :class:`AttackSchedule` injects hijack announcements against relay
  prefixes into the collector streams at chosen times;
- a :class:`MonitoringFramework` replays the merged streams through a
  :class:`~repro.core.countermeasures.PrefixMonitor` and timestamps when
  each prefix first becomes suspected (the broadcast clients would see);
- :func:`evaluate_secure_selection` then builds circuits over time for a
  population of clients, with and without the avoid-flagged-relays filter,
  and reports how often clients landed on a relay whose prefix was under
  an active attack, plus the monitor's detection latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.prefixes import Prefix
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.bgpsim.collector import IterSource, SessionId, UpdateRecord, merge_sources
from repro.bgpsim.trace import MonthTrace
from repro.core.countermeasures import MonitorConfig, PrefixMonitor
from repro.runner import ExperimentSpec, Trial, run_experiment
from repro.tor.circuit import Circuit
from repro.tor.client import TorClient
from repro.tor.generator import SyntheticTorNetwork
from repro.tor.pathsel import PathConstraints

__all__ = [
    "AttackEvent",
    "AttackSchedule",
    "MonitoringFramework",
    "SecureSelectionReport",
    "evaluate_secure_selection",
    "secure_selection_spec",
]


@dataclass(frozen=True)
class AttackEvent:
    """A hijack against one relay prefix, active from ``start`` to ``end``."""

    start: float
    prefix: Prefix
    attacker_asn: int
    end: float = float("inf")

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass
class AttackSchedule:
    """A set of attacks plus the bogus records they inject at collectors."""

    events: List[AttackEvent]

    @classmethod
    def random_campaign(
        cls,
        trace: MonthTrace,
        attacker_asn: int,
        num_attacks: int,
        rng: random.Random,
        duration: float = 6 * 3600.0,
    ) -> "AttackSchedule":
        """Hijack ``num_attacks`` random Tor prefixes at random times."""
        prefixes = sorted(trace.tor_prefixes, key=str)
        if num_attacks > len(prefixes):
            raise ValueError("more attacks than tor prefixes")
        chosen = rng.sample(prefixes, num_attacks)
        return cls.targeted_campaign(trace, attacker_asn, chosen, rng, duration)

    @classmethod
    def targeted_campaign(
        cls,
        trace: MonthTrace,
        attacker_asn: int,
        prefixes: Sequence[Prefix],
        rng: random.Random,
        duration: float = 6 * 3600.0,
    ) -> "AttackSchedule":
        """Hijack the given prefixes (e.g. the top-bandwidth guard prefixes
        an adversary would actually pick) at random times."""
        unknown = [p for p in prefixes if p not in trace.tor_prefixes]
        if unknown:
            raise ValueError(f"not tor prefixes: {unknown[:3]}")
        events = []
        for prefix in prefixes:
            start = rng.uniform(0.1, 0.8) * trace.duration
            events.append(
                AttackEvent(
                    start=start,
                    prefix=prefix,
                    attacker_asn=attacker_asn,
                    end=min(start + duration, trace.duration),
                )
            )
        return cls(events=sorted(events, key=lambda e: e.start))

    def active_prefixes(self, time: float) -> FrozenSet[Prefix]:
        return frozenset(e.prefix for e in self.events if e.active_at(time))

    def bogus_records(
        self, sessions: Sequence[SessionId], trace: MonthTrace
    ) -> List[Tuple[SessionId, UpdateRecord]]:
        """The hijack announcements as collector sessions would log them.

        Each session that carries the victim prefix sees the attacker's
        bogus origin appear shortly after the attack starts (propagation
        delays differ per session).
        """
        rng = random.Random(hash(tuple((str(e.prefix), e.start) for e in self.events)) & 0xFFFF)
        records: List[Tuple[SessionId, UpdateRecord]] = []
        for event in self.events:
            for session in sessions:
                if event.prefix not in trace.session_prefixes.get(session, ()):
                    continue
                seen_at = event.start + rng.uniform(5.0, 120.0)
                if seen_at >= event.end:
                    continue
                records.append(
                    (
                        session,
                        UpdateRecord(
                            seen_at, event.prefix, (session[1], event.attacker_asn)
                        ),
                    )
                )
        return records


class MonitoringFramework:
    """Replays collector streams + injected attacks through the monitor.

    After :meth:`replay`, :meth:`suspected_at` answers "which prefixes had
    the Tor network flagged by time t" — i.e. the consensus-borne warning
    list clients consult when building circuits.
    """

    def __init__(
        self,
        trace: MonthTrace,
        config: MonitorConfig = MonitorConfig(),
    ) -> None:
        self.trace = trace
        self.monitor = PrefixMonitor(
            {p: trace.prefix_origins[p] for p in trace.tor_prefixes}, config
        )
        #: prefix -> time of first alert
        self.first_alert: Dict[Prefix, float] = {}
        self._replayed = False

    def replay(self, schedule: Optional[AttackSchedule] = None) -> None:
        """Feed every collector record (and injected attack records) in
        global time order through the monitor.

        Runs on the k-way streaming merge
        (:func:`~repro.bgpsim.collector.merge_sources`) instead of
        materializing and sorting the union, so only one record per
        session is buffered; injected attack records ride along as extra
        per-session sources.
        """
        sources: List[object] = [
            self.trace.streams[s] for s in self.trace.collector_sessions
        ]
        if schedule is not None:
            bogus: Dict[SessionId, List[UpdateRecord]] = {}
            for session, record in schedule.bogus_records(
                self.trace.collector_sessions, self.trace
            ):
                bogus.setdefault(session, []).append(record)
            for session in sorted(bogus):
                sources.append(
                    IterSource(session, sorted(bogus[session], key=lambda r: r.time))
                )
        for event in merge_sources(sources):
            alerts = self.monitor.observe(event.record, session=event.session)
            for alert in alerts:
                self.first_alert.setdefault(alert.prefix, alert.time)
        self._replayed = True

    def suspected_at(self, time: float) -> FrozenSet[Prefix]:
        """Prefixes flagged on or before ``time``."""
        if not self._replayed:
            raise RuntimeError("call replay() first")
        return frozenset(p for p, t in self.first_alert.items() if t <= time)

    def detection_latency(self, schedule: AttackSchedule) -> Dict[Prefix, Optional[float]]:
        """Seconds from attack start to the first alert *during* the attack
        (None = missed).  Pre-attack alerts on the same prefix are false
        positives and do not count as detections, so the search runs over
        the full alert log rather than just the first alert per prefix."""
        latency: Dict[Prefix, Optional[float]] = {}
        for event in schedule.events:
            alerted = min(
                (
                    alert.time
                    for alert in self.monitor.alerts
                    if alert.prefix == event.prefix and alert.time >= event.start
                ),
                default=None,
            )
            latency[event.prefix] = (
                alerted - event.start if alerted is not None else None
            )
        return latency


@dataclass(frozen=True)
class SecureSelectionReport:
    """Outcome of :func:`evaluate_secure_selection`."""

    circuits_built: int
    #: circuits whose guard or exit prefix was under an active attack
    vulnerable_baseline: int
    vulnerable_protected: int
    #: attacks detected / total
    detected_attacks: int
    total_attacks: int
    #: mean seconds from attack start to broadcastable alert
    mean_detection_latency: Optional[float]
    #: prefixes flagged that were never attacked (the acceptable FP cost)
    false_positive_prefixes: int

    @property
    def baseline_rate(self) -> float:
        return self.vulnerable_baseline / self.circuits_built if self.circuits_built else 0.0

    @property
    def protected_rate(self) -> float:
        return self.vulnerable_protected / self.circuits_built if self.circuits_built else 0.0


@dataclass(frozen=True)
class _SelectionContext:
    """Shared world for per-client secure-selection trials.

    Everything here is plain data: the monitoring framework ships
    *replayed* and the capture sets are precomputed in the parent, so
    workers never need a routing engine.
    """

    network: SyntheticTorNetwork
    trace: MonthTrace
    schedule: AttackSchedule
    framework: MonitoringFramework
    relay_prefix: Dict[str, Prefix]
    capture_sets: Dict[Tuple[int, int], FrozenSet[int]]
    routing_aware: bool
    circuits_per_client: int


def _selection_client_trial(
    ctx: _SelectionContext, trial: Trial
) -> Tuple[int, int, int]:
    """One client's circuit-building month.

    Build times come from ``trial.rng()`` — a fresh per-trial generator —
    so a client's schedule is independent of every other client and of
    how the sweep is sharded.  Returns ``(built, vulnerable_baseline,
    vulnerable_protected)``.
    """
    client_asn = trial.params
    trace = ctx.trace
    schedule = ctx.schedule
    relay_prefix = ctx.relay_prefix

    def endangered(prefix: Prefix, asn: int, now: float) -> bool:
        for event in schedule.events:
            if event.prefix != prefix or not event.active_at(now):
                continue
            if not ctx.routing_aware:
                return True
            victim = trace.prefix_origins[event.prefix]
            if asn in ctx.capture_sets[(event.attacker_asn, victim)]:
                return True
        return False

    def vulnerable(circuit: Circuit, asn: int, now: float) -> bool:
        # Guard side: the client's own route to the guard prefix.  Exit
        # side: the middle relay's AS is what routes towards the exit.
        middle_asn = trace.prefix_origins[relay_prefix[circuit.middle.fingerprint]]
        return endangered(
            relay_prefix[circuit.guard.fingerprint], asn, now
        ) or endangered(relay_prefix[circuit.exit.fingerprint], middle_asn, now)

    rng = trial.rng()
    build_times = sorted(
        rng.uniform(0, trace.duration) for _ in range(ctx.circuits_per_client)
    )
    built = 0
    vulnerable_baseline = 0
    vulnerable_protected = 0
    baseline_client = TorClient(
        client_asn, ctx.network.consensus, rng=random.Random(client_asn)
    )
    for now in build_times:
        circuit = baseline_client.build_circuit(now)
        if circuit is None:
            continue
        built += 1
        vulnerable_baseline += vulnerable(circuit, client_asn, now)

        suspected = ctx.framework.suspected_at(now)

        def avoid_flagged(c: Circuit) -> bool:
            return (
                relay_prefix[c.guard.fingerprint] not in suspected
                and relay_prefix[c.exit.fingerprint] not in suspected
            )

        protected_client = TorClient(
            client_asn,
            ctx.network.consensus,
            rng=random.Random(client_asn * 7919 + int(now)),
            constraints=PathConstraints(circuit_filter=avoid_flagged),
        )
        protected_circuit = protected_client.build_circuit(now)
        if protected_circuit is not None:
            vulnerable_protected += vulnerable(protected_circuit, client_asn, now)
    return (built, vulnerable_baseline, vulnerable_protected)


def secure_selection_spec(
    network: SyntheticTorNetwork,
    trace: MonthTrace,
    schedule: AttackSchedule,
    framework: MonitoringFramework,
    client_asns: Sequence[int],
    circuits_per_client: int = 20,
    seed: int = 0,
    graph: Optional[ASGraph] = None,
    *,
    engine: Optional[RoutingEngine] = None,
) -> ExperimentSpec:
    """The per-client selection sweep as a runner experiment.

    ``framework`` must already be replayed.  With ``graph`` given, the
    attacker capture sets are computed here (one memoised hijack outcome
    per (attacker, victim origin) pair via ``engine``) and shipped to the
    trials as plain data.
    """
    capture_sets: Dict[Tuple[int, int], FrozenSet[int]] = {}
    if graph is not None:
        eng = engine if engine is not None else shared_engine()
        for event in schedule.events:
            victim = trace.prefix_origins[event.prefix]
            key = (event.attacker_asn, victim)
            if key in capture_sets:
                continue
            if event.attacker_asn == victim or event.attacker_asn not in graph:
                capture_sets[key] = frozenset()
                continue
            outcome = eng.outcome(graph, [victim, event.attacker_asn])
            capture_sets[key] = outcome.capture_set(event.attacker_asn)

    return ExperimentSpec(
        name="secure-selection",
        seed=seed,
        trial_fn=_selection_client_trial,
        trials=tuple(
            (f"client-{i}-{asn}", asn) for i, asn in enumerate(client_asns)
        ),
        context=_SelectionContext(
            network=network,
            trace=trace,
            schedule=schedule,
            framework=framework,
            relay_prefix=dict(network.relay_prefix),
            capture_sets=capture_sets,
            routing_aware=graph is not None,
            circuits_per_client=circuits_per_client,
        ),
        params={
            "clients": len(client_asns),
            "circuits_per_client": circuits_per_client,
            "routing_aware": graph is not None,
        },
        encode_result=list,
        decode_result=tuple,
    )


def evaluate_secure_selection(
    network: SyntheticTorNetwork,
    trace: MonthTrace,
    schedule: AttackSchedule,
    client_asns: Sequence[int],
    circuits_per_client: int = 20,
    monitor_config: MonitorConfig = MonitorConfig(),
    seed: int = 0,
    graph: Optional[ASGraph] = None,
    *,
    engine: Optional[RoutingEngine] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> SecureSelectionReport:
    """Measure how much the monitoring framework helps clients.

    Clients build circuits at times spread uniformly over the trace.  A
    circuit is *vulnerable* if its guard or exit relay sits in a prefix
    under an active attack at build time.  The protected population
    additionally rejects circuits through currently-suspected prefixes.

    With ``graph`` given, vulnerability is additionally routing-aware: a
    prefix under attack only endangers a circuit when the client's route
    to it is actually in the attacker's capture set (one memoised hijack
    computation per (attacker, victim origin) pair via ``engine``).
    Without it, any circuit through an attacked prefix counts — the
    conservative prefix-level model.

    Each client is one :mod:`repro.runner` trial with its own spawned
    RNG, so the sweep shards over ``jobs`` processes, checkpoints, and
    resumes — with results identical at any ``jobs`` value.
    """
    framework = MonitoringFramework(trace, monitor_config)
    framework.replay(schedule)

    results: Sequence[Tuple[int, int, int]] = ()
    if client_asns:
        spec = secure_selection_spec(
            network,
            trace,
            schedule,
            framework,
            client_asns,
            circuits_per_client,
            seed,
            graph,
            engine=engine,
        )
        report = run_experiment(
            spec, jobs=jobs, checkpoint=checkpoint, resume=resume
        )
        results = report.results()
    built = 0
    vulnerable_baseline = 0
    vulnerable_protected = 0
    for client_built, client_baseline, client_protected in results:
        built += client_built
        vulnerable_baseline += client_baseline
        vulnerable_protected += client_protected

    latency = framework.detection_latency(schedule)
    detected = [v for v in latency.values() if v is not None]
    attacked = {e.prefix for e in schedule.events}
    false_positives = sum(
        1 for p in framework.first_alert if p not in attacked
    )
    return SecureSelectionReport(
        circuits_built=built,
        vulnerable_baseline=vulnerable_baseline,
        vulnerable_protected=vulnerable_protected,
        detected_attacks=len(detected),
        total_attacks=len(schedule.events),
        mean_detection_latency=(sum(detected) / len(detected)) if detected else None,
        false_positive_prefixes=false_positives,
    )
