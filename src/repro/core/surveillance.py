"""Which ASes can correlate which circuits (§3.3's observation models).

A circuit is compromised by an adversary AS (or colluding set) that
observes *both* communication ends.  What counts as "observes" depends on
the model:

- ``FORWARD``: the conventional prior-work model — the adversary must sit
  on the data-flow direction at both ends (e.g. client→guard and
  exit→destination for an upload).
- ``EITHER``: the paper's asymmetric model — sitting on *any* direction of
  each end suffices, because TCP ACK byte counts substitute for data byte
  counts.  Since Internet routing is asymmetric, the union of forward and
  reverse paths crosses more ASes, so ``EITHER`` strictly dominates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.routing import RoutingOutcome
from repro.asgraph.topology import ASGraph
from repro.runner import ExperimentSpec, TransientFields, Trial, run_experiment

__all__ = [
    "ObservationMode",
    "SegmentView",
    "SurveillanceModel",
    "compromised_circuits_spec",
    "observer_counts_spec",
]


class ObservationMode(enum.Enum):
    """Which traffic directions the adversary needs at each end."""

    FORWARD = "forward"  # conventional: data direction only
    REVERSE = "reverse"  # ACK direction only
    EITHER = "either"  # asymmetric traffic analysis: any direction


@dataclass(frozen=True)
class SegmentView:
    """The ASes crossing one end-segment, per direction.

    ``endpoints`` (the segment's own two ASes) always see the traffic; they
    are included in both direction sets.
    """

    forward: FrozenSet[int]
    reverse: FrozenSet[int]

    @property
    def either(self) -> FrozenSet[int]:
        return self.forward | self.reverse

    def observers(self, mode: ObservationMode) -> FrozenSet[int]:
        if mode is ObservationMode.FORWARD:
            return self.forward
        if mode is ObservationMode.REVERSE:
            return self.reverse
        return self.either


class SurveillanceModel:
    """AS-level observation queries over a topology.

    Route caching is delegated to a
    :class:`~repro.asgraph.engine.RoutingEngine` (default: the process-wide
    shared one), so outcomes computed here are reused by the attack and
    resilience pipelines and vice versa.
    """

    def __init__(
        self, graph: ASGraph, *, engine: Optional[RoutingEngine] = None
    ) -> None:
        self.graph = graph
        self.engine = engine if engine is not None else shared_engine()

    def _outcome(self, origin: int) -> RoutingOutcome:
        return self.engine.outcome(self.graph, [origin])

    def _warm(self, *origins: int) -> None:
        """Route the distinct origins in one batched pass.

        Circuit-level queries need outcomes for up to four endpoint ASes
        (both directions of both segments); batching the cache misses
        through :meth:`RoutingEngine.outcomes_many` shares one
        propagation, and each outcome lands under its ordinary per-origin
        key for the ``segment_view`` calls that follow.
        """
        from repro.serve.api import OutcomeBatch

        distinct = [o for o in dict.fromkeys(origins)]
        if len(distinct) > 1:
            self.engine.outcomes_many(
                self.graph, OutcomeBatch.of([[o] for o in distinct])
            )

    def path(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        """Policy path from ``src`` towards ``dst``'s prefix."""
        return self._outcome(dst).path(src)

    def segment_view(self, a: int, b: int) -> SegmentView:
        """ASes on the a→b path (forward) and the b→a path (reverse)."""
        forward = self.path(a, b) or (a, b)
        reverse = self.path(b, a) or (b, a)
        return SegmentView(forward=frozenset(forward), reverse=frozenset(reverse))

    def exposure_table(
        self,
        adversaries: Iterable[int],
        left_ases: Sequence[int],
        right_ases: Sequence[int],
        mode: ObservationMode = ObservationMode.EITHER,
    ) -> List[List[bool]]:
        """Batch segment-compromise table over an AS cross product.

        ``table[i][j]`` is True when some colluding adversary AS observes
        the ``(left_ases[i], right_ases[j])`` segment under ``mode`` —
        i.e. the segment-level half of :meth:`compromised_by`, evaluated
        for every pair at once.  All distinct endpoints are routed in one
        batched :meth:`RoutingEngine.outcomes_many` pass and each outcome
        is fetched exactly once, so cost scales with distinct endpoint
        ASes plus cells — never with the user population sitting behind
        them.  This is the dedup step population-scale simulation leans
        on: millions of users collapse onto one small table.
        """
        adversary_set = set(adversaries)
        left = list(left_ases)
        right = list(right_ases)
        self._warm(*left, *right)
        outcomes = {
            asn: self._outcome(asn) for asn in dict.fromkeys(left + right)
        }
        cells: Dict[Tuple[int, int], bool] = {}
        table: List[List[bool]] = []
        for a in left:
            row: List[bool] = []
            for b in right:
                hit = cells.get((a, b))
                if hit is None:
                    view = SegmentView(
                        forward=frozenset(outcomes[b].path(a) or (a, b)),
                        reverse=frozenset(outcomes[a].path(b) or (b, a)),
                    )
                    hit = bool(adversary_set & view.observers(mode))
                    cells[(a, b)] = hit
                row.append(hit)
            table.append(row)
        return table

    def is_asymmetric(self, a: int, b: int) -> bool:
        """True if the a→b and b→a paths cross different AS sets."""
        view = self.segment_view(a, b)
        return view.forward != view.reverse

    # -- circuit-level queries ------------------------------------------------

    def circuit_observers(
        self,
        client_asn: int,
        guard_asn: int,
        exit_asn: int,
        dest_asn: int,
        mode: ObservationMode = ObservationMode.EITHER,
    ) -> FrozenSet[int]:
        """ASes that observe *both* ends of the circuit under ``mode``.

        These are exactly the ASes that can run end-to-end (or asymmetric)
        timing analysis against this client/destination pair.
        """
        self._warm(client_asn, guard_asn, exit_asn, dest_asn)
        entry = self.segment_view(client_asn, guard_asn)
        exit_side = self.segment_view(exit_asn, dest_asn)
        return entry.observers(mode) & exit_side.observers(mode)

    def compromised_by(
        self,
        adversaries: Iterable[int],
        client_asn: int,
        guard_asn: int,
        exit_asn: int,
        dest_asn: int,
        mode: ObservationMode = ObservationMode.EITHER,
    ) -> bool:
        """True if some colluding adversary AS observes both ends.

        A set of colluding ASes counts as one adversary: one member on the
        entry segment plus another on the exit segment suffices.
        """
        adversary_set = set(adversaries)
        self._warm(client_asn, guard_asn, exit_asn, dest_asn)
        entry = self.segment_view(client_asn, guard_asn)
        exit_side = self.segment_view(exit_asn, dest_asn)
        return bool(adversary_set & entry.observers(mode)) and bool(
            adversary_set & exit_side.observers(mode)
        )

    def fraction_of_circuits_compromised(
        self,
        adversaries: Iterable[int],
        circuits: Sequence[Tuple[int, int, int, int]],
        mode: ObservationMode = ObservationMode.EITHER,
        *,
        jobs: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ) -> float:
        """Fraction of (client, guard, exit, dest) AS tuples compromised.

        One :mod:`repro.runner` trial per circuit, so large circuit
        populations shard over ``jobs`` processes and checkpoint/resume.
        """
        if not circuits:
            raise ValueError("need at least one circuit")
        spec = compromised_circuits_spec(
            self.graph, adversaries, circuits, mode, engine=self.engine
        )
        report = run_experiment(
            spec, jobs=jobs, checkpoint=checkpoint, resume=resume
        )
        return sum(1 for hit in report.results() if hit) / len(circuits)

    def observers_per_circuit(
        self,
        circuits: Sequence[Tuple[int, int, int, int]],
        mode: ObservationMode,
        *,
        jobs: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ) -> List[int]:
        """Observer-count distribution — compare FORWARD vs EITHER to
        quantify §3.3's claim that asymmetry *increases* exposure."""
        if not circuits:
            return []
        spec = observer_counts_spec(
            self.graph, circuits, mode, engine=self.engine
        )
        report = run_experiment(
            spec, jobs=jobs, checkpoint=checkpoint, resume=resume
        )
        return list(report.results())


@dataclass(frozen=True)
class _CircuitContext(TransientFields):
    """Shared world for per-circuit trials (engine is process-local)."""

    graph: ASGraph
    adversaries: FrozenSet[int]
    mode: ObservationMode
    engine: Optional[RoutingEngine] = None

    _transient = ("engine",)


def _circuit_trials(
    circuits: Sequence[Tuple[int, int, int, int]],
) -> Tuple[Tuple[str, Tuple[int, int, int, int]], ...]:
    # The index keeps ids unique when a population repeats a circuit.
    return tuple(
        (f"circuit-{i}-{c[0]}-{c[1]}-{c[2]}-{c[3]}", tuple(c))
        for i, c in enumerate(circuits)
    )


def _exposure_result(ctx: _CircuitContext, trial: Trial, adversaries):
    """Run one circuit through the unified query facade."""
    # Function-level import: the facade sits above this module in the
    # serving layer; importing it lazily keeps the layering acyclic.
    from repro.serve.api import ExposureQuery, QueryError
    from repro.serve.facade import QueryFacade

    client, guard, exit_asn, dest = trial.params
    facade = QueryFacade(ctx.graph, engine=ctx.engine)
    result = facade.execute(
        ExposureQuery(
            client=client,
            guard=guard,
            exit=exit_asn,
            dest=dest,
            mode=ctx.mode.value,
            adversaries=tuple(adversaries),
        )
    )
    if isinstance(result, QueryError):
        raise ValueError(result.message)
    return result


def _compromised_trial(ctx: _CircuitContext, trial: Trial) -> bool:
    return bool(_exposure_result(ctx, trial, ctx.adversaries).compromised)


def _observer_count_trial(ctx: _CircuitContext, trial: Trial) -> int:
    return _exposure_result(ctx, trial, ()).num_observers


def compromised_circuits_spec(
    graph: ASGraph,
    adversaries: Iterable[int],
    circuits: Sequence[Tuple[int, int, int, int]],
    mode: ObservationMode = ObservationMode.EITHER,
    *,
    engine: Optional[RoutingEngine] = None,
) -> ExperimentSpec:
    """Per-circuit compromise checks as a runner experiment."""
    adversary_set = frozenset(adversaries)
    return ExperimentSpec(
        name="surveillance-compromised",
        trial_fn=_compromised_trial,
        trials=_circuit_trials(circuits),
        context=_CircuitContext(
            graph=graph, adversaries=adversary_set, mode=mode, engine=engine
        ),
        params={
            "adversaries": sorted(adversary_set),
            "mode": mode.value,
            "circuits": len(circuits),
        },
    )


def observer_counts_spec(
    graph: ASGraph,
    circuits: Sequence[Tuple[int, int, int, int]],
    mode: ObservationMode,
    *,
    engine: Optional[RoutingEngine] = None,
) -> ExperimentSpec:
    """Per-circuit observer counts as a runner experiment."""
    return ExperimentSpec(
        name="surveillance-observers",
        trial_fn=_observer_count_trial,
        trials=_circuit_trials(circuits),
        context=_CircuitContext(
            graph=graph,
            adversaries=frozenset(),
            mode=mode,
            engine=engine,
        ),
        params={"mode": mode.value, "circuits": len(circuits)},
    )
