"""Which ASes can correlate which circuits (§3.3's observation models).

A circuit is compromised by an adversary AS (or colluding set) that
observes *both* communication ends.  What counts as "observes" depends on
the model:

- ``FORWARD``: the conventional prior-work model — the adversary must sit
  on the data-flow direction at both ends (e.g. client→guard and
  exit→destination for an upload).
- ``EITHER``: the paper's asymmetric model — sitting on *any* direction of
  each end suffices, because TCP ACK byte counts substitute for data byte
  counts.  Since Internet routing is asymmetric, the union of forward and
  reverse paths crosses more ASes, so ``EITHER`` strictly dominates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.routing import RoutingOutcome
from repro.asgraph.topology import ASGraph

__all__ = ["ObservationMode", "SegmentView", "SurveillanceModel"]


class ObservationMode(enum.Enum):
    """Which traffic directions the adversary needs at each end."""

    FORWARD = "forward"  # conventional: data direction only
    REVERSE = "reverse"  # ACK direction only
    EITHER = "either"  # asymmetric traffic analysis: any direction


@dataclass(frozen=True)
class SegmentView:
    """The ASes crossing one end-segment, per direction.

    ``endpoints`` (the segment's own two ASes) always see the traffic; they
    are included in both direction sets.
    """

    forward: FrozenSet[int]
    reverse: FrozenSet[int]

    @property
    def either(self) -> FrozenSet[int]:
        return self.forward | self.reverse

    def observers(self, mode: ObservationMode) -> FrozenSet[int]:
        if mode is ObservationMode.FORWARD:
            return self.forward
        if mode is ObservationMode.REVERSE:
            return self.reverse
        return self.either


class SurveillanceModel:
    """AS-level observation queries over a topology.

    Route caching is delegated to a
    :class:`~repro.asgraph.engine.RoutingEngine` (default: the process-wide
    shared one), so outcomes computed here are reused by the attack and
    resilience pipelines and vice versa.
    """

    def __init__(
        self, graph: ASGraph, *, engine: Optional[RoutingEngine] = None
    ) -> None:
        self.graph = graph
        self.engine = engine if engine is not None else shared_engine()

    def _outcome(self, origin: int) -> RoutingOutcome:
        return self.engine.outcome(self.graph, [origin])

    def path(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        """Policy path from ``src`` towards ``dst``'s prefix."""
        return self._outcome(dst).path(src)

    def segment_view(self, a: int, b: int) -> SegmentView:
        """ASes on the a→b path (forward) and the b→a path (reverse)."""
        forward = self.path(a, b) or (a, b)
        reverse = self.path(b, a) or (b, a)
        return SegmentView(forward=frozenset(forward), reverse=frozenset(reverse))

    def is_asymmetric(self, a: int, b: int) -> bool:
        """True if the a→b and b→a paths cross different AS sets."""
        view = self.segment_view(a, b)
        return view.forward != view.reverse

    # -- circuit-level queries ------------------------------------------------

    def circuit_observers(
        self,
        client_asn: int,
        guard_asn: int,
        exit_asn: int,
        dest_asn: int,
        mode: ObservationMode = ObservationMode.EITHER,
    ) -> FrozenSet[int]:
        """ASes that observe *both* ends of the circuit under ``mode``.

        These are exactly the ASes that can run end-to-end (or asymmetric)
        timing analysis against this client/destination pair.
        """
        entry = self.segment_view(client_asn, guard_asn)
        exit_side = self.segment_view(exit_asn, dest_asn)
        return entry.observers(mode) & exit_side.observers(mode)

    def compromised_by(
        self,
        adversaries: Iterable[int],
        client_asn: int,
        guard_asn: int,
        exit_asn: int,
        dest_asn: int,
        mode: ObservationMode = ObservationMode.EITHER,
    ) -> bool:
        """True if some colluding adversary AS observes both ends.

        A set of colluding ASes counts as one adversary: one member on the
        entry segment plus another on the exit segment suffices.
        """
        adversary_set = set(adversaries)
        entry = self.segment_view(client_asn, guard_asn)
        exit_side = self.segment_view(exit_asn, dest_asn)
        return bool(adversary_set & entry.observers(mode)) and bool(
            adversary_set & exit_side.observers(mode)
        )

    def fraction_of_circuits_compromised(
        self,
        adversaries: Iterable[int],
        circuits: Sequence[Tuple[int, int, int, int]],
        mode: ObservationMode = ObservationMode.EITHER,
    ) -> float:
        """Fraction of (client, guard, exit, dest) AS tuples compromised."""
        if not circuits:
            raise ValueError("need at least one circuit")
        adversary_set = frozenset(adversaries)
        hits = sum(
            1
            for client, guard, exit_asn, dest in circuits
            if self.compromised_by(adversary_set, client, guard, exit_asn, dest, mode)
        )
        return hits / len(circuits)

    def observers_per_circuit(
        self,
        circuits: Sequence[Tuple[int, int, int, int]],
        mode: ObservationMode,
    ) -> List[int]:
        """Observer-count distribution — compare FORWARD vs EITHER to
        quantify §3.3's claim that asymmetry *increases* exposure."""
        return [
            len(self.circuit_observers(client, guard, exit_asn, dest, mode))
            for client, guard, exit_asn, dest in circuits
        ]
