"""The paper's contribution: AS-level attacks on Tor and countermeasures.

- :mod:`repro.core.anonymity` — §3.1's analytical compromise model.
- :mod:`repro.core.temporal` — §3.1/§4: exposure growth under BGP dynamics.
- :mod:`repro.core.interception` — §3.2: hijack/interception attack planning
  against the Tor relay population.
- :mod:`repro.core.asymmetric` — §3.3: correlation of data bytes against
  cumulative ACKed bytes, in any direction combination.
- :mod:`repro.core.surveillance` — which ASes can correlate which circuits,
  under symmetric/asymmetric/attack-augmented observation.
- :mod:`repro.core.countermeasures` — §5: dynamics-aware relay selection,
  hijack monitoring, short-AS-PATH preference.
- :mod:`repro.core.population` — population-scale user simulation (the
  "Users get routed" question at 10^6+ clients).
"""

from repro.core.anonymity import (
    compromise_probability,
    guard_amplification,
    expected_compromise_time,
)
from repro.core.asymmetric import (
    pearson,
    spearman,
    correlate_captures,
    correlate_segments,
    FlowMatcher,
)
from repro.core.surveillance import SurveillanceModel, ObservationMode
from repro.core.temporal import (
    exposure_over_time,
    compromise_trajectory,
    static_guard_exposure,
)
from repro.core.interception import TargetRanking, AttackPlanner
from repro.core.countermeasures import (
    PrefixMonitor,
    MonitorConfig,
    dynamics_aware_filter,
    short_path_guard_weights,
    short_path_guard_weights_from_graph,
)
from repro.core.convergence import ConvergenceExposure, measure_convergence_exposure
from repro.core.secure_selection import (
    AttackSchedule,
    MonitoringFramework,
    evaluate_secure_selection,
)
from repro.core.guard_inference import CongestionProbe, ProbeSchedule
from repro.core.resilience import (
    compute_resilience,
    blended_guard_weights,
    evaluate_selection,
)
from repro.core.population import (
    POPULATION_BACKEND,
    PopulationAggregate,
    PopulationReport,
    UserOutcome,
    simulate_population,
)
from repro.core.usermetrics import simulate_user_population

__all__ = [
    "compromise_probability",
    "guard_amplification",
    "expected_compromise_time",
    "pearson",
    "spearman",
    "correlate_captures",
    "correlate_segments",
    "FlowMatcher",
    "SurveillanceModel",
    "ObservationMode",
    "exposure_over_time",
    "compromise_trajectory",
    "static_guard_exposure",
    "TargetRanking",
    "AttackPlanner",
    "PrefixMonitor",
    "MonitorConfig",
    "dynamics_aware_filter",
    "short_path_guard_weights",
    "short_path_guard_weights_from_graph",
    "ConvergenceExposure",
    "measure_convergence_exposure",
    "AttackSchedule",
    "MonitoringFramework",
    "evaluate_secure_selection",
    "CongestionProbe",
    "ProbeSchedule",
    "compute_resilience",
    "blended_guard_weights",
    "evaluate_selection",
    "POPULATION_BACKEND",
    "PopulationAggregate",
    "PopulationReport",
    "UserOutcome",
    "simulate_population",
    "simulate_user_population",
]
