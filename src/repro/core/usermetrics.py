"""User-understandable anonymity metrics (Johnson et al., CCS 2013).

The paper's related work singles out "Users get routed": instead of
per-circuit probabilities, report what a *user* experiences — how long
until the first compromised circuit, and what fraction of users are
compromised within an observation window.  §3.1's point sharpens in these
terms: guard pinning was meant to stretch the time-to-first-compromise,
but AS-level adversaries sit under the guard and get re-rolled by BGP
every time the user builds a circuit.

:func:`simulate_user_population` replays a client population building
circuits over a month against a colluding AS-level adversary (observation
in the asymmetric EITHER model by default) and reports the
time-to-first-compromise distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.surveillance import ObservationMode, SurveillanceModel
from repro.runner import ExperimentSpec, TransientFields, Trial, run_experiment
from repro.tor.client import TorClient
from repro.tor.consensus import Consensus

__all__ = [
    "UserOutcome",
    "PopulationReport",
    "simulate_user_population",
    "user_population_spec",
]

_DAY = 86_400.0


@dataclass(frozen=True)
class UserOutcome:
    """One user's month: when (if ever) a circuit was first compromised."""

    client_asn: int
    circuits_built: int
    compromised_circuits: int
    #: day (1-based) of the first compromised circuit; None = survived
    first_compromise_day: Optional[int]

    @property
    def compromised(self) -> bool:
        return self.first_compromise_day is not None


@dataclass(frozen=True)
class PopulationReport:
    """Aggregate over the simulated user population."""

    outcomes: Tuple[UserOutcome, ...]
    days: int

    @property
    def fraction_compromised(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.compromised for o in self.outcomes) / len(self.outcomes)

    def fraction_compromised_by_day(self) -> List[float]:
        """Cumulative fraction of users compromised by each day (index 0 =
        day 1) — the Johnson-style survival curve, inverted."""
        n = len(self.outcomes)
        curve = []
        for day in range(1, self.days + 1):
            hit = sum(
                1
                for o in self.outcomes
                if o.first_compromise_day is not None and o.first_compromise_day <= day
            )
            curve.append(hit / n if n else 0.0)
        return curve

    def median_days_to_compromise(self) -> Optional[float]:
        """Median time-to-first-compromise (None if under half were hit)."""
        days = sorted(
            o.first_compromise_day for o in self.outcomes if o.compromised
        )
        if len(days) * 2 < len(self.outcomes):
            return None
        return float(days[(len(self.outcomes) + 1) // 2 - 1])

    @property
    def mean_circuit_compromise_rate(self) -> float:
        built = sum(o.circuits_built for o in self.outcomes)
        hit = sum(o.compromised_circuits for o in self.outcomes)
        return hit / built if built else 0.0


@dataclass(frozen=True)
class _UserContext(TransientFields):
    """Shared world for per-client user-month trials.

    ``relay_asns`` is the relay→AS mapping materialised as a plain dict
    (callables bound to live scenarios would not pickle); ``engine`` is
    process-local and rebuilt from :func:`shared_engine` in workers.
    """

    graph: object
    consensus: Consensus
    relay_asns: Dict[str, int]
    destination_asns: Tuple[int, ...]
    adversaries: frozenset
    days: int
    circuits_per_day: int
    mode: ObservationMode
    root_seed: int
    num_guards: int
    engine: object = None

    _transient = ("engine",)


def _user_month_trial(ctx: _UserContext, trial: Trial) -> UserOutcome:
    """One user's month of circuits against the colluding adversary.

    Destination draws come from ``trial.rng()`` — a fresh per-trial
    generator — so a client's destinations are independent of every
    other client and of how the sweep is sharded.
    """
    client_asn = trial.params
    model = SurveillanceModel(ctx.graph, engine=ctx.engine)
    dest_rng = trial.rng()
    client = TorClient(
        client_asn,
        ctx.consensus,
        rng=random.Random(ctx.root_seed * 100_003 + client_asn),
        num_guards=ctx.num_guards,
    )
    built = hit = 0
    first_day: Optional[int] = None
    for day in range(1, ctx.days + 1):
        now = (day - 1) * _DAY
        for _ in range(ctx.circuits_per_day):
            circuit = client.build_circuit(now)
            if circuit is None:
                continue
            built += 1
            dest = dest_rng.choice(ctx.destination_asns)
            compromised = model.compromised_by(
                ctx.adversaries,
                client_asn,
                ctx.relay_asns[circuit.guard.fingerprint],
                ctx.relay_asns[circuit.exit.fingerprint],
                dest,
                ctx.mode,
            )
            if compromised:
                hit += 1
                if first_day is None:
                    first_day = day
    return UserOutcome(
        client_asn=client_asn,
        circuits_built=built,
        compromised_circuits=hit,
        first_compromise_day=first_day,
    )


def _encode_outcome(outcome: UserOutcome) -> dict:
    return {
        "client_asn": outcome.client_asn,
        "circuits_built": outcome.circuits_built,
        "compromised_circuits": outcome.compromised_circuits,
        "first_compromise_day": outcome.first_compromise_day,
    }


def _decode_outcome(encoded: dict) -> UserOutcome:
    return UserOutcome(**encoded)


def user_population_spec(
    graph,
    consensus: Consensus,
    relay_asn: Callable[[str], int],
    client_asns: Sequence[int],
    destination_asns: Sequence[int],
    adversaries: Iterable[int],
    days: int = 31,
    circuits_per_day: int = 6,
    mode: ObservationMode = ObservationMode.EITHER,
    seed: int = 0,
    num_guards: int = 3,
    *,
    engine=None,
) -> ExperimentSpec:
    """The user-population sweep as a runner experiment: one trial per
    client.  ``relay_asn`` is evaluated over the consensus here so the
    shipped context carries a plain dict instead of a callable."""
    relay_asns = {
        relay.fingerprint: relay_asn(relay.fingerprint)
        for relay in consensus.relays
    }
    return ExperimentSpec(
        name="user-population",
        seed=seed,
        trial_fn=_user_month_trial,
        trials=tuple(
            (f"client-{i}-{asn}", asn) for i, asn in enumerate(client_asns)
        ),
        context=_UserContext(
            graph=graph,
            consensus=consensus,
            relay_asns=relay_asns,
            destination_asns=tuple(destination_asns),
            adversaries=frozenset(adversaries),
            days=days,
            circuits_per_day=circuits_per_day,
            mode=mode,
            root_seed=seed,
            num_guards=num_guards,
            engine=engine,
        ),
        params={
            "clients": len(client_asns),
            "days": days,
            "circuits_per_day": circuits_per_day,
            "mode": mode.value,
        },
        encode_result=_encode_outcome,
        decode_result=_decode_outcome,
    )


def simulate_user_population(
    graph,
    consensus: Consensus,
    relay_asn: Callable[[str], int],
    client_asns: Sequence[int],
    destination_asns: Sequence[int],
    adversaries: Iterable[int],
    days: int = 31,
    circuits_per_day: int = 6,
    mode: ObservationMode = ObservationMode.EITHER,
    seed: int = 0,
    num_guards: int = 3,
    *,
    engine=None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> PopulationReport:
    """Run the month for every client; returns the population report.

    Each client keeps a persistent guard set (rotating on Tor's schedule)
    and builds ``circuits_per_day`` circuits to random monitored
    destinations; a circuit is compromised when some colluding adversary
    AS observes both of its end segments under ``mode``.

    ``engine`` (keyword-only) is the
    :class:`~repro.asgraph.engine.RoutingEngine` the underlying
    :class:`SurveillanceModel` routes through; default the shared one.

    Each client is one :mod:`repro.runner` trial with its own spawned
    destination RNG, so the population shards over ``jobs`` processes,
    checkpoints, and resumes — identically at any ``jobs`` value.
    """
    if days < 1 or circuits_per_day < 1:
        raise ValueError("days and circuits_per_day must be positive")
    if not client_asns or not destination_asns:
        raise ValueError("need clients and destinations")
    adversary_set = frozenset(adversaries)
    if not adversary_set:
        raise ValueError("need at least one adversary AS")

    spec = user_population_spec(
        graph, consensus, relay_asn, client_asns, destination_asns,
        adversary_set, days, circuits_per_day, mode, seed, num_guards,
        engine=engine,
    )
    with obs.span(
        "users.simulate",
        clients=len(client_asns),
        days=days,
        circuits_per_day=circuits_per_day,
    ) as sim_span:
        report = run_experiment(
            spec, jobs=jobs, checkpoint=checkpoint, resume=resume
        )
        outcomes = report.results()
        built = sum(o.circuits_built for o in outcomes)
        hit = sum(o.compromised_circuits for o in outcomes)
        sim_span.set(circuits_built=built, compromised=hit)
        obs.add("users.circuits_built", built)
        obs.add("users.circuits_compromised", hit)
    return PopulationReport(outcomes=tuple(outcomes), days=days)
