"""User-understandable anonymity metrics (Johnson et al., CCS 2013).

The paper's related work singles out "Users get routed": instead of
per-circuit probabilities, report what a *user* experiences — how long
until the first compromised circuit, and what fraction of users are
compromised within an observation window.  §3.1's point sharpens in these
terms: guard pinning was meant to stretch the time-to-first-compromise,
but AS-level adversaries sit under the guard and get re-rolled by BGP
every time the user builds a circuit.

:func:`simulate_user_population` is the small-population reference path:
it keeps its historical signature and report shape but delegates to the
struct-of-arrays kernel in :mod:`repro.core.population` (with per-user
``outcomes`` always retained), so the same seed gives the same per-user
first-compromise days as a direct :func:`simulate_population` call at
any scale, backend, or sharding.  The relay-level per-user-object sweep
(:func:`user_population_spec`) is kept as the legacy path for
consumers that need relay-granular circuit construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.population import (
    PopulationReport,
    UserOutcome,
    simulate_population,
)
from repro.core.surveillance import ObservationMode, SurveillanceModel
from repro.runner import ExperimentSpec, TransientFields, Trial, run_experiment
from repro.tor.client import TorClient
from repro.tor.consensus import Consensus

__all__ = [
    "UserOutcome",
    "PopulationReport",
    "simulate_user_population",
    "user_population_spec",
]

_DAY = 86_400.0


@dataclass(frozen=True)
class _UserContext(TransientFields):
    """Shared world for per-client user-month trials (legacy path).

    ``relay_asns`` is the relay→AS mapping materialised as a plain dict
    (callables bound to live scenarios would not pickle); ``engine`` is
    process-local and rebuilt from :func:`shared_engine` in workers.
    """

    graph: object
    consensus: Consensus
    relay_asns: Dict[str, int]
    destination_asns: Tuple[int, ...]
    adversaries: frozenset
    days: int
    circuits_per_day: int
    mode: ObservationMode
    root_seed: int
    num_guards: int
    engine: object = None

    _transient = ("engine",)


def _user_month_trial(ctx: _UserContext, trial: Trial) -> UserOutcome:
    """One user's month of circuits against the colluding adversary.

    Destination draws come from ``trial.rng()`` — a fresh per-trial
    generator — so a client's destinations are independent of every
    other client and of how the sweep is sharded.
    """
    client_asn = trial.params
    model = SurveillanceModel(ctx.graph, engine=ctx.engine)
    dest_rng = trial.rng()
    client = TorClient(
        client_asn,
        ctx.consensus,
        rng=random.Random(ctx.root_seed * 100_003 + client_asn),
        num_guards=ctx.num_guards,
    )
    built = hit = 0
    first_day: Optional[int] = None
    for day in range(1, ctx.days + 1):
        now = (day - 1) * _DAY
        for _ in range(ctx.circuits_per_day):
            circuit = client.build_circuit(now)
            if circuit is None:
                continue
            built += 1
            dest = dest_rng.choice(ctx.destination_asns)
            compromised = model.compromised_by(
                ctx.adversaries,
                client_asn,
                ctx.relay_asns[circuit.guard.fingerprint],
                ctx.relay_asns[circuit.exit.fingerprint],
                dest,
                ctx.mode,
            )
            if compromised:
                hit += 1
                if first_day is None:
                    first_day = day
    return UserOutcome(
        client_asn=client_asn,
        circuits_built=built,
        compromised_circuits=hit,
        first_compromise_day=first_day,
    )


def _encode_outcome(outcome: UserOutcome) -> dict:
    return {
        "client_asn": outcome.client_asn,
        "circuits_built": outcome.circuits_built,
        "compromised_circuits": outcome.compromised_circuits,
        "first_compromise_day": outcome.first_compromise_day,
    }


def _decode_outcome(encoded: dict) -> UserOutcome:
    return UserOutcome(**encoded)


def user_population_spec(
    graph,
    consensus: Consensus,
    relay_asn: Callable[[str], int],
    client_asns: Sequence[int],
    destination_asns: Sequence[int],
    adversaries: Iterable[int],
    days: int = 31,
    circuits_per_day: int = 6,
    mode: ObservationMode = ObservationMode.EITHER,
    seed: int = 0,
    num_guards: int = 3,
    *,
    engine=None,
) -> ExperimentSpec:
    """The legacy relay-level sweep as a runner experiment: one trial per
    client, each building circuits through concrete relays.  ``relay_asn``
    is evaluated over the consensus here so the shipped context carries a
    plain dict instead of a callable."""
    relay_asns = {
        relay.fingerprint: relay_asn(relay.fingerprint)
        for relay in consensus.relays
    }
    return ExperimentSpec(
        name="user-population",
        seed=seed,
        trial_fn=_user_month_trial,
        trials=tuple(
            (f"client-{i}-{asn}", asn) for i, asn in enumerate(client_asns)
        ),
        context=_UserContext(
            graph=graph,
            consensus=consensus,
            relay_asns=relay_asns,
            destination_asns=tuple(destination_asns),
            adversaries=frozenset(adversaries),
            days=days,
            circuits_per_day=circuits_per_day,
            mode=mode,
            root_seed=seed,
            num_guards=num_guards,
            engine=engine,
        ),
        params={
            "clients": len(client_asns),
            "days": days,
            "circuits_per_day": circuits_per_day,
            "mode": mode.value,
        },
        encode_result=_encode_outcome,
        decode_result=_decode_outcome,
    )


def simulate_user_population(
    graph,
    consensus: Consensus,
    relay_asn: Callable[[str], int],
    client_asns: Sequence[int],
    destination_asns: Sequence[int],
    adversaries: Iterable[int],
    days: int = 31,
    circuits_per_day: int = 6,
    mode: ObservationMode = ObservationMode.EITHER,
    seed: int = 0,
    num_guards: int = 3,
    *,
    engine=None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> PopulationReport:
    """Run the month for every client; returns the population report.

    Each client keeps a persistent guard set (rotating on Tor's schedule)
    and builds ``circuits_per_day`` circuits to random monitored
    destinations; a circuit is compromised when some colluding adversary
    AS observes both of its end segments under ``mode``.

    This is the reference wrapper over
    :func:`repro.core.population.simulate_population`: the explicit
    client roster maps one user per entry, per-user ``outcomes`` are
    always retained, and results are bit-identical to a direct kernel
    call with the same arguments — at any ``jobs`` value, block size, or
    backend (vector or the numpy-free loop tier).

    ``engine`` (keyword-only) is the
    :class:`~repro.asgraph.engine.RoutingEngine` the underlying
    :class:`SurveillanceModel` routes through; default the shared one.
    """
    if days < 1 or circuits_per_day < 1:
        raise ValueError("days and circuits_per_day must be positive")
    if not client_asns or not destination_asns:
        raise ValueError("need clients and destinations")
    adversary_set = frozenset(adversaries)
    if not adversary_set:
        raise ValueError("need at least one adversary AS")

    with obs.span(
        "users.simulate",
        clients=len(client_asns),
        days=days,
        circuits_per_day=circuits_per_day,
    ) as sim_span:
        report = simulate_population(
            graph,
            consensus,
            relay_asn,
            tuple(client_asns),
            destination_asns,
            adversary_set,
            days=days,
            circuits_per_day=circuits_per_day,
            num_guards=num_guards,
            mode=mode,
            seed=seed,
            keep_outcomes=True,
            engine=engine,
            jobs=jobs,
            checkpoint=checkpoint,
            resume=resume,
        )
        aggregate = report.aggregate
        sim_span.set(
            circuits_built=aggregate.circuits_built,
            compromised=aggregate.compromised_circuits,
        )
        obs.add("users.circuits_built", aggregate.circuits_built)
        obs.add("users.circuits_compromised", aggregate.compromised_circuits)
    return report
