"""User-understandable anonymity metrics (Johnson et al., CCS 2013).

The paper's related work singles out "Users get routed": instead of
per-circuit probabilities, report what a *user* experiences — how long
until the first compromised circuit, and what fraction of users are
compromised within an observation window.  §3.1's point sharpens in these
terms: guard pinning was meant to stretch the time-to-first-compromise,
but AS-level adversaries sit under the guard and get re-rolled by BGP
every time the user builds a circuit.

:func:`simulate_user_population` replays a client population building
circuits over a month against a colluding AS-level adversary (observation
in the asymmetric EITHER model by default) and reports the
time-to-first-compromise distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.surveillance import ObservationMode, SurveillanceModel
from repro.tor.client import TorClient
from repro.tor.consensus import Consensus

__all__ = ["UserOutcome", "PopulationReport", "simulate_user_population"]

_DAY = 86_400.0


@dataclass(frozen=True)
class UserOutcome:
    """One user's month: when (if ever) a circuit was first compromised."""

    client_asn: int
    circuits_built: int
    compromised_circuits: int
    #: day (1-based) of the first compromised circuit; None = survived
    first_compromise_day: Optional[int]

    @property
    def compromised(self) -> bool:
        return self.first_compromise_day is not None


@dataclass(frozen=True)
class PopulationReport:
    """Aggregate over the simulated user population."""

    outcomes: Tuple[UserOutcome, ...]
    days: int

    @property
    def fraction_compromised(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.compromised for o in self.outcomes) / len(self.outcomes)

    def fraction_compromised_by_day(self) -> List[float]:
        """Cumulative fraction of users compromised by each day (index 0 =
        day 1) — the Johnson-style survival curve, inverted."""
        n = len(self.outcomes)
        curve = []
        for day in range(1, self.days + 1):
            hit = sum(
                1
                for o in self.outcomes
                if o.first_compromise_day is not None and o.first_compromise_day <= day
            )
            curve.append(hit / n if n else 0.0)
        return curve

    def median_days_to_compromise(self) -> Optional[float]:
        """Median time-to-first-compromise (None if under half were hit)."""
        days = sorted(
            o.first_compromise_day for o in self.outcomes if o.compromised
        )
        if len(days) * 2 < len(self.outcomes):
            return None
        return float(days[(len(self.outcomes) + 1) // 2 - 1])

    @property
    def mean_circuit_compromise_rate(self) -> float:
        built = sum(o.circuits_built for o in self.outcomes)
        hit = sum(o.compromised_circuits for o in self.outcomes)
        return hit / built if built else 0.0


def simulate_user_population(
    graph,
    consensus: Consensus,
    relay_asn: Callable[[str], int],
    client_asns: Sequence[int],
    destination_asns: Sequence[int],
    adversaries: Iterable[int],
    days: int = 31,
    circuits_per_day: int = 6,
    mode: ObservationMode = ObservationMode.EITHER,
    seed: int = 0,
    num_guards: int = 3,
    *,
    engine=None,
) -> PopulationReport:
    """Run the month for every client; returns the population report.

    Each client keeps a persistent guard set (rotating on Tor's schedule)
    and builds ``circuits_per_day`` circuits to random monitored
    destinations; a circuit is compromised when some colluding adversary
    AS observes both of its end segments under ``mode``.

    ``engine`` (keyword-only) is the
    :class:`~repro.asgraph.engine.RoutingEngine` the underlying
    :class:`SurveillanceModel` routes through; default the shared one.
    """
    if days < 1 or circuits_per_day < 1:
        raise ValueError("days and circuits_per_day must be positive")
    if not client_asns or not destination_asns:
        raise ValueError("need clients and destinations")
    adversary_set = frozenset(adversaries)
    if not adversary_set:
        raise ValueError("need at least one adversary AS")

    model = SurveillanceModel(graph, engine=engine)
    rng = random.Random(seed)
    outcomes: List[UserOutcome] = []

    with obs.span(
        "users.simulate",
        clients=len(client_asns),
        days=days,
        circuits_per_day=circuits_per_day,
    ) as sim_span:
        _simulate_clients(
            graph, consensus, relay_asn, client_asns, destination_asns,
            adversary_set, days, circuits_per_day, mode, seed, num_guards,
            model, rng, outcomes,
        )
        built = sum(o.circuits_built for o in outcomes)
        hit = sum(o.compromised_circuits for o in outcomes)
        sim_span.set(circuits_built=built, compromised=hit)
        obs.add("users.circuits_built", built)
        obs.add("users.circuits_compromised", hit)
    return PopulationReport(outcomes=tuple(outcomes), days=days)


def _simulate_clients(
    graph,
    consensus: Consensus,
    relay_asn: Callable[[str], int],
    client_asns: Sequence[int],
    destination_asns: Sequence[int],
    adversary_set: frozenset,
    days: int,
    circuits_per_day: int,
    mode: ObservationMode,
    seed: int,
    num_guards: int,
    model: SurveillanceModel,
    rng: random.Random,
    outcomes: List[UserOutcome],
) -> None:
    for client_asn in client_asns:
        client = TorClient(
            client_asn,
            consensus,
            rng=random.Random(seed * 100_003 + client_asn),
            num_guards=num_guards,
        )
        built = hit = 0
        first_day: Optional[int] = None
        for day in range(1, days + 1):
            now = (day - 1) * _DAY
            for _ in range(circuits_per_day):
                circuit = client.build_circuit(now)
                if circuit is None:
                    continue
                built += 1
                dest = rng.choice(destination_asns)
                compromised = model.compromised_by(
                    adversary_set,
                    client_asn,
                    relay_asn(circuit.guard.fingerprint),
                    relay_asn(circuit.exit.fingerprint),
                    dest,
                    mode,
                )
                if compromised:
                    hit += 1
                    if first_day is None:
                        first_day = day
        outcomes.append(
            UserOutcome(
                client_asn=client_asn,
                circuits_built=built,
                compromised_circuits=hit,
                first_compromise_day=first_day,
            )
        )
