"""BGP convergence and anonymity (§3.1, "Effect of BGP convergence").

The paper argues that path exploration during convergence "allows even
more far-flung ASes to get a (temporary) look at the client's traffic":
too briefly for timing analysis, but enough to *learn that the client uses
Tor* (and which guard) — the Harvard-bomb-threat inference.

This module quantifies that on the message-level simulator: run a churn
scenario against a guard's prefix, record every transient path each AS
held, and report who saw the client→guard traffic only transiently, and
for how long.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.analysis.prefixes import Prefix
from repro.asgraph.topology import ASGraph
from repro.bgpsim.simulator import BGPSimulator, SimulatorConfig

__all__ = ["ConvergenceExposure", "measure_convergence_exposure"]


@dataclass(frozen=True)
class ConvergenceExposure:
    """Who could observe a client's route to a guard, and how."""

    client_asn: int
    guard_prefix: Prefix
    #: ASes on the client's stable (final) path
    stable_observers: FrozenSet[int]
    #: ASes that appeared only on transient paths during convergence
    transient_observers: FrozenSet[int]
    #: transient observer -> total seconds it sat on the client's path
    transient_dwell: Dict[int, float]
    #: number of distinct paths the client held during the scenario
    paths_explored: int

    @property
    def num_transient(self) -> int:
        return len(self.transient_observers)

    def learns_tor_usage(self) -> FrozenSet[int]:
        """Every AS that ever saw the client→guard flow — each of them can
        record "this client talks to a known Tor guard", regardless of
        whether it held the path long enough for timing analysis."""
        return self.stable_observers | self.transient_observers

    def timing_capable(self, min_dwell: float = 300.0) -> FrozenSet[int]:
        """Observers with enough continuous visibility for timing analysis
        (the paper treats sub-5-minute visibility as insufficient)."""
        capable = set(self.stable_observers)
        capable.update(
            asn for asn, dwell in self.transient_dwell.items() if dwell >= min_dwell
        )
        return frozenset(capable)


def measure_convergence_exposure(
    graph: ASGraph,
    client_asn: int,
    guard_asn: int,
    guard_prefix: Prefix,
    num_events: int = 5,
    seed: int = 0,
    settle_time: float = 30.0,
) -> ConvergenceExposure:
    """Fail/recover links near the guard and measure the client's exposure.

    Each event takes one of the guard AS's provider links down, lets BGP
    reconverge, and brings it back.  The client's Loc-RIB journal then
    yields the stable vs transient observer split.
    """
    if client_asn not in graph or guard_asn not in graph:
        raise ValueError("client and guard ASes must exist in the topology")
    providers = sorted(graph.providers(guard_asn))
    if not providers:
        raise ValueError(f"guard AS{guard_asn} has no provider links to fail")

    rng = random.Random(seed)
    sim = BGPSimulator(graph, SimulatorConfig(seed=seed))
    sim.announce(guard_asn, guard_prefix)
    sim.run()

    for i in range(num_events):
        provider = providers[i % len(providers)]
        if len(providers) == 1 and i > 0:
            # single-homed guard: alternate failing a random upstream link
            upstream = providers[0]
            candidates = sorted(graph.providers(upstream))
            if candidates:
                peer = candidates[rng.randrange(len(candidates))]
                sim.fail_link(upstream, peer, at=sim.now + settle_time)
                sim.run()
                sim.recover_link(upstream, peer, at=sim.now + settle_time)
                sim.run()
                continue
        sim.fail_link(guard_asn, provider, at=sim.now + settle_time)
        sim.run()
        sim.recover_link(guard_asn, provider, at=sim.now + settle_time)
        sim.run()

    events = sim.paths_seen(client_asn, guard_prefix)
    final_path = sim.path(client_asn, guard_prefix) or ()
    stable = frozenset(final_path)

    dwell: Dict[int, float] = {}
    horizon = sim.now + settle_time
    for (event, nxt) in zip(events, list(events[1:]) + [None]):
        if event.path is None:
            continue
        end = nxt.time if nxt is not None else horizon
        span = max(0.0, end - event.time)
        for asn in set(event.path):
            dwell[asn] = dwell.get(asn, 0.0) + span

    transient = frozenset(dwell) - stable
    distinct_paths = len({e.path for e in events if e.path is not None})

    return ConvergenceExposure(
        client_asn=client_asn,
        guard_prefix=guard_prefix,
        stable_observers=stable,
        transient_observers=transient,
        transient_dwell={asn: dwell[asn] for asn in transient},
        paths_explored=distinct_paths,
    )
