"""Guard inference via congestion probing (the §3.2 precondition).

The hijack pipeline of §3.2 starts with: "the adversary can first use
existing attacks on Tor to infer what guard relay the connection uses
[19, 25, 26, 28]" — Murdoch-Danezis congestion probing and Mittal et
al.'s throughput fingerprinting.  This module implements the congestion
variant on the fluid bandwidth-sharing model:

- the adversary watches a target connection's throughput (it observes the
  destination, so it sees the server-side rate);
- it picks a candidate guard relay and modulates load on it in a known
  on/off pattern (building and tearing down probe circuits);
- if the target's throughput dips exactly when the candidate is loaded,
  the target's circuit shares that relay — the candidate is the guard.

Scoring uses the (negative) correlation between the probe schedule and
the observed rate; the true guard scores far above decoys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.asymmetric import pearson
from repro.traffic.fluid import FluidNetwork

__all__ = ["ProbeSchedule", "CongestionProbe", "GuardInferenceResult"]


@dataclass(frozen=True)
class ProbeSchedule:
    """An on/off load pattern: ``pattern[i]`` is 1 when probes are active."""

    pattern: Tuple[int, ...]
    probes_per_burst: int = 8

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("empty probe schedule")
        if any(v not in (0, 1) for v in self.pattern):
            raise ValueError("pattern must be 0/1")
        if self.probes_per_burst < 1:
            raise ValueError("need at least one probe circuit per burst")

    @classmethod
    def random_pattern(cls, length: int, rng: random.Random, probes_per_burst: int = 8) -> "ProbeSchedule":
        """A random balanced pattern (half on, half off) — unpredictable
        schedules defeat coincidental background fluctuations."""
        if length < 4:
            raise ValueError("pattern too short to balance")
        ones = length // 2
        values = [1] * ones + [0] * (length - ones)
        rng.shuffle(values)
        return cls(pattern=tuple(values), probes_per_burst=probes_per_burst)


@dataclass(frozen=True)
class GuardInferenceResult:
    """Candidate scores, best first.  Higher = stronger congestion echo."""

    scores: Tuple[Tuple[str, float], ...]

    @property
    def best(self) -> str:
        return self.scores[0][0]

    @property
    def margin(self) -> float:
        if len(self.scores) < 2:
            return self.scores[0][1]
        return self.scores[0][1] - self.scores[1][1]

    def rank_of(self, relay_id: str) -> int:
        for i, (candidate, _s) in enumerate(self.scores, start=1):
            if candidate == relay_id:
                return i
        raise KeyError(f"no candidate {relay_id!r}")


class CongestionProbe:
    """Runs the probing attack against a target circuit in a fluid network.

    The adversary controls probe clients (it can build circuits through
    any relay it likes) and observes only the *target's throughput* — not
    the target's circuit, which is the whole point of the attack.
    """

    def __init__(
        self,
        network: FluidNetwork,
        target_cid: str,
        rng: Optional[random.Random] = None,
    ) -> None:
        if target_cid not in network.circuits:
            raise ValueError(f"no target circuit {target_cid!r}")
        self.network = network
        self.target_cid = target_cid
        self.rng = rng if rng is not None else random.Random(0)

    def probe_candidate(self, relay_id: str, schedule: ProbeSchedule) -> float:
        """Run the schedule against one candidate; returns its score.

        Score = -corr(load_on, target_rate): positive when loading the
        candidate depresses the target's throughput.
        """
        rates: List[float] = []
        probe_ids: List[str] = []
        try:
            for step, active in enumerate(schedule.pattern):
                if active and not probe_ids:
                    for i in range(schedule.probes_per_burst):
                        pid = f"__probe-{relay_id}-{step}-{i}"
                        self.network.add_circuit(pid, [relay_id])
                        probe_ids.append(pid)
                elif not active and probe_ids:
                    for pid in probe_ids:
                        self.network.remove_circuit(pid)
                    probe_ids.clear()
                rates.append(self.network.rate_of(self.target_cid))
        finally:
            for pid in probe_ids:
                self.network.remove_circuit(pid)
        return -pearson([float(v) for v in schedule.pattern], rates)

    def infer_guard(
        self,
        candidates: Sequence[str],
        schedule_length: int = 16,
        probes_per_burst: int = 8,
    ) -> GuardInferenceResult:
        """Probe every candidate with an independent random schedule."""
        if not candidates:
            raise ValueError("no candidate relays")
        scores = []
        for relay_id in candidates:
            schedule = ProbeSchedule.random_pattern(
                schedule_length, self.rng, probes_per_burst
            )
            scores.append((relay_id, self.probe_candidate(relay_id, schedule)))
        scores.sort(key=lambda item: (-item[1], item[0]))
        return GuardInferenceResult(scores=tuple(scores))
