"""Attack planning against the Tor relay population (§3.2).

Puts the pieces together from the adversary's point of view:

- **target selection**: Tor clients pick relays with probability
  proportional to bandwidth, so the prefixes hosting the highest-weight
  guard/exit capacity are the highest-value interception targets;
- **attack evaluation**: run a hijack/interception against a target prefix
  on the AS topology and translate the capture set into Tor-level damage —
  which client ASes are exposed (anonymity set), and what fraction of all
  Tor traffic the adversary can now correlate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.prefixes import Prefix
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.bgpsim.attacks import (
    AttackKind,
    HijackResult,
    simulate_hijack,
    sweep_hijacks,
)
from repro.tor.consensus import Position
from repro.tor.generator import SyntheticTorNetwork

__all__ = ["PrefixValue", "TargetRanking", "AttackOutcome", "AttackPlanner"]


@dataclass(frozen=True)
class PrefixValue:
    """Interception value of one Tor prefix for one circuit position."""

    prefix: Prefix
    origin_asn: int
    #: sum of position-weighted bandwidth of the relays inside
    weight: float
    #: fraction of total position weight (= probability a random circuit
    #: uses a relay in this prefix for that position)
    selection_probability: float
    num_relays: int


@dataclass(frozen=True)
class TargetRanking:
    """Tor prefixes ranked by selection probability for a position."""

    position: str
    targets: Tuple[PrefixValue, ...]

    def top(self, k: int) -> Tuple[PrefixValue, ...]:
        return self.targets[:k]

    def coverage(self, k: int) -> float:
        """Selection probability covered by intercepting the top-k prefixes."""
        return sum(t.selection_probability for t in self.top(k))


@dataclass(frozen=True)
class AttackOutcome:
    """A hijack result translated into Tor-level damage."""

    hijack: HijackResult
    target: PrefixValue
    #: client ASes whose traffic towards the target is captured
    exposed_client_ases: FrozenSet[int]
    #: |exposed| / |clients| — the §3.2 anonymity-set reduction
    anonymity_set_fraction: float


class AttackPlanner:
    """An AS-level adversary planning attacks on a Tor deployment.

    All hijack simulations route through ``engine`` (default: the shared
    :class:`~repro.asgraph.engine.RoutingEngine`), so sweeping several
    attack kinds over the same targets reuses the underlying outcomes.
    """

    def __init__(
        self,
        graph: ASGraph,
        network: SyntheticTorNetwork,
        *,
        engine: Optional[RoutingEngine] = None,
    ) -> None:
        self.graph = graph
        self.network = network
        self.engine = engine if engine is not None else shared_engine()

    # -- target selection -----------------------------------------------------

    def rank_targets(self, position: str) -> TargetRanking:
        """Rank Tor prefixes by aggregate selection weight for ``position``."""
        consensus = self.network.consensus
        weights: Dict[Prefix, float] = {}
        counts: Dict[Prefix, int] = {}
        for relay in consensus.relays:
            w = consensus.position_weight(relay, position)
            if w <= 0:
                continue
            prefix = self.network.relay_prefix[relay.fingerprint]
            weights[prefix] = weights.get(prefix, 0.0) + w
            counts[prefix] = counts.get(prefix, 0) + 1
        total = sum(weights.values())
        if total <= 0:
            raise ValueError(f"no selectable relays for position {position!r}")
        targets = tuple(
            sorted(
                (
                    PrefixValue(
                        prefix=prefix,
                        origin_asn=self.network.prefix_origins[prefix],
                        weight=weight,
                        selection_probability=weight / total,
                        num_relays=counts[prefix],
                    )
                    for prefix, weight in weights.items()
                ),
                key=lambda t: (-t.weight, str(t.prefix)),
            )
        )
        return TargetRanking(position=position, targets=targets)

    # -- attack evaluation --------------------------------------------------------

    def attack(
        self,
        attacker_asn: int,
        target: PrefixValue,
        kind: AttackKind = AttackKind.INTERCEPTION,
        client_ases: Optional[Sequence[int]] = None,
    ) -> AttackOutcome:
        """Run one attack against a target prefix and score the damage."""
        hijack = simulate_hijack(
            self.graph,
            victim=target.origin_asn,
            attacker=attacker_asn,
            kind=kind,
            engine=self.engine,
        )
        clients = list(client_ases) if client_ases is not None else sorted(self.graph.ases)
        exposed = frozenset(asn for asn in clients if asn in hijack.capture_set)
        return AttackOutcome(
            hijack=hijack,
            target=target,
            exposed_client_ases=exposed,
            anonymity_set_fraction=len(exposed) / len(clients) if clients else 0.0,
        )

    def sweep(
        self,
        attacker_asn: int,
        position: str,
        k: int,
        kind: AttackKind = AttackKind.INTERCEPTION,
        client_ases: Optional[Sequence[int]] = None,
        *,
        jobs: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ) -> List[AttackOutcome]:
        """Attack the top-``k`` prefixes for a position, best targets first.

        The hijacks run through :func:`repro.bgpsim.attacks.sweep_hijacks`
        (one runner trial per target), so ``jobs``/``checkpoint``/
        ``resume`` shard and persist the sweep.
        """
        with obs.span(
            "attack.sweep",
            attacker=attacker_asn,
            position=str(position),
            k=k,
            kind=kind.value,
        ) as sweep_span:
            ranking = self.rank_targets(position)
            targets = [
                target
                for target in ranking.top(k)
                # the adversary already hosts relays in its own prefixes
                if target.origin_asn != attacker_asn
            ]
            hijacks = sweep_hijacks(
                self.graph,
                attacker_asn,
                [target.origin_asn for target in targets],
                kind,
                engine=self.engine,
                jobs=jobs,
                checkpoint=checkpoint,
                resume=resume,
            )
            clients = (
                list(client_ases)
                if client_ases is not None
                else sorted(self.graph.ases)
            )
            outcomes = []
            for target, hijack in zip(targets, hijacks):
                exposed = frozenset(
                    asn for asn in clients if asn in hijack.capture_set
                )
                outcomes.append(
                    AttackOutcome(
                        hijack=hijack,
                        target=target,
                        exposed_client_ases=exposed,
                        anonymity_set_fraction=(
                            len(exposed) / len(clients) if clients else 0.0
                        ),
                    )
                )
            sweep_span.set(targets=len(outcomes))
            obs.add("attack.hijacks", len(outcomes))
        return outcomes

    def surveillance_coverage(
        self,
        attacker_asn: int,
        guard_k: int,
        exit_k: int,
        kind: AttackKind = AttackKind.INTERCEPTION,
    ) -> Dict[str, float]:
        """General surveillance of §3.2's closing paragraph: intercept the
        top guard and exit prefixes and estimate the fraction of Tor
        circuits with *both* ends observed.

        A circuit is correlatable when (a) its guard lives in one of the
        intercepted guard prefixes and the client's route to it is
        captured, and (b) its exit lives in an intercepted exit prefix
        (the exit-side flow to the destination transits the adversary
        because the destination-side interception captures it).  Under
        bandwidth-proportional selection the two choices are independent,
        so coverage multiplies.
        """
        with obs.span(
            "attack.surveillance_coverage",
            attacker=attacker_asn,
            guard_k=guard_k,
            exit_k=exit_k,
        ):
            return self._surveillance_coverage(attacker_asn, guard_k, exit_k, kind)

    def _surveillance_coverage(
        self,
        attacker_asn: int,
        guard_k: int,
        exit_k: int,
        kind: AttackKind,
    ) -> Dict[str, float]:
        guard_cov = 0.0
        for outcome in self.sweep(attacker_asn, Position.GUARD, guard_k, kind):
            if outcome.hijack.kind is AttackKind.INTERCEPTION and not outcome.hijack.interception_feasible:
                continue
            guard_cov += (
                outcome.target.selection_probability * outcome.hijack.capture_fraction
            )
        exit_cov = 0.0
        for outcome in self.sweep(attacker_asn, Position.EXIT, exit_k, kind):
            if outcome.hijack.kind is AttackKind.INTERCEPTION and not outcome.hijack.interception_feasible:
                continue
            exit_cov += (
                outcome.target.selection_probability * outcome.hijack.capture_fraction
            )
        return {
            "guard_coverage": guard_cov,
            "exit_coverage": exit_cov,
            "circuit_coverage": guard_cov * exit_cov,
        }
