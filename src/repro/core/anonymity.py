"""The analytical anonymity model of §3.1.

With ``f`` the probability that any given AS is malicious (colluding
adversaries pooled together), a client talking to one guard over paths
that traverse ``x`` distinct ASes is observed with probability
``1 - (1 - f)^x`` — the chance at least one on-path AS is malicious.  With
``l`` guards the exponent becomes ``l*x``.  The paper's point: BGP
temporal dynamics inflate ``x``, and the guard mechanism *multiplies* the
damage by ``l`` instead of containing it.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "compromise_probability",
    "guard_amplification",
    "expected_compromise_time",
    "compromise_curve",
    "anonymity_set_entropy",
]


def compromise_probability(f: float, x: int, l: int = 1) -> float:
    """P(at least one on-path AS is malicious) = ``1 - (1-f)^(l*x)``.

    Parameters
    ----------
    f: per-AS compromise probability, in [0, 1].
    x: distinct ASes on the client↔guard paths (over time).
    l: number of guard relays in the client's guard set.

    >>> round(compromise_probability(0.05, 4), 4)
    0.1855
    >>> compromise_probability(0.05, 4, l=3) > compromise_probability(0.05, 4)
    True
    """
    _check_f(f)
    if x < 0 or l < 1:
        raise ValueError("x must be >= 0 and l >= 1")
    return 1.0 - (1.0 - f) ** (l * x)


def guard_amplification(f: float, x: int, l: int) -> float:
    """How much worse ``l`` guards are than one: P(l guards) / P(1 guard)."""
    single = compromise_probability(f, x, 1)
    if single == 0.0:
        return 1.0
    return compromise_probability(f, x, l) / single


def compromise_curve(f: float, xs: Iterable[int], l: int = 1) -> List[Tuple[int, float]]:
    """``(x, P(compromise))`` points for a sweep over path diversity."""
    return [(x, compromise_probability(f, x, l)) for x in xs]


def expected_compromise_time(
    f: float,
    x_over_time: Sequence[int],
    l: int = 1,
) -> Tuple[List[float], float]:
    """Compromise probability trajectory and the first index crossing 50%.

    ``x_over_time[t]`` is the cumulative number of distinct ASes seen on
    the client↔guard paths up to epoch ``t`` (monotone non-decreasing,
    e.g. from :func:`repro.core.temporal.exposure_over_time`).  Returns the
    per-epoch probabilities and the first epoch index where the
    probability reaches 0.5 (``math.inf`` if never).
    """
    _check_f(f)
    probabilities: List[float] = []
    previous = 0
    for x in x_over_time:
        if x < previous:
            raise ValueError("x_over_time must be monotone non-decreasing")
        previous = x
        probabilities.append(compromise_probability(f, x, l))
    crossing = next(
        (float(i) for i, p in enumerate(probabilities) if p >= 0.5), math.inf
    )
    return probabilities, crossing


def anonymity_set_entropy(weights: Sequence[float]) -> float:
    """Shannon entropy (bits) of a candidate-client distribution.

    After a prefix hijack the adversary learns the set of client addresses
    connected to a guard (§3.2's "anonymity set"); entropy quantifies how
    incriminating that reduced set is — 0 bits means fully identified.
    """
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    entropy = 0.0
    for w in weights:
        if w < 0:
            raise ValueError("weights must be non-negative")
        if w == 0:
            continue
        p = w / total
        entropy -= p * math.log2(p)
    return entropy


def _check_f(f: float) -> None:
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"f must be a probability, got {f}")
