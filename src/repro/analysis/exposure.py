"""AS-level exposure over time: the Figure 3 (right) pipeline.

§4: "we computed how many additional ASes were seeing traffic directed to
a Tor prefix as a result of BGP temporal dynamics.  As baseline, we
considered the first path that was used at the beginning of the month and
computed the number of extra ASes that were crossed over the month.  To be
fair, we did not consider an AS if it was crossed for less than 5 minutes."

The same machinery also feeds §3.1's anonymity model: the number of
distinct ASes ``x`` observed on the paths between a client and a guard is
what drives the compromise probability ``1 - (1 - f)^(l*x)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import SessionId, UpdateStream

__all__ = ["ExposureConfig", "PrefixExposure", "prefix_exposure", "extra_as_samples", "as_dwell_times"]

#: the paper's dwell threshold: ASes on-path for less than this are ignored
DEFAULT_DWELL_THRESHOLD = 300.0


@dataclass(frozen=True)
class ExposureConfig:
    """Dwell accounting options."""

    dwell_threshold: float = DEFAULT_DWELL_THRESHOLD
    #: "total": sum an AS's on-path time across all its intervals (default);
    #: "interval": require a single continuous interval above the threshold
    mode: str = "total"

    def __post_init__(self) -> None:
        if self.dwell_threshold < 0:
            raise ValueError("dwell_threshold must be non-negative")
        if self.mode not in ("total", "interval"):
            raise ValueError(f"unknown dwell mode {self.mode!r}")


@dataclass(frozen=True)
class PrefixExposure:
    """Exposure of one prefix as seen from one session."""

    session: SessionId
    prefix: Prefix
    #: ASes on the first path of the measurement window
    baseline_ases: FrozenSet[int]
    #: ASes that later appeared and passed the dwell filter, minus baseline
    extra_ases: FrozenSet[int]
    #: all ASes that ever appeared (no dwell filter), minus baseline
    extra_ases_unfiltered: FrozenSet[int]

    @property
    def num_extra(self) -> int:
        return len(self.extra_ases)

    @property
    def total_ases(self) -> int:
        """Distinct dwell-qualified ASes including the baseline — the ``x``
        of the §3.1 compromise model."""
        return len(self.baseline_ases | self.extra_ases)


def as_dwell_times(
    stream: UpdateStream, prefix: Prefix, horizon: float
) -> Dict[int, float]:
    """Total time each AS spent on the selected path for ``prefix``.

    The path in force between two updates is the earlier one; the last
    path extends to ``horizon`` (the end of the measurement window).
    Withdrawn periods contribute to no AS.
    """
    timeline = stream.path_timeline(prefix)
    dwell: Dict[int, float] = {}
    for (start, path), (end, _next) in zip(timeline, timeline[1:] + [(horizon, None)]):
        if path is None:
            continue
        span = max(0.0, min(end, horizon) - start)
        for asn in set(path):
            dwell[asn] = dwell.get(asn, 0.0) + span
    return dwell


def _interval_qualified(
    stream: UpdateStream, prefix: Prefix, horizon: float, threshold: float
) -> Set[int]:
    """ASes with at least one single continuous on-path interval >= threshold.

    Intervals are clamped to the measurement window: time past ``horizon``
    contributes nothing, whether the interval closes at an update
    timestamped after ``horizon`` or is still open when the window ends —
    mirroring the ``max(0.0, min(end, horizon) - start)`` accounting of
    :func:`as_dwell_times`.
    """
    timeline = stream.path_timeline(prefix)
    current_since: Dict[int, float] = {}
    qualified: Set[int] = set()
    previous: FrozenSet[int] = frozenset()
    for (start, path), (end, _next) in zip(timeline, timeline[1:] + [(horizon, None)]):
        ases = frozenset(path or ())
        for asn in ases - previous:
            current_since[asn] = start
        for asn in previous - ases:
            since = current_since.pop(asn, start)
            if max(0.0, min(start, horizon) - since) >= threshold:
                qualified.add(asn)
        previous = ases
    for asn, since in current_since.items():
        if max(0.0, horizon - since) >= threshold:
            qualified.add(asn)
    return qualified


def prefix_exposure(
    stream: UpdateStream,
    prefix: Prefix,
    horizon: float,
    config: ExposureConfig = ExposureConfig(),
) -> Optional[PrefixExposure]:
    """Exposure record for one (session, prefix); None if never announced."""
    timeline = stream.path_timeline(prefix)
    first_path = next((path for _t, path in timeline if path is not None), None)
    if first_path is None:
        return None
    baseline = frozenset(first_path)

    if config.mode == "total":
        dwell = as_dwell_times(stream, prefix, horizon)
        qualified = {asn for asn, t in dwell.items() if t >= config.dwell_threshold}
    else:
        qualified = _interval_qualified(stream, prefix, horizon, config.dwell_threshold)

    ever: Set[int] = set()
    for _t, path in timeline:
        if path:
            ever.update(path)

    return PrefixExposure(
        session=stream.session,
        prefix=prefix,
        baseline_ases=baseline,
        extra_ases=frozenset(qualified - baseline),
        extra_ases_unfiltered=frozenset(ever - baseline),
    )


def extra_as_samples(
    streams: Iterable[UpdateStream],
    tor_prefixes: FrozenSet[Prefix],
    horizon: float,
    config: ExposureConfig = ExposureConfig(),
) -> List[int]:
    """The Figure 3 (right) sample set: extra-AS counts per (session, Tor
    prefix) pair that carried the prefix."""
    samples: List[int] = []
    for stream in streams:
        carried = stream.prefixes() & tor_prefixes
        for prefix in carried:
            exposure = prefix_exposure(stream, prefix, horizon, config)
            if exposure is not None:
                samples.append(exposure.num_extra)
    return samples
