"""Distribution helpers (CDF, CCDF, quantiles) shared by every figure.

The paper reports its measurement results as Complementary Cumulative
Distribution Functions (CCDFs, Figure 3) and cumulative coverage curves
(Figure 2 left).  These helpers compute those curves from raw samples and
expose point queries so benchmarks can assert on specific percentiles
("more than 50% of Tor prefixes saw a ratio greater than one").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["Ccdf", "cdf", "ccdf", "quantile", "cumulative_share"]


def quantile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0 <= q <= 1) using linear interpolation.

    Matches numpy's default ("linear") method so results agree with any
    numpy-based post-processing.
    """
    if not samples:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lower = math.floor(pos)
    upper = math.ceil(pos)
    if lower == upper or ordered[lower] == ordered[upper]:
        return float(ordered[lower])
    frac = pos - lower
    value = ordered[lower] * (1.0 - frac) + ordered[upper] * frac
    # interpolation arithmetic must never escape the bracketing samples
    return float(min(max(value, ordered[lower]), ordered[upper]))


def cdf(samples: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as a list of ``(value, P[X <= value])`` points."""
    ordered = sorted(samples)
    n = len(ordered)
    if n == 0:
        return []
    points: List[Tuple[float, float]] = []
    for i, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, i / n)
        else:
            points.append((value, i / n))
    return points


def ccdf(samples: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CCDF as a list of ``(value, P[X >= value])`` points.

    The paper plots CCDFs with the y-axis as a percentage of prefixes whose
    statistic is *at least* x; we use the same ``>=`` convention.
    """
    ordered = sorted(samples)
    n = len(ordered)
    if n == 0:
        return []
    points: List[Tuple[float, float]] = []
    i = 0
    while i < n:
        value = ordered[i]
        points.append((value, (n - i) / n))
        while i < n and ordered[i] == value:
            i += 1
    return points


@dataclass(frozen=True)
class Ccdf:
    """A queryable empirical CCDF.

    >>> c = Ccdf.from_samples([1, 2, 2, 5])
    >>> c.fraction_at_least(2)
    0.75
    >>> c.fraction_greater(1)
    0.75
    """

    points: Tuple[Tuple[float, float], ...]
    n: int
    _sorted: Tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Ccdf":
        ordered = tuple(sorted(samples))
        return cls(points=tuple(ccdf(ordered)), n=len(ordered), _sorted=ordered)

    def fraction_at_least(self, x: float) -> float:
        """P[X >= x]."""
        if self.n == 0:
            raise ValueError("empty CCDF")
        count = self.n - _bisect_left(self._sorted, x)
        return count / self.n

    def fraction_greater(self, x: float) -> float:
        """P[X > x]."""
        if self.n == 0:
            raise ValueError("empty CCDF")
        count = self.n - _bisect_right(self._sorted, x)
        return count / self.n

    def value_at_fraction(self, fraction: float) -> float:
        """Smallest value v such that P[X >= v] <= fraction (tail threshold)."""
        if self.n == 0:
            raise ValueError("empty CCDF")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        for value, frac in self.points:
            if frac <= fraction:
                return value
        return self._sorted[-1]

    def median(self) -> float:
        return quantile(self._sorted, 0.5)


def cumulative_share(weights: Iterable[float]) -> List[float]:
    """Cumulative share of a total, largest contributors first.

    Used for Figure 2 (left): ``cumulative_share(relays_per_as.values())[k-1]``
    is the fraction of relays hosted by the top-``k`` ASes.
    """
    ordered = sorted((float(w) for w in weights), reverse=True)
    total = sum(ordered)
    if total <= 0:
        raise ValueError("cumulative_share requires a positive total weight")
    shares: List[float] = []
    running = 0.0
    for w in ordered:
        running += w
        shares.append(running / total)
    return shares


def _bisect_left(ordered: Sequence[float], x: float) -> int:
    lo, hi = 0, len(ordered)
    while lo < hi:
        mid = (lo + hi) // 2
        if ordered[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(ordered: Sequence[float], x: float) -> int:
    lo, hi = 0, len(ordered)
    while lo < hi:
        mid = (lo + hi) // 2
        if ordered[mid] <= x:
            lo = mid + 1
        else:
            hi = mid
    return lo
