"""Dependency-free ASCII rendering of the paper's figure types.

The repository runs in environments without plotting libraries, so the
CLI and examples render the reproduced figures as text: scatter/step
curves for CCDFs (Figure 3) and multi-series line plots for the
cumulative byte curves (Figure 2 right).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["plot_xy", "plot_ccdf", "plot_series"]

_GLYPHS = "ox+*#@"


def plot_xy(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 16,
    logx: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render one curve as an ASCII scatter plot."""
    return plot_series([points], width=width, height=height, logx=logx,
                       title=title, xlabel=xlabel, ylabel=ylabel)


def plot_ccdf(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 16,
    logx: bool = True,
    title: str = "CCDF",
) -> str:
    """Render a CCDF (fractions as percentages, optionally log-x)."""
    scaled = [(x, 100.0 * y) for x, y in points]
    return plot_xy(
        scaled, width=width, height=height, logx=logx,
        title=title, xlabel="x", ylabel="%>=x",
    )


def plot_series(
    series: Sequence[Sequence[Tuple[float, float]]],
    labels: Optional[Sequence[str]] = None,
    width: int = 60,
    height: int = 16,
    logx: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render several curves on shared axes; one glyph per series."""
    if not series or all(not s for s in series):
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("plot area too small")

    def tx(x: float) -> float:
        if logx:
            if x <= 0:
                raise ValueError("log-x plot requires positive x values")
            return math.log10(x)
        return x

    xs = [tx(x) for s in series for x, _y in s]
    ys = [y for s in series for _x, y in s]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, points in enumerate(series):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in points:
            col = int((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_value = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{y_value:10.2f} |" + "".join(row))
    x_left = 10 ** x_lo if logx else x_lo
    x_right = 10 ** x_hi if logx else x_hi
    lines.append(" " * 11 + "+" + "-" * width)
    axis = f"{x_left:.3g}"
    pad = width - len(axis) - len(f"{x_right:.3g}")
    lines.append(" " * 12 + axis + " " * max(1, pad) + f"{x_right:.3g}")
    footer = []
    if xlabel:
        footer.append(f"x: {xlabel}" + (" (log)" if logx else ""))
    if ylabel:
        footer.append(f"y: {ylabel}")
    if labels:
        footer.append("series: " + ", ".join(
            f"{_GLYPHS[i % len(_GLYPHS)]}={label}" for i, label in enumerate(labels)
        ))
    if footer:
        lines.append(" " * 12 + "; ".join(footer))
    return "\n".join(lines)
