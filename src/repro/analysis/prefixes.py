"""IPv4 prefixes and longest-prefix-match tries.

The paper maps every Tor relay to the *most specific* BGP prefix containing
its IP address ("Tor prefixes", §4).  The authors used public BGP tables for
that mapping; here the prefixes come from the simulated BGP RIBs, and the
mapping itself is a classic binary-trie longest-prefix match, equivalent to
what ``pyasn`` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Prefix",
    "PrefixTrie",
    "parse_ip",
    "format_ip",
    "map_relays_to_prefixes",
]

_MAX_BITS = 32
_ALL_ONES = 0xFFFFFFFF


def parse_ip(text: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer.

    >>> parse_ip("78.46.0.1")
    1311244289
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    if not 0 <= value <= _ALL_ONES:
        raise ValueError(f"not a 32-bit address: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix (network address + mask length).

    Instances are normalised: host bits below the mask are zeroed, so two
    prefixes describing the same address block always compare equal.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= _MAX_BITS:
            raise ValueError(f"prefix length out of range: {self.length}")
        mask = self.mask
        if self.network & ~mask & _ALL_ONES:
            object.__setattr__(self, "network", self.network & mask)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation.

        >>> Prefix.parse("78.46.0.0/15")
        Prefix.parse('78.46.0.0/15')
        """
        try:
            addr, _, length = text.partition("/")
            return cls(parse_ip(addr), int(length))
        except ValueError as exc:
            raise ValueError(f"invalid prefix {text!r}: {exc}") from None

    @property
    def mask(self) -> int:
        """The netmask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (_ALL_ONES << (_MAX_BITS - self.length)) & _ALL_ONES

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by this prefix."""
        return 1 << (_MAX_BITS - self.length)

    def contains_ip(self, ip: int) -> bool:
        """True if the 32-bit address ``ip`` falls inside this prefix."""
        return (ip & self.mask) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and self.contains_ip(other.network)

    def subprefix(self, length: int, index: int = 0) -> "Prefix":
        """Return the ``index``-th sub-prefix of the given (longer) length.

        Used by the attack module to craft more-specific hijack announcements.
        """
        if length < self.length:
            raise ValueError("subprefix must not be shorter than parent")
        extra = length - self.length
        if not 0 <= index < (1 << extra):
            raise ValueError(f"subprefix index {index} out of range for +{extra} bits")
        return Prefix(self.network | (index << (_MAX_BITS - length)), length)

    def nth_ip(self, index: int) -> int:
        """The ``index``-th address inside the prefix (0 = network address)."""
        if not 0 <= index < self.num_addresses:
            raise ValueError(f"address index {index} out of range")
        return self.network + index

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix.parse({str(self)!r})"


@dataclass
class _TrieNode:
    children: List[Optional["_TrieNode"]] = field(default_factory=lambda: [None, None])
    value: object = None
    has_value: bool = False


class PrefixTrie:
    """Binary trie mapping :class:`Prefix` keys to arbitrary values.

    Supports exact lookups, longest-prefix match on addresses, and
    most-specific-covering-prefix queries — everything needed to map relay
    IPs onto the announced BGP prefixes.
    """

    def __init__(self, items: Optional[Mapping[Prefix, object]] = None) -> None:
        self._root = _TrieNode()
        self._size = 0
        if items:
            for prefix, value in items.items():
                self.insert(prefix, value)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._walk(prefix)
        return node is not None and node.has_value

    def insert(self, prefix: Prefix, value: object = None) -> None:
        """Insert ``prefix`` (replacing any existing value)."""
        node = self._root
        for bit in _bits(prefix):
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.has_value = True
        node.value = value

    def get(self, prefix: Prefix, default: object = None) -> object:
        """Exact-match lookup; returns ``default`` when absent."""
        node = self._walk(prefix)
        if node is not None and node.has_value:
            return node.value
        return default

    def remove(self, prefix: Prefix) -> bool:
        """Remove ``prefix``; returns True if it was present."""
        node = self._walk(prefix)
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        return True

    def longest_match(self, ip: int) -> Optional[Tuple[Prefix, object]]:
        """Most specific stored prefix containing ``ip``, with its value."""
        node = self._root
        best: Optional[Tuple[int, object]] = None
        network = 0
        depth = 0
        if node.has_value:
            best = (0, node.value)
        for shift in range(_MAX_BITS - 1, -1, -1):
            bit = (ip >> shift) & 1
            child = node.children[bit]
            if child is None:
                break
            network = (network << 1) | bit
            depth += 1
            node = child
            if node.has_value:
                best = (depth, node.value)
        if best is None:
            return None
        length, value = best
        return Prefix((ip >> (_MAX_BITS - length) << (_MAX_BITS - length)) if length else 0, length), value

    def covering_prefixes(self, ip: int) -> List[Tuple[Prefix, object]]:
        """All stored prefixes containing ``ip``, least specific first."""
        out: List[Tuple[Prefix, object]] = []
        node = self._root
        length = 0
        if node.has_value:
            out.append((Prefix(0, 0), node.value))
        for shift in range(_MAX_BITS - 1, -1, -1):
            bit = (ip >> shift) & 1
            child = node.children[bit]
            if child is None:
                break
            length += 1
            node = child
            if node.has_value:
                mask_shift = _MAX_BITS - length
                out.append((Prefix((ip >> mask_shift) << mask_shift, length), node.value))
        return out

    def items(self) -> Iterator[Tuple[Prefix, object]]:
        """Iterate over all stored ``(prefix, value)`` pairs (DFS order)."""
        stack: List[Tuple[_TrieNode, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, length = stack.pop()
            if node.has_value:
                yield Prefix(network << (_MAX_BITS - length) if length else 0, length), node.value
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, (network << 1) | bit, length + 1))

    def _walk(self, prefix: Prefix) -> Optional[_TrieNode]:
        node = self._root
        for bit in _bits(prefix):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node


def _bits(prefix: Prefix) -> Iterator[int]:
    for shift in range(_MAX_BITS - 1, _MAX_BITS - 1 - prefix.length, -1):
        yield (prefix.network >> shift) & 1


def map_relays_to_prefixes(
    relay_ips: Iterable[Tuple[str, str]],
    announced: Mapping[Prefix, int],
) -> Dict[str, Tuple[Prefix, int]]:
    """Map relays to their most specific announced BGP prefix.

    Parameters
    ----------
    relay_ips:
        Iterable of ``(fingerprint, dotted_quad_ip)`` pairs.
    announced:
        Mapping of announced prefixes to their origin AS number.

    Returns
    -------
    dict
        ``fingerprint -> (tor_prefix, origin_asn)``.  Relays whose address is
        covered by no announced prefix are omitted (the paper drops them too).
    """
    trie = PrefixTrie()
    for prefix, origin in announced.items():
        trie.insert(prefix, origin)
    result: Dict[str, Tuple[Prefix, int]] = {}
    for fingerprint, ip_text in relay_ips:
        match = trie.longest_match(parse_ip(ip_text))
        if match is not None:
            prefix, origin = match
            result[fingerprint] = (prefix, int(origin))  # type: ignore[arg-type]
    return result
