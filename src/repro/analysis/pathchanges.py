"""Path-change counting over collector streams (Figure 3, left).

§4: "We computed the number of path changes seen by each BGP prefix on
each session.  We define a path change as a change in the set of ASes
crossed to reach a BGP prefix (as indicated by the AS-PATH) between two
subsequent BGP UPDATEs."  The figure then plots, per (session, Tor prefix),
the ratio of that count to the *median* count over all prefixes on the
same session.

Conventions (documented because the paper leaves them implicit):

- a "change" compares AS *sets*, so prepending-only changes don't count;
- withdrawals carry no AS-PATH; a withdraw followed by a re-announcement
  of the identical path therefore does not count as a change;
- the first announcement of a prefix is not a change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional

from repro.analysis.prefixes import Prefix
from repro.analysis.stats import quantile
from repro.bgpsim.collector import SessionId, UpdateStream

__all__ = [
    "count_path_changes",
    "path_change_table",
    "tor_ratio_samples",
    "PathChangeStats",
]


def count_path_changes(stream: UpdateStream, prefix: Prefix) -> int:
    """Number of AS-set changes for ``prefix`` on this session."""
    changes = 0
    last_set: Optional[FrozenSet[int]] = None
    for record in stream.records:
        if record.prefix != prefix or record.is_withdrawal:
            continue
        as_set = frozenset(record.as_path or ())
        if last_set is not None and as_set != last_set:
            changes += 1
        last_set = as_set
    return changes


def path_change_table(stream: UpdateStream) -> Dict[Prefix, int]:
    """Path-change counts for every prefix on the session, in one pass."""
    changes: Dict[Prefix, int] = {}
    last_set: Dict[Prefix, FrozenSet[int]] = {}
    for record in stream.records:
        if record.is_withdrawal:
            continue
        as_set = frozenset(record.as_path or ())
        previous = last_set.get(record.prefix)
        if previous is not None and previous != as_set:
            changes[record.prefix] = changes.get(record.prefix, 0) + 1
        elif record.prefix not in changes:
            changes.setdefault(record.prefix, 0)
        last_set[record.prefix] = as_set
    return changes


@dataclass(frozen=True)
class PathChangeStats:
    """Per-session summary used by the Figure 3 (left) pipeline."""

    session: SessionId
    #: path-change count per prefix (all prefixes on the session)
    counts: Mapping[Prefix, int]
    #: median count over all prefixes on this session
    median: float

    def ratio(self, prefix: Prefix) -> Optional[float]:
        """Tor-prefix count divided by the session median (None if absent
        or the median is zero — the paper's ratio is undefined there)."""
        count = self.counts.get(prefix)
        if count is None or self.median <= 0:
            return None
        return count / self.median


def session_stats(stream: UpdateStream) -> PathChangeStats:
    """Compute per-prefix counts and the session median."""
    counts = path_change_table(stream)
    median = quantile(list(counts.values()), 0.5) if counts else 0.0
    return PathChangeStats(session=stream.session, counts=counts, median=median)


def tor_ratio_samples(
    streams: Iterable[UpdateStream],
    tor_prefixes: FrozenSet[Prefix],
    min_median: float = 0.5,
) -> List[float]:
    """The Figure 3 (left) sample set: one ratio per (session, Tor prefix).

    Sessions whose median change count is below ``min_median`` (e.g. a
    session where most prefixes never changed) are skipped, as the ratio
    would be undefined; the paper implicitly does the same by dividing by
    the median.
    """
    samples: List[float] = []
    for stream in streams:
        stats = session_stats(stream)
        if stats.median < min_median:
            continue
        for prefix in stats.counts:
            if prefix not in tor_prefixes:
                continue
            ratio = stats.ratio(prefix)
            if ratio is not None:
                samples.append(ratio)
    return samples
