"""Measurement toolkit: prefixes, path changes, exposure, statistics."""

from repro.analysis.prefixes import Prefix, PrefixTrie, map_relays_to_prefixes
from repro.analysis.stats import Ccdf, ccdf, cdf, quantile

__all__ = [
    "Prefix",
    "PrefixTrie",
    "map_relays_to_prefixes",
    "Ccdf",
    "ccdf",
    "cdf",
    "quantile",
]
