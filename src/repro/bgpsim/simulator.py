"""The message-level, event-driven BGP simulator.

Delivers UPDATE messages between :class:`~repro.bgpsim.node.BGPNode`
instances over per-link FIFO channels with configurable delays.  Because
messages race each other across different links, the simulator exhibits
*path exploration* during convergence — the transient routes §3.1 argues
give "far-flung ASes a temporary look at the client's traffic".

Every Loc-RIB change is journalled per (AS, prefix), so analyses can ask
both for the final stable path and for every transient path an AS held,
with timestamps.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.prefixes import Prefix
from repro.asgraph.topology import ASGraph
from repro.bgpsim.messages import Community, UpdateMessage
from repro.bgpsim.node import BGPNode, Outbox

__all__ = ["SimulatorConfig", "BGPSimulator", "PathEvent", "ConvergenceReport"]


@dataclass(frozen=True)
class SimulatorConfig:
    """Timing parameters for message delivery.

    Per-link propagation delays are drawn once (uniformly from
    ``link_delay_range`` seconds) and then jittered per message; FIFO order
    per channel is always preserved.
    """

    link_delay_range: Tuple[float, float] = (0.01, 0.2)
    jitter: float = 0.02
    processing_delay: float = 0.001
    seed: int = 0

    def __post_init__(self) -> None:
        lo, hi = self.link_delay_range
        if not 0 < lo <= hi:
            raise ValueError("link_delay_range must satisfy 0 < lo <= hi")
        if self.jitter < 0 or self.processing_delay < 0:
            raise ValueError("delays must be non-negative")


@dataclass(frozen=True)
class PathEvent:
    """One Loc-RIB transition: at ``time``, ``asn``'s path became ``path``.

    ``path`` is None when the prefix became unreachable at that AS.
    """

    time: float
    asn: int
    prefix: Prefix
    path: Optional[Tuple[int, ...]]


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of one :meth:`BGPSimulator.run` call."""

    start_time: float
    end_time: float
    messages_delivered: int

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class BGPSimulator:
    """Event-driven simulation over an :class:`ASGraph`."""

    def __init__(self, graph: ASGraph, config: SimulatorConfig = SimulatorConfig()) -> None:
        self.graph = graph
        self.config = config
        self._rng = random.Random(config.seed)
        self.nodes: Dict[int, BGPNode] = {}
        for asn in graph.ases:
            relationships = {
                nbr: rel
                for nbr in graph.neighbours(asn)
                if (rel := graph.relationship(asn, nbr)) is not None
            }
            self.nodes[asn] = BGPNode(asn, relationships)
        self._link_delay: Dict[FrozenSet[int], float] = {}
        for a, b, _rel in graph.links():
            self._link_delay[frozenset((a, b))] = self._rng.uniform(*config.link_delay_range)
        self._queue: List[Tuple[float, int, int, UpdateMessage]] = []
        self._seq = 0
        self._channel_clock: Dict[Tuple[int, int], float] = {}
        self.now = 0.0
        self.history: List[PathEvent] = []
        self._last_path: Dict[Tuple[int, Prefix], Optional[Tuple[int, ...]]] = {}

    # -- scenario actions ---------------------------------------------------

    def announce(
        self,
        asn: int,
        prefix: Prefix,
        communities: Iterable[Community] = (),
        to_neighbours: Optional[Iterable[int]] = None,
        at: Optional[float] = None,
    ) -> None:
        """AS ``asn`` starts originating ``prefix`` at time ``at`` (default now)."""
        self._advance(at)
        outbox = self.nodes[asn].originate(prefix, frozenset(communities), to_neighbours)
        self._record(asn, prefix)
        self._dispatch(asn, outbox)

    def withdraw(self, asn: int, prefix: Prefix, at: Optional[float] = None) -> None:
        """AS ``asn`` stops originating ``prefix``."""
        self._advance(at)
        outbox = self.nodes[asn].withdraw_origin(prefix)
        self._record(asn, prefix)
        self._dispatch(asn, outbox)

    def fail_link(self, a: int, b: int, at: Optional[float] = None) -> None:
        """Take the session between ``a`` and ``b`` down."""
        self._advance(at)
        for local, remote in ((a, b), (b, a)):
            outbox = self.nodes[local].drop_neighbour(remote)
            self._record_all(local, outbox)
            self._dispatch(local, outbox)

    def recover_link(self, a: int, b: int, at: Optional[float] = None) -> None:
        """Bring the session between ``a`` and ``b`` back up (full-table exchange)."""
        self._advance(at)
        rel_ab = self.graph.relationship(a, b)
        if rel_ab is None:
            raise ValueError(f"no link AS{a}-AS{b} in the topology")
        outbox_a = self.nodes[a].add_neighbour(b, rel_ab)
        outbox_b = self.nodes[b].add_neighbour(a, rel_ab.inverse())
        self._dispatch(a, outbox_a)
        self._dispatch(b, outbox_b)

    def reset_session(self, a: int, b: int, at: Optional[float] = None) -> None:
        """Reset the session between ``a`` and ``b``: both sides re-dump
        their full tables (generating artificial updates, Zhang et al.)."""
        self._advance(at)
        self._dispatch(a, self.nodes[a].session_reset(b))
        self._dispatch(b, self.nodes[b].session_reset(a))

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> ConvergenceReport:
        """Deliver queued messages (all of them, or up to time ``until``)."""
        start = self.now
        delivered = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            time, _seq, target, message = heapq.heappop(self._queue)
            self.now = max(self.now, time)
            node = self.nodes[target]
            outbox = node.receive(message)
            delivered += 1
            self._record(target, message.prefix)
            self._dispatch(target, outbox)
        if until is not None and self.now < until and not self._queue:
            self.now = until
        return ConvergenceReport(start_time=start, end_time=self.now, messages_delivered=delivered)

    @property
    def converged(self) -> bool:
        return not self._queue

    # -- analysis helpers -----------------------------------------------------

    def path(self, asn: int, prefix: Prefix) -> Optional[Tuple[int, ...]]:
        """The AS path currently selected by ``asn`` for ``prefix``."""
        return self.nodes[asn].best_path(prefix)

    def paths_seen(self, asn: int, prefix: Prefix) -> List[PathEvent]:
        """Every path transition ``asn`` went through for ``prefix``."""
        return [e for e in self.history if e.asn == asn and e.prefix == prefix]

    def transient_ases(self, asn: int, prefix: Prefix) -> FrozenSet[int]:
        """ASes that appeared on *some* path ``asn`` held for ``prefix`` but
        not on the final one — the convergence-time observers of §3.1."""
        events = self.paths_seen(asn, prefix)
        if not events:
            return frozenset()
        final = events[-1].path or ()
        transient: Set[int] = set()
        for event in events[:-1]:
            if event.path:
                transient.update(event.path)
        return frozenset(transient - set(final))

    def all_ases_seen(self, asn: int, prefix: Prefix) -> FrozenSet[int]:
        """Union of ASes over every path ``asn`` ever held for ``prefix``."""
        seen: Set[int] = set()
        for event in self.paths_seen(asn, prefix):
            if event.path:
                seen.update(event.path)
        return frozenset(seen)

    # -- internals ------------------------------------------------------------

    def _advance(self, at: Optional[float]) -> None:
        if at is not None:
            if at < self.now:
                raise ValueError(f"cannot schedule in the past ({at} < {self.now})")
            self.now = at

    def _dispatch(self, sender: int, outbox: Outbox) -> None:
        for neighbour, message in outbox:
            key = frozenset((sender, neighbour))
            base = self._link_delay.get(key)
            if base is None:
                continue  # link vanished between selection and dispatch
            delay = base + self._rng.uniform(0, self.config.jitter) + self.config.processing_delay
            deliver_at = self.now + delay
            channel = (sender, neighbour)
            # FIFO per channel: never deliver before an earlier message.
            deliver_at = max(deliver_at, self._channel_clock.get(channel, 0.0))
            self._channel_clock[channel] = deliver_at
            heapq.heappush(self._queue, (deliver_at, self._seq, neighbour, message))
            self._seq += 1

    def _record(self, asn: int, prefix: Prefix) -> None:
        path = self.nodes[asn].best_path(prefix)
        key = (asn, prefix)
        if key in self._last_path and self._last_path[key] == path:
            return
        if key not in self._last_path and path is None:
            return
        self._last_path[key] = path
        self.history.append(PathEvent(time=self.now, asn=asn, prefix=prefix, path=path))

    def _record_all(self, asn: int, outbox: Outbox) -> None:
        prefixes = {message.prefix for _nbr, message in outbox}
        for prefix in prefixes:
            self._record(asn, prefix)
        # A dropped session can change best paths without producing any
        # outbound message (e.g. stub ASes); journal those too.
        for prefix in list(self.nodes[asn].loc_rib.prefixes()):
            self._record(asn, prefix)
        for key, last in list(self._last_path.items()):
            key_asn, prefix = key
            if key_asn == asn and last is not None and self.nodes[asn].best_path(prefix) is None:
                self._record(asn, prefix)
