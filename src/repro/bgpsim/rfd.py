"""Route-flap damping (RFD) as a stream transformer.

RAPTOR-style longitudinal exposure assumes every BGP path change reaches
the vantage point, but real routers deploy RFC 2439 route-flap damping:
each (session, prefix) accumulates a penalty per flap, decaying
exponentially with a configured half-life; past the suppress threshold
the route is withheld until the penalty decays below the reuse
threshold.  Heavily-flapping prefixes — exactly the ones driving the
paper's Figure 3 growth — are therefore *under*-observed, and the
exposed-AS curve with RFD enabled bounds how much of the churn survives
a damped deployment (vendor defaults per Mosig et al., TMA 2021).

:class:`RfdFilter` implements the per-(session, prefix) penalty state
machines over a merged :class:`~repro.bgpsim.collector.StreamEvent`
stream: suppression emits one synthetic withdrawal, suppressed updates
are absorbed (counted on ``trace.stream.suppressed``), and release
re-announces the then-current route at the decay-computed reuse time.
Output is invariant to how the stream is windowed — releases are timed
analytically, not on window boundaries — which is what makes resumed
replays bit-identical to uninterrupted ones.

:class:`ExposureConsumer` is the scenario's measuring end: a windowed
:class:`~repro.bgpsim.stream.StreamConsumer` folding the (optionally
RFD-filtered) stream into dwell-qualified exposed-AS growth, sampled at
every window boundary and checkpointable mid-year.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro import obs
from repro.analysis.exposure import DEFAULT_DWELL_THRESHOLD
from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import SessionId, StreamEvent, UpdateRecord
from repro.core.temporal import DwellTracker

__all__ = [
    "RfdConfig",
    "VENDORS",
    "RfdFilter",
    "ExposureConsumer",
]

_Key = Tuple[SessionId, Prefix]


@dataclass(frozen=True)
class RfdConfig:
    """One vendor's damping parameters (penalties are dimensionless)."""

    vendor: str
    withdrawal_penalty: float = 1000.0
    readvertisement_penalty: float = 0.0
    attribute_penalty: float = 500.0
    suppress_threshold: float = 2000.0
    reuse_threshold: float = 750.0
    #: seconds for the penalty to halve
    half_life: float = 900.0
    #: longest a route may stay suppressed (enforced via the penalty ceiling)
    max_suppress_time: float = 3600.0

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        if not 0 < self.reuse_threshold < self.suppress_threshold:
            raise ValueError("need 0 < reuse_threshold < suppress_threshold")

    @property
    def ceiling(self) -> float:
        """Maximum accumulated penalty.

        Capping here is what enforces ``max_suppress_time``: from the
        ceiling, decay reaches the reuse threshold in exactly that long.
        """
        return self.reuse_threshold * 2.0 ** (self.max_suppress_time / self.half_life)

    def decay(self, penalty: float, dt: float) -> float:
        return penalty * 0.5 ** (dt / self.half_life)

    def reuse_delay(self, penalty: float) -> float:
        """Seconds until ``penalty`` decays to the reuse threshold."""
        if penalty <= self.reuse_threshold:
            return 0.0
        return self.half_life * math.log2(penalty / self.reuse_threshold)


#: Default damping parameters of the two dominant implementations (per the
#: vendor-default survey in Mosig et al.): Juniper additionally penalizes
#: re-advertisements and suppresses at a higher threshold.
VENDORS: Dict[str, RfdConfig] = {
    "cisco": RfdConfig(vendor="cisco"),
    "juniper": RfdConfig(
        vendor="juniper",
        readvertisement_penalty=1000.0,
        suppress_threshold=3000.0,
    ),
}


class _KeyState:
    """Damping state of one (session, prefix)."""

    __slots__ = (
        "penalty", "last", "advertised", "downstream", "suppressed", "generation",
    )

    def __init__(self) -> None:
        self.penalty = 0.0
        self.last = 0.0
        #: the route as the *unfiltered* stream last left it
        self.advertised: Optional[Tuple[int, ...]] = None
        #: the route as the *filtered* stream's consumer last saw it
        self.downstream: Optional[Tuple[int, ...]] = None
        self.suppressed = False
        #: bumps on every release-time change; stale heap entries skip
        self.generation = 0


class RfdFilter:
    """Per-(session, prefix) flap-damping over a merged event stream.

    Drive it with :meth:`feed` per event plus :meth:`flush` up to a
    watermark (what :class:`ExposureConsumer` does per window), or wrap a
    whole iterator with :meth:`transform`.  Output events are
    nondecreasing in time as long as the input is.
    """

    def __init__(self, config: RfdConfig = VENDORS["cisco"]) -> None:
        self.config = config
        self._states: Dict[_Key, _KeyState] = {}
        # (release time, seq, key) with lazy invalidation via generation
        self._releases: List[Tuple[float, int, int, _Key]] = []
        self._seq = 0
        #: total updates absorbed while suppressed
        self.suppressed_records = 0
        #: suppression episodes entered
        self.suppressions = 0

    # -- the state machine ---------------------------------------------------

    def feed(self, event: StreamEvent) -> Iterator[StreamEvent]:
        """Process one event; yields due releases, then the event's output."""
        cfg = self.config
        time = event.time
        yield from self.flush(time)

        key = (event.session, event.record.prefix)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _KeyState()
        record = event.record

        state.penalty = cfg.decay(state.penalty, time - state.last)
        state.last = time
        if record.is_withdrawal:
            if state.advertised is not None:
                state.penalty += cfg.withdrawal_penalty
        elif state.advertised is None:
            state.penalty += cfg.readvertisement_penalty
        elif record.as_path != state.advertised:
            state.penalty += cfg.attribute_penalty
        state.penalty = min(state.penalty, cfg.ceiling)
        state.advertised = record.as_path

        if state.suppressed:
            self.suppressed_records += 1
            obs.add("trace.stream.suppressed")
            self._schedule_release(key, state, time)
            return
        if state.penalty > cfg.suppress_threshold:
            state.suppressed = True
            self.suppressions += 1
            self.suppressed_records += 1
            obs.add("trace.stream.suppressed")
            obs.add("trace.stream.suppressions")
            self._schedule_release(key, state, time)
            if state.downstream is not None:
                state.downstream = None
                yield StreamEvent(event.session, UpdateRecord(time, record.prefix))
            return
        state.downstream = record.as_path
        yield event

    def flush(self, until: float) -> Iterator[StreamEvent]:
        """Yield every release due at or before ``until`` (time order)."""
        cfg = self.config
        releases = self._releases
        while releases and releases[0][0] <= until:
            release_time, _seq, generation, key = heapq.heappop(releases)
            state = self._states.get(key)
            if state is None or not state.suppressed or generation != state.generation:
                continue  # superseded by later flaps
            state.penalty = cfg.decay(state.penalty, release_time - state.last)
            state.last = release_time
            state.suppressed = False
            session, prefix = key
            if state.advertised is not None and state.advertised != state.downstream:
                state.downstream = state.advertised
                yield StreamEvent(
                    session, UpdateRecord(release_time, prefix, state.advertised)
                )

    def transform(
        self, events: Iterable[StreamEvent], *, end: Optional[float] = None
    ) -> Iterator[StreamEvent]:
        """Filter a whole stream, flushing tail releases up to ``end``."""
        for event in events:
            yield from self.feed(event)
        yield from self.flush(end if end is not None else math.inf)

    def _schedule_release(self, key: _Key, state: _KeyState, time: float) -> None:
        state.generation += 1
        release = time + self.config.reuse_delay(state.penalty)
        heapq.heappush(self._releases, (release, self._seq, state.generation, key))
        self._seq += 1

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable damping state (release heap reconstructed)."""
        keys = []
        for (session, prefix), state in sorted(
            self._states.items(), key=lambda item: (item[0][0], str(item[0][1]))
        ):
            keys.append(
                {
                    "session": [session[0], session[1]],
                    "prefix": str(prefix),
                    "penalty": state.penalty,
                    "last": state.last,
                    "advertised": list(state.advertised)
                    if state.advertised is not None
                    else None,
                    "downstream": list(state.downstream)
                    if state.downstream is not None
                    else None,
                    "suppressed": state.suppressed,
                }
            )
        return {
            "vendor": self.config.vendor,
            "suppressed_records": self.suppressed_records,
            "suppressions": self.suppressions,
            "keys": keys,
        }

    def load_state(self, state: dict) -> None:
        if state["vendor"] != self.config.vendor:
            raise ValueError(
                f"checkpointed RFD state is for vendor {state['vendor']!r}, "
                f"filter is configured for {self.config.vendor!r}"
            )
        self._states = {}
        self._releases = []
        self._seq = 0
        self.suppressed_records = int(state["suppressed_records"])
        self.suppressions = int(state["suppressions"])
        for entry in state["keys"]:
            key = (
                (entry["session"][0], int(entry["session"][1])),
                Prefix.parse(entry["prefix"]),
            )
            key_state = _KeyState()
            key_state.penalty = float(entry["penalty"])
            key_state.last = float(entry["last"])
            key_state.advertised = (
                tuple(entry["advertised"]) if entry["advertised"] is not None else None
            )
            key_state.downstream = (
                tuple(entry["downstream"]) if entry["downstream"] is not None else None
            )
            key_state.suppressed = bool(entry["suppressed"])
            self._states[key] = key_state
            if key_state.suppressed:
                self._schedule_release(key, key_state, key_state.last)


class ExposureConsumer:
    """Windowed exposed-AS growth, optionally behind an RFD filter.

    One :class:`~repro.core.temporal.DwellTracker` per (session, prefix)
    accumulates on-path dwell (§4's 5-minute rule); the qualified-AS
    union across all tracked keys is sampled at every window boundary,
    yielding the x(t) growth curve the RFD experiment compares across
    vendors.  Fully checkpointable: ``state``/``restore`` round-trip the
    trackers, the damping state, and the samples, so a resumed year-scale
    replay produces the identical curve.
    """

    def __init__(
        self,
        prefixes: Iterable[Prefix],
        *,
        dwell_threshold: float = DEFAULT_DWELL_THRESHOLD,
        rfd: Optional[RfdFilter] = None,
    ) -> None:
        self.prefixes: FrozenSet[Prefix] = frozenset(prefixes)
        self.dwell_threshold = dwell_threshold
        self.rfd = rfd
        self.qualified: set = set()
        self._trackers: Dict[_Key, DwellTracker] = {}
        #: (window end, cumulative qualified-AS count) per window
        self.samples: List[Tuple[float, int]] = []
        self.records = 0

    def _tracker(self, key: _Key) -> DwellTracker:
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = self._trackers[key] = DwellTracker(
                self.dwell_threshold, qualified=self.qualified
            )
        return tracker

    def _observe(self, event: StreamEvent) -> None:
        self.records += 1
        self._tracker((event.session, event.record.prefix)).observe(
            event.time, event.record.as_path
        )

    def consume(self, window) -> None:
        # Per-key damping is independent across keys, so filtering to the
        # measured prefixes *before* the RFD machine changes nothing for
        # the keys we track — and skips the background-prefix churn.
        if self.rfd is not None:
            for event in window.events:
                if event.prefix not in self.prefixes:
                    continue
                for out in self.rfd.feed(event):
                    self._observe(out)
            for out in self.rfd.flush(window.end):
                self._observe(out)
        else:
            for event in window.events:
                if event.prefix in self.prefixes:
                    self._observe(event)
        for tracker in self._trackers.values():
            tracker.advance(window.end)
        self.samples.append((window.end, len(self.qualified)))

    # -- checkpointing -------------------------------------------------------

    def state(self) -> dict:
        trackers = []
        for (session, prefix), tracker in sorted(
            self._trackers.items(), key=lambda item: (item[0][0], str(item[0][1]))
        ):
            entry = tracker.state()
            entry["session"] = [session[0], session[1]]
            entry["prefix"] = str(prefix)
            trackers.append(entry)
        return {
            "samples": [[end, count] for end, count in self.samples],
            "records": self.records,
            "qualified": sorted(self.qualified),
            "trackers": trackers,
            "rfd": self.rfd.state_dict() if self.rfd is not None else None,
        }

    def restore(self, state: dict) -> None:
        self.samples = [(float(end), int(count)) for end, count in state["samples"]]
        self.records = int(state["records"])
        self.qualified.clear()
        self.qualified.update(int(asn) for asn in state["qualified"])
        self._trackers = {}
        for entry in state["trackers"]:
            key = (
                (entry["session"][0], int(entry["session"][1])),
                Prefix.parse(entry["prefix"]),
            )
            tracker = DwellTracker(self.dwell_threshold, qualified=self.qualified)
            tracker.restore(entry)
            self._trackers[key] = tracker
        if state["rfd"] is not None:
            if self.rfd is None:
                raise ValueError("checkpoint carries RFD state but consumer has no filter")
            self.rfd.load_state(state["rfd"])
        elif self.rfd is not None:
            raise ValueError("consumer has an RFD filter but checkpoint carries none")
