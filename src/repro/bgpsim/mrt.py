"""Text serialization for collector update streams.

Real RIPE collectors archive MRT files; ``bgpdump`` renders them as
pipe-separated lines.  This module provides the equivalent interchange
format for :class:`~repro.bgpsim.collector.UpdateStream` so traces can be
saved, diffed, and re-analysed without re-running a simulation:

    session|rrc00|42
    A|3600.000|10.0.0.0/24|42 7 1|
    A|7200.000|10.0.0.0/24|42 9 1|R
    W|9000.000|10.0.0.0/24

``A`` lines are announcements (trailing field ``R`` marks ground-truth
reset artefacts), ``W`` lines withdrawals.  Times are seconds from the
trace start.
"""

from __future__ import annotations

from typing import List, TextIO

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import SessionId, UpdateRecord, UpdateStream

__all__ = ["dump_stream", "dumps_stream", "load_stream", "loads_stream"]

_HEADER = "session"


def dumps_stream(stream: UpdateStream) -> str:
    """Serialise one stream to text."""
    lines: List[str] = [f"{_HEADER}|{stream.collector}|{stream.peer_asn}"]
    for record in stream:
        if record.is_withdrawal:
            lines.append(f"W|{record.time:.3f}|{record.prefix}")
        else:
            path = " ".join(str(asn) for asn in record.as_path)
            flag = "R" if record.from_reset else ""
            lines.append(f"A|{record.time:.3f}|{record.prefix}|{path}|{flag}")
    return "\n".join(lines) + "\n"


def dump_stream(stream: UpdateStream, fh: TextIO) -> None:
    """Serialise one stream to an open text file."""
    fh.write(dumps_stream(stream))


def loads_stream(text: str) -> UpdateStream:
    """Parse the output of :func:`dumps_stream`."""
    session: SessionId = ("", 0)
    records: List[UpdateRecord] = []
    saw_header = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        kind = fields[0]
        if kind == _HEADER:
            if len(fields) != 3:
                raise ValueError(f"line {lineno}: malformed session header")
            session = (fields[1], int(fields[2]))
            saw_header = True
        elif kind == "A":
            if len(fields) != 5:
                raise ValueError(f"line {lineno}: malformed announcement")
            path = tuple(int(asn) for asn in fields[3].split())
            if not path:
                raise ValueError(f"line {lineno}: empty AS path")
            records.append(
                UpdateRecord(
                    time=float(fields[1]),
                    prefix=Prefix.parse(fields[2]),
                    as_path=path,
                    from_reset=fields[4] == "R",
                )
            )
        elif kind == "W":
            if len(fields) != 3:
                raise ValueError(f"line {lineno}: malformed withdrawal")
            records.append(
                UpdateRecord(time=float(fields[1]), prefix=Prefix.parse(fields[2]))
            )
        else:
            raise ValueError(f"line {lineno}: unknown record kind {kind!r}")
    if not saw_header:
        raise ValueError("stream text has no session header")
    return UpdateStream(session, records)


def load_stream(fh: TextIO) -> UpdateStream:
    """Parse a stream from an open text file."""
    return loads_stream(fh.read())
