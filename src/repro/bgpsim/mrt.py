"""Text serialization for collector update streams.

Real RIPE collectors archive MRT files; ``bgpdump`` renders them as
pipe-separated lines.  This module provides the equivalent interchange
format for :class:`~repro.bgpsim.collector.UpdateStream` so traces can be
saved, diffed, and re-analysed without re-running a simulation:

    session|rrc00|42
    A|3600.000|10.0.0.0/24|42 7 1|
    A|7200.000|10.0.0.0/24|42 9 1|R
    W|9000.000|10.0.0.0/24

``A`` lines are announcements (trailing field ``R`` marks ground-truth
reset artefacts), ``W`` lines withdrawals.  Times are seconds from the
trace start.

The codec is streaming on both sides: :func:`write_records` drains any
record iterator to a file one line at a time, and :func:`iter_records`
reads one back as a lazy :class:`RecordStream` (an
:class:`~repro.bgpsim.collector.UpdateSource` — feed it straight into
``merge_sources``/``replay``), so million-record files round-trip without
either end ever holding the whole stream.  The legacy whole-string API
(``dumps_stream``/``loads_stream`` and friends) survives as thin
deprecated wrappers.
"""

from __future__ import annotations

import io
import warnings
from typing import Iterable, Iterator, Optional, TextIO

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import SessionId, UpdateRecord, UpdateStream

__all__ = [
    "encode_record",
    "decode_record",
    "format_header",
    "parse_header",
    "write_records",
    "iter_records",
    "RecordStream",
    "dump_stream",
    "dumps_stream",
    "load_stream",
    "loads_stream",
]

_HEADER = "session"


# -- line codecs -------------------------------------------------------------


def format_header(session: SessionId) -> str:
    """The ``session|<collector>|<peer asn>`` line opening every file."""
    return f"{_HEADER}|{session[0]}|{session[1]}"


def parse_header(line: str, *, lineno: int = 1) -> SessionId:
    fields = line.split("|")
    if len(fields) != 3 or fields[0] != _HEADER:
        raise ValueError(f"line {lineno}: malformed session header")
    return (fields[1], int(fields[2]))


def encode_record(record: UpdateRecord) -> str:
    """One record as one pipe-separated line (no trailing newline)."""
    if record.is_withdrawal:
        return f"W|{record.time:.3f}|{record.prefix}"
    path = " ".join(str(asn) for asn in record.as_path)
    flag = "R" if record.from_reset else ""
    return f"A|{record.time:.3f}|{record.prefix}|{path}|{flag}"


def decode_record(line: str, *, lineno: int = 0) -> UpdateRecord:
    """Parse one ``A``/``W`` line back into an :class:`UpdateRecord`."""
    fields = line.split("|")
    kind = fields[0]
    if kind == "A":
        if len(fields) != 5:
            raise ValueError(f"line {lineno}: malformed announcement")
        path = tuple(int(asn) for asn in fields[3].split())
        if not path:
            raise ValueError(f"line {lineno}: empty AS path")
        return UpdateRecord(
            time=float(fields[1]),
            prefix=Prefix.parse(fields[2]),
            as_path=path,
            from_reset=fields[4] == "R",
        )
    if kind == "W":
        if len(fields) != 3:
            raise ValueError(f"line {lineno}: malformed withdrawal")
        return UpdateRecord(time=float(fields[1]), prefix=Prefix.parse(fields[2]))
    raise ValueError(f"line {lineno}: unknown record kind {kind!r}")


# -- streaming codec ---------------------------------------------------------


def write_records(
    fh: TextIO, session: SessionId, records: Iterable[UpdateRecord]
) -> int:
    """Stream a session's records to an open text file.

    Writes the header then one line per record as the iterator yields
    them — nothing is materialized, so a million-record stream costs one
    record of memory.  Returns the number of records written.
    """
    fh.write(format_header(session) + "\n")
    count = 0
    for record in records:
        fh.write(encode_record(record) + "\n")
        count += 1
    return count


class RecordStream:
    """A lazily-parsed stream file: eager session header, lazy records.

    Satisfies the :class:`~repro.bgpsim.collector.UpdateSource` protocol —
    ``session`` is read from the header at construction (so a set of
    files can be wired into ``merge_sources`` before any record is
    parsed) and iterating decodes the remaining lines one at a time.
    One-shot, like any generator-backed source.

    With ``tolerate_torn_tail=True`` a final line that fails to decode is
    dropped instead of raised — the same recovery contract as
    :mod:`repro.persist`'s checkpoint scanner, for files cut off
    mid-write.  Corruption *followed by* an intact line still raises:
    that is a damaged file, not a torn tail.
    """

    def __init__(self, fh: TextIO, *, tolerate_torn_tail: bool = False) -> None:
        self._fh = fh
        self._tolerate_torn_tail = tolerate_torn_tail
        self._lineno = 0
        self._consumed = False
        line = self._next_content_line()
        if line is None:
            raise ValueError("stream text has no session header")
        self.session: SessionId = parse_header(line, lineno=self._lineno)

    def _next_content_line(self) -> Optional[str]:
        for raw in self._fh:
            self._lineno += 1
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            return line
        return None

    def __iter__(self) -> Iterator[UpdateRecord]:
        if self._consumed:
            raise RuntimeError("RecordStream is one-shot; reopen the file")
        self._consumed = True
        return self._records()

    def _records(self) -> Iterator[UpdateRecord]:
        while True:
            line = self._next_content_line()
            if line is None:
                return
            try:
                record = decode_record(line, lineno=self._lineno)
            except ValueError:
                # Torn tail or corruption?  A following intact line means
                # the file is damaged in the middle — always an error.
                if self._next_content_line() is not None or not self._tolerate_torn_tail:
                    raise
                return
            yield record


def iter_records(fh: TextIO, *, tolerate_torn_tail: bool = False) -> RecordStream:
    """Open a serialized stream for lazy reading.

    The inverse of :func:`write_records`:
    ``list(iter_records(f))`` equals the records that were written, and
    neither direction ever materializes the stream.
    """
    return RecordStream(fh, tolerate_torn_tail=tolerate_torn_tail)


# -- legacy whole-string API (deprecated) ------------------------------------


def _warn_legacy(name: str, replacement: str) -> None:
    warnings.warn(
        f"{name}() materializes the whole stream; use {replacement} "
        "for bounded-memory round-trips",
        DeprecationWarning,
        stacklevel=3,
    )


def dumps_stream(stream: UpdateStream) -> str:
    """Serialise one stream to text.  Deprecated: :func:`write_records`."""
    _warn_legacy("dumps_stream", "write_records")
    out = io.StringIO()
    write_records(out, stream.session, stream)
    return out.getvalue()


def dump_stream(stream: UpdateStream, fh: TextIO) -> None:
    """Serialise one stream to an open text file.  Deprecated:
    :func:`write_records`."""
    _warn_legacy("dump_stream", "write_records")
    write_records(fh, stream.session, stream)


def loads_stream(text: str) -> UpdateStream:
    """Parse the output of :func:`dumps_stream`.  Deprecated:
    :func:`iter_records`."""
    _warn_legacy("loads_stream", "iter_records")
    source = iter_records(io.StringIO(text))
    return UpdateStream(source.session, list(source))


def load_stream(fh: TextIO) -> UpdateStream:
    """Parse a stream from an open text file.  Deprecated:
    :func:`iter_records`."""
    _warn_legacy("load_stream", "iter_records")
    source = iter_records(fh)
    return UpdateStream(source.session, list(source))
