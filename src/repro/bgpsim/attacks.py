"""Active BGP attacks against a prefix: hijack, interception, stealth (§3.2).

All attacks are evaluated statically on the Gao-Rexford model: the victim
and the attacker both originate the target prefix and every AS picks the
announcement it prefers.  The set of ASes that pick the attacker is the
*capture set* — for a hijacked guard-relay prefix, exactly the set of
vantage points from which client traffic to the guard is diverted to the
adversary.

Attack flavours, as in the paper:

- **Same-prefix hijack**: the attacker announces the victim's exact prefix.
  Captured traffic is blackholed; the adversary learns the anonymity set of
  clients (their IPs) but the connection eventually drops.
- **More-specific hijack**: the attacker announces a longer prefix; longest
  prefix match sends *everyone's* traffic to the attacker (modulo filters),
  but the bogus announcement is globally visible — easy to detect.
- **Interception**: a same-prefix hijack where the attacker preserves its
  own working route to the victim and forwards the captured traffic on, so
  connections stay alive and end-to-end timing analysis proceeds (the
  paper's most dangerous variant).
- **Community-scoped hijack**: the attacker uses BGP communities to stop
  its upstreams from re-exporting the bogus route (the Renesys/Zmijewski
  man-in-the-middle), trading capture-set size for stealth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.relationships import RouteKind
from repro.asgraph.topology import ASGraph
from repro.runner import ExperimentSpec, TransientFields, Trial, run_experiment

__all__ = [
    "AttackKind",
    "HijackResult",
    "simulate_hijack",
    "simulate_interception",
    "simulate_community_scoped_hijack",
    "hijack_sweep_spec",
    "sweep_hijacks",
    "encode_hijack_result",
    "decode_hijack_result",
]


class AttackKind(enum.Enum):
    SAME_PREFIX = "same-prefix-hijack"
    MORE_SPECIFIC = "more-specific-hijack"
    INTERCEPTION = "interception"
    COMMUNITY_SCOPED = "community-scoped-hijack"


@dataclass(frozen=True)
class HijackResult:
    """Outcome of one simulated attack."""

    kind: AttackKind
    victim: int
    attacker: int
    #: ASes whose best route now leads to the attacker (attacker included)
    capture_set: FrozenSet[int]
    #: |capture_set| / |ASes|, the paper's "fraction of Internet traffic captured"
    capture_fraction: float
    #: for interception: does the attacker retain a working route to the
    #: victim so captured flows can be forwarded (connection stays alive)?
    interception_feasible: bool = False
    #: neighbours the attacker announced the bogus route to (None = all)
    announcement_scope: Optional[FrozenSet[int]] = None
    #: the attacker's forwarding path to the victim, when interception works
    forwarding_path: Optional[Tuple[int, ...]] = None

    def captures(self, asn: int) -> bool:
        return asn in self.capture_set


def simulate_hijack(
    graph: ASGraph,
    victim: int,
    attacker: int,
    kind: AttackKind = AttackKind.SAME_PREFIX,
    *,
    engine: Optional[RoutingEngine] = None,
    excluded_links: Optional[Iterable[Iterable[int]]] = None,
) -> HijackResult:
    """Simulate a hijack and return the capture set.

    For :attr:`AttackKind.MORE_SPECIFIC` the capture set is every AS with
    any route to the attacker (longest-prefix match ignores the victim's
    covering announcement), including the victim itself — matching the
    observation that a more-specific hijack is globally effective but
    globally visible.

    Route computations go through ``engine`` (default: the process-wide
    :func:`~repro.asgraph.engine.shared_engine`), so sweeps over the same
    victim/attacker pairs reuse outcomes.  ``excluded_links`` evaluates
    the attack on a churned topology: no route may cross an excluded
    link, matching the live-serving tier's epoch state.
    """
    _check_endpoints(graph, victim, attacker)
    eng = engine if engine is not None else shared_engine()
    excl = _normalise_excluded(excluded_links)
    total = len(graph)
    if kind is AttackKind.MORE_SPECIFIC:
        outcome = eng.outcome(graph, [attacker], excluded_links=excl)
        captured = set(outcome.reachable_ases())
        return HijackResult(
            kind=kind,
            victim=victim,
            attacker=attacker,
            capture_set=frozenset(captured),
            capture_fraction=len(captured) / total,
        )
    if kind is AttackKind.SAME_PREFIX:
        outcome = eng.outcome(graph, [victim, attacker], excluded_links=excl)
        captured = outcome.capture_set(attacker)
        return HijackResult(
            kind=kind,
            victim=victim,
            attacker=attacker,
            capture_set=captured,
            capture_fraction=len(captured) / total,
        )
    if kind is AttackKind.INTERCEPTION:
        return simulate_interception(
            graph, victim, attacker, engine=eng, excluded_links=excl
        )
    if kind is AttackKind.COMMUNITY_SCOPED:
        return simulate_community_scoped_hijack(
            graph, victim, attacker, engine=eng, excluded_links=excl
        )
    raise ValueError(f"unknown attack kind: {kind}")


def simulate_interception(
    graph: ASGraph,
    victim: int,
    attacker: int,
    max_scope_attempts: int = 4,
    *,
    engine: Optional[RoutingEngine] = None,
    excluded_links: Optional[Iterable[Iterable[int]]] = None,
) -> HijackResult:
    """Simulate a prefix *interception* (Ballani et al. style).

    The attacker must keep a valid forwarding path to the victim: no AS on
    that path may itself be captured, or the forwarded traffic would loop
    back to the attacker.  The attacker controls its blast radius by
    announcing the bogus route to only a subset of its neighbours; we try
    progressively smaller scopes until the forwarding path survives:

    1. all neighbours, 2. all but the next hop towards the victim,
    3. customers and peers only, 4. customers only.
    """
    _check_endpoints(graph, victim, attacker)
    eng = engine if engine is not None else shared_engine()
    excl = _normalise_excluded(excluded_links)
    total = len(graph)
    baseline = eng.outcome(graph, [victim], excluded_links=excl)
    forwarding = baseline.path(attacker)
    if forwarding is None or len(forwarding) < 2:
        # No route, or attacker is adjacent-to-self: nothing to intercept via.
        return HijackResult(
            kind=AttackKind.INTERCEPTION,
            victim=victim,
            attacker=attacker,
            capture_set=frozenset(),
            capture_fraction=0.0,
            interception_feasible=False,
        )

    neighbours = graph.neighbours(attacker)
    next_hop = forwarding[1]
    scopes: List[FrozenSet[int]] = [
        frozenset(neighbours),
        frozenset(neighbours - {next_hop}),
        frozenset(graph.customers(attacker) | graph.peers(attacker)) - {next_hop},
        frozenset(graph.customers(attacker)) - {next_hop},
    ][:max_scope_attempts]

    for scope in scopes:
        if not scope:
            continue
        outcome = eng.outcome(
            graph,
            [victim, attacker],
            excluded_links=excl,
            origin_export_scopes={attacker: scope},
        )
        captured = outcome.capture_set(attacker)
        on_path_captured = any(asn in captured for asn in forwarding[1:])
        if not on_path_captured:
            return HijackResult(
                kind=AttackKind.INTERCEPTION,
                victim=victim,
                attacker=attacker,
                capture_set=captured,
                capture_fraction=len(captured) / total,
                interception_feasible=True,
                announcement_scope=scope,
                forwarding_path=forwarding,
            )
    return HijackResult(
        kind=AttackKind.INTERCEPTION,
        victim=victim,
        attacker=attacker,
        capture_set=frozenset(),
        capture_fraction=0.0,
        interception_feasible=False,
        forwarding_path=forwarding,
    )


def simulate_community_scoped_hijack(
    graph: ASGraph,
    victim: int,
    attacker: int,
    *,
    engine: Optional[RoutingEngine] = None,
    excluded_links: Optional[Iterable[Iterable[int]]] = None,
) -> HijackResult:
    """Stealth hijack: the bogus route reaches only the attacker's own
    neighbours (communities stop them from re-exporting it).

    Each neighbour independently compares the attacker's 2-hop announcement
    against its legitimate route to the victim using the standard decision
    process; the ones that prefer the attacker are captured.  Propagation
    stops there, so distant monitors never see the bogus announcement —
    §5's point that control-plane monitoring misses these, and that only
    ASes with *long* legitimate paths are at risk.
    """
    _check_endpoints(graph, victim, attacker)
    eng = engine if engine is not None else shared_engine()
    excl = _normalise_excluded(excluded_links)
    total = len(graph)
    baseline = eng.outcome(graph, [victim], excluded_links=excl)
    captured: Set[int] = {attacker}
    for neighbour in graph.neighbours(attacker):
        if excl and frozenset((neighbour, attacker)) in excl:
            continue  # the session carrying the bogus route is down
        legit = baseline.route(neighbour)
        rel = graph.relationship(neighbour, attacker)
        assert rel is not None
        bogus_kind = RouteKind.from_relationship(rel)
        bogus_key = (int(bogus_kind), 2, attacker)  # path (neighbour, attacker)
        if legit is None:
            captured.add(neighbour)
            continue
        next_hop = legit.next_hop if legit.next_hop is not None else -1
        legit_key = (int(legit.kind), len(legit.path), next_hop)
        if bogus_key < legit_key:
            captured.add(neighbour)
    return HijackResult(
        kind=AttackKind.COMMUNITY_SCOPED,
        victim=victim,
        attacker=attacker,
        capture_set=frozenset(captured),
        capture_fraction=len(captured) / total,
        interception_feasible=True,  # scoped announcements keep a clean path
        announcement_scope=frozenset(graph.neighbours(attacker)),
    )


def encode_hijack_result(result: HijackResult) -> dict:
    """JSON-serialisable form of a :class:`HijackResult` (checkpointable)."""
    return {
        "kind": result.kind.value,
        "victim": result.victim,
        "attacker": result.attacker,
        "capture_set": sorted(result.capture_set),
        "capture_fraction": result.capture_fraction,
        "interception_feasible": result.interception_feasible,
        "announcement_scope": (
            sorted(result.announcement_scope)
            if result.announcement_scope is not None
            else None
        ),
        "forwarding_path": (
            list(result.forwarding_path)
            if result.forwarding_path is not None
            else None
        ),
    }


def decode_hijack_result(encoded: dict) -> HijackResult:
    """Exact inverse of :func:`encode_hijack_result`."""
    return HijackResult(
        kind=AttackKind(encoded["kind"]),
        victim=encoded["victim"],
        attacker=encoded["attacker"],
        capture_set=frozenset(encoded["capture_set"]),
        capture_fraction=encoded["capture_fraction"],
        interception_feasible=encoded["interception_feasible"],
        announcement_scope=(
            frozenset(encoded["announcement_scope"])
            if encoded["announcement_scope"] is not None
            else None
        ),
        forwarding_path=(
            tuple(encoded["forwarding_path"])
            if encoded["forwarding_path"] is not None
            else None
        ),
    )


@dataclass(frozen=True)
class _HijackContext(TransientFields):
    """Shared world for hijack trials (engine is process-local)."""

    graph: ASGraph
    attacker: int
    kind: AttackKind
    engine: Optional[RoutingEngine] = None

    _transient = ("engine",)


def _hijack_trial(ctx: _HijackContext, trial: Trial) -> HijackResult:
    """One attack: the context's attacker against one victim origin."""
    return simulate_hijack(
        ctx.graph, trial.params, ctx.attacker, ctx.kind, engine=ctx.engine
    )


def hijack_sweep_spec(
    graph: ASGraph,
    attacker: int,
    victims: Sequence[int],
    kind: AttackKind = AttackKind.SAME_PREFIX,
    *,
    engine: Optional[RoutingEngine] = None,
) -> ExperimentSpec:
    """A hijack sweep as a runner experiment: one trial per victim origin.

    Victims may repeat (distinct prefixes can share an origin AS), so
    trial ids carry the enumeration index.
    """
    return ExperimentSpec(
        name=f"hijack-{kind.value}",
        trial_fn=_hijack_trial,
        trials=tuple(
            (f"victim-{i}-{v}", v) for i, v in enumerate(victims)
        ),
        context=_HijackContext(
            graph=graph, attacker=attacker, kind=kind, engine=engine
        ),
        params={
            "attacker": attacker,
            "kind": kind.value,
            "victims": len(victims),
        },
        encode_result=encode_hijack_result,
        decode_result=decode_hijack_result,
    )


def sweep_hijacks(
    graph: ASGraph,
    attacker: int,
    victims: Sequence[int],
    kind: AttackKind = AttackKind.SAME_PREFIX,
    *,
    engine: Optional[RoutingEngine] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> List[HijackResult]:
    """Run one attack kind against many victim origins, in victim order.

    Each victim is one :mod:`repro.runner` trial, so the sweep shards
    over ``jobs`` processes, checkpoints, and resumes.
    """
    if not victims:
        return []
    spec = hijack_sweep_spec(graph, attacker, victims, kind, engine=engine)
    report = run_experiment(
        spec, jobs=jobs, checkpoint=checkpoint, resume=resume
    )
    return list(report.results())


def _normalise_excluded(
    excluded_links: Optional[Iterable[Iterable[int]]],
) -> Optional[FrozenSet[FrozenSet[int]]]:
    if not excluded_links:
        return None
    return frozenset(frozenset(link) for link in excluded_links)


def _check_endpoints(graph: ASGraph, victim: int, attacker: int) -> None:
    if victim not in graph:
        raise ValueError(f"victim AS{victim} not in topology")
    if attacker not in graph:
        raise ValueError(f"attacker AS{attacker} not in topology")
    if victim == attacker:
        raise ValueError("attacker and victim must differ")
