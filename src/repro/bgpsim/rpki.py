"""RPKI route-origin validation as a BGP-security countermeasure (§7).

The paper closes with: "Improvements in BGP security can go a long way
toward addressing the most serious concerns.  However, deployment of BGP
security solutions ... has proven challenging."  This module makes that
trade-off measurable:

- a :class:`Roa` authorises an origin AS for a prefix (with a max length,
  so more-specific hijacks are invalid even from the right origin);
- ASes in the *adopter set* run route-origin validation and reject
  RPKI-invalid announcements;
- :func:`simulate_hijack_with_rov` re-runs the §3.2 hijack on a topology
  where adopters refuse to propagate (or select) the bogus route, so
  capture shrinks as adoption grows — the deployment-incentive curve.

ROV stops *origin forgery* only: an attacker prepending the legitimate
origin (a "path-forging" interception) sails through, which is exactly
why the paper is pessimistic about short-term fixes; the simulation
exposes that residual attack too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.prefixes import Prefix
from repro import obs
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.bgpsim.attacks import AttackKind, HijackResult
from repro.runner import ExperimentSpec, TransientFields, Trial, run_experiment

__all__ = [
    "Roa",
    "RpkiRegistry",
    "simulate_hijack_with_rov",
    "adoption_sweep",
    "adoption_sweep_spec",
]


@dataclass(frozen=True)
class Roa:
    """A route origin authorisation: ``prefix`` may be originated by
    ``origin_asn``, at lengths up to ``max_length``."""

    prefix: Prefix
    origin_asn: int
    max_length: Optional[int] = None

    def __post_init__(self) -> None:
        max_len = self.max_length if self.max_length is not None else self.prefix.length
        if not self.prefix.length <= max_len <= 32:
            raise ValueError(
                f"max_length {self.max_length} invalid for {self.prefix}"
            )

    @property
    def effective_max_length(self) -> int:
        return self.max_length if self.max_length is not None else self.prefix.length

    def covers(self, prefix: Prefix) -> bool:
        return (
            self.prefix.contains_prefix(prefix)
            and prefix.length <= self.effective_max_length
        )


class RpkiRegistry:
    """The set of published ROAs, with RFC 6811 validation semantics."""

    def __init__(self, roas: Iterable[Roa] = ()) -> None:
        self._roas: List[Roa] = list(roas)

    def add(self, roa: Roa) -> None:
        self._roas.append(roa)

    def __len__(self) -> int:
        return len(self._roas)

    def validate(self, prefix: Prefix, origin_asn: int) -> str:
        """RFC 6811: "valid", "invalid", or "unknown" (no covering ROA)."""
        covered = False
        for roa in self._roas:
            if roa.prefix.contains_prefix(prefix):
                covered = True
                if roa.covers(prefix) and roa.origin_asn == origin_asn:
                    return "valid"
        return "invalid" if covered else "unknown"

    @classmethod
    def for_prefixes(cls, prefix_origins: Mapping[Prefix, int]) -> "RpkiRegistry":
        """Publish exact-match ROAs for every known prefix (full coverage)."""
        return cls(Roa(prefix, origin) for prefix, origin in prefix_origins.items())


def simulate_hijack_with_rov(
    graph: ASGraph,
    registry: RpkiRegistry,
    prefix: Prefix,
    victim: int,
    attacker: int,
    adopters: FrozenSet[int],
    forge_origin: bool = False,
    *,
    engine: Optional[RoutingEngine] = None,
) -> HijackResult:
    """Same-prefix hijack against a partially-ROV-deployed Internet.

    Adopting ASes drop RPKI-invalid announcements: modelled by removing
    the attacker's announcement from their candidate set, which the staged
    Gao-Rexford computation honours by never letting an adopter accept or
    propagate the bogus route.  (Non-adopters behave as before, so the
    bogus route can still flow *around* the adopters.)

    With ``forge_origin=True`` the attacker announces ``(attacker, victim)``
    — origin-valid as far as ROV can tell.  Adoption then does nothing;
    only path validation (BGPsec) would help, the paper's "particularly
    techniques that prevent interception attacks" caveat.
    """
    if victim == attacker:
        raise ValueError("attacker and victim must differ")
    eng = engine if engine is not None else shared_engine()
    announced_path: Tuple[int, ...] = (
        (attacker, victim) if forge_origin else (attacker,)
    )
    apparent_origin = announced_path[-1]
    verdict = registry.validate(prefix, apparent_origin)

    if verdict == "invalid" and adopters:
        # Adopters never accept the bogus route.  The staged Gao-Rexford
        # computation has no per-origin import filter, so the cut is built
        # iteratively: compute the hijack, find adopters whose selected
        # route leads to the attacker, sever the link each one learned it
        # over, and recompute — until no adopter is captured.  Severing
        # only affects how the bogus route reaches that adopter; if its
        # legitimate route used the same link, the recomputation restores
        # it through the next-best neighbour, which slightly *over*-blocks
        # (a conservative approximation of ROV).
        excluded: Set[FrozenSet[int]] = set()
        outcome = eng.outcome(graph, {victim: (victim,), attacker: announced_path})
        max_iterations = 4 * len(adopters) + 8
        for _ in range(max_iterations):
            captured_adopters = [
                asn for asn in adopters if asn in outcome.capture_set_via(attacker)
            ]
            if not captured_adopters:
                break
            for adopter in captured_adopters:
                route = outcome.route(adopter)
                if route is not None and route.next_hop is not None:
                    excluded.add(frozenset((adopter, route.next_hop)))
            outcome = eng.outcome(
                graph,
                {victim: (victim,), attacker: announced_path},
                excluded_links=frozenset(excluded),
            )
        captured = frozenset(outcome.capture_set_via(attacker)) - adopters
    else:
        outcome = eng.outcome(graph, {victim: (victim,), attacker: announced_path})
        captured = frozenset(outcome.capture_set_via(attacker))

    return HijackResult(
        kind=AttackKind.SAME_PREFIX,
        victim=victim,
        attacker=attacker,
        capture_set=captured,
        capture_fraction=len(captured) / len(graph),
    )


@dataclass(frozen=True)
class _AdoptionContext(TransientFields):
    """Shared world for adoption-rate trials (engine is process-local)."""

    graph: ASGraph
    registry: RpkiRegistry
    prefix: Prefix
    victim: int
    attacker: int
    forge_origin: bool
    #: seeded shuffle of candidate adopter ASes; a rate takes a prefix of it
    pool: Tuple[int, ...]
    engine: Optional[RoutingEngine] = None

    _transient = ("engine",)


def _adoption_trial(
    ctx: _AdoptionContext, trial: Trial
) -> Tuple[float, float]:
    """One (adoption rate, capture fraction) point of the sweep."""
    rate = trial.params
    adopters = frozenset(ctx.pool[: int(rate * len(ctx.pool))])
    result = simulate_hijack_with_rov(
        ctx.graph,
        ctx.registry,
        ctx.prefix,
        ctx.victim,
        ctx.attacker,
        adopters,
        ctx.forge_origin,
        engine=ctx.engine,
    )
    return (rate, result.capture_fraction)


def adoption_sweep_spec(
    graph: ASGraph,
    registry: RpkiRegistry,
    prefix: Prefix,
    victim: int,
    attacker: int,
    adoption_rates: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
    forge_origin: bool = False,
    *,
    engine: Optional[RoutingEngine] = None,
) -> ExperimentSpec:
    """The adoption sweep as a runner experiment: one trial per rate.

    The adopter pool is shuffled once here (deterministically per seed),
    so every rate's adopter set is a prefix of the same ordering — rates
    stay nested regardless of sharding.
    """
    for rate in adoption_rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"adoption rate {rate} not a probability")
    rng = random.Random(seed)
    pool = sorted(graph.ases - {attacker, victim})
    rng.shuffle(pool)
    return ExperimentSpec(
        name="rpki-adoption",
        seed=seed,
        trial_fn=_adoption_trial,
        trials=tuple(
            (f"rate-{i}-{rate:g}", rate)
            for i, rate in enumerate(adoption_rates)
        ),
        context=_AdoptionContext(
            graph=graph,
            registry=registry,
            prefix=prefix,
            victim=victim,
            attacker=attacker,
            forge_origin=forge_origin,
            pool=tuple(pool),
            engine=engine,
        ),
        params={
            "victim": victim,
            "attacker": attacker,
            "forge_origin": forge_origin,
            "rates": list(adoption_rates),
        },
        encode_result=list,
        decode_result=tuple,
    )


def adoption_sweep(
    graph: ASGraph,
    registry: RpkiRegistry,
    prefix: Prefix,
    victim: int,
    attacker: int,
    adoption_rates: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
    forge_origin: bool = False,
    *,
    engine: Optional[RoutingEngine] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> List[Tuple[float, float]]:
    """Capture fraction as a function of ROV adoption rate.

    Adopters are sampled uniformly (deterministically per seed), always
    excluding the attacker (an attacker does not validate itself away).
    Returns ``[(adoption_rate, capture_fraction), ...]``.  Each rate is
    one :mod:`repro.runner` trial; ``jobs``/``checkpoint``/``resume``
    shard and persist the sweep.
    """
    spec = adoption_sweep_spec(
        graph, registry, prefix, victim, attacker, adoption_rates, seed,
        forge_origin, engine=engine,
    )
    with obs.span(
        "rpki.adoption_sweep", rates=len(adoption_rates), forge_origin=forge_origin
    ):
        report = run_experiment(
            spec, jobs=jobs, checkpoint=checkpoint, resume=resume
        )
    return list(report.results())
