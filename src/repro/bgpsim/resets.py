"""Detection and removal of session-reset artefacts in update streams.

§4: "To ensure meaningful results, we removed any artificial updates caused
by BGP session resets [Zhang et al. 2005]".  When a collector session
resets, the peer re-sends its entire table; the archived stream then shows
a burst of re-announcements whose AS paths did not actually change.
Counting those as routing dynamics would wildly inflate every statistic.

The detector follows the spirit of Zhang et al.'s minimum-collection-time
method: a table transfer appears as a dense burst of updates that (a) covers
a large share of the prefixes the session carries and (b) overwhelmingly
repeats already-known paths.  Records inside a detected burst that repeat
the current path are removed; genuinely new paths inside the burst are kept
(a reset can coincide with real change).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import UpdateStream

__all__ = ["ResetDetectionConfig", "DetectedReset", "detect_resets", "remove_reset_artifacts"]


@dataclass(frozen=True)
class ResetDetectionConfig:
    """Tuning for the burst detector."""

    #: two records within this many seconds belong to the same burst
    burst_gap: float = 5.0
    #: a burst must re-announce at least this fraction of the prefixes the
    #: session has seen so far to qualify as a table transfer
    min_table_fraction: float = 0.5
    #: and at least this many prefixes in absolute terms
    min_prefixes: int = 10
    #: at least this fraction of the burst must repeat unchanged paths
    min_unchanged_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.burst_gap <= 0:
            raise ValueError("burst_gap must be positive")
        for name in ("min_table_fraction", "min_unchanged_fraction"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1]")


@dataclass(frozen=True)
class DetectedReset:
    """One detected table transfer."""

    start: float
    end: float
    num_records: int
    num_unchanged: int


def detect_resets(
    stream: UpdateStream, config: ResetDetectionConfig = ResetDetectionConfig()
) -> List[DetectedReset]:
    """Find table-transfer bursts in a stream (timing + content signature)."""
    resets, _keep = _scan(stream, config)
    return resets


def remove_reset_artifacts(
    stream: UpdateStream, config: ResetDetectionConfig = ResetDetectionConfig()
) -> UpdateStream:
    """Return a copy of the stream with reset re-announcements removed.

    Only *unchanged-path* records inside detected bursts are dropped;
    genuine changes survive even if they landed inside a transfer.
    """
    _resets, keep = _scan(stream, config)
    return UpdateStream(stream.session, [r for i, r in enumerate(stream.records) if keep[i]])


def _scan(
    stream: UpdateStream, config: ResetDetectionConfig
) -> Tuple[List[DetectedReset], List[bool]]:
    records = stream.records
    keep = [True] * len(records)
    resets: List[DetectedReset] = []
    if not records:
        return resets, keep

    # Replay the stream, tracking the last-known path per prefix and the
    # growing set of prefixes the session carries.
    last_path: Dict[Prefix, Optional[Tuple[int, ...]]] = {}
    known: set = set()

    bursts = _split_bursts(records, config.burst_gap)
    for start_idx, end_idx in bursts:
        burst = records[start_idx:end_idx]
        burst_prefixes = {r.prefix for r in burst}
        unchanged_indices: List[int] = []
        for offset, record in enumerate(burst):
            prev = last_path.get(record.prefix, _ABSENT)
            if prev is not _ABSENT and not record.is_withdrawal and prev == record.as_path:
                unchanged_indices.append(start_idx + offset)
        known_before = len(known)
        known.update(burst_prefixes)
        is_transfer = (
            len(burst) >= config.min_prefixes
            and known_before > 0
            and len(burst_prefixes) >= config.min_table_fraction * known_before
            and len(burst_prefixes) >= config.min_prefixes
            and len(unchanged_indices) >= config.min_unchanged_fraction * len(burst)
        )
        if is_transfer:
            resets.append(
                DetectedReset(
                    start=burst[0].time,
                    end=burst[-1].time,
                    num_records=len(burst),
                    num_unchanged=len(unchanged_indices),
                )
            )
            for idx in unchanged_indices:
                keep[idx] = False
        # State advances regardless: the stream's view of current paths.
        for record in burst:
            last_path[record.prefix] = record.as_path
    return resets, keep


def _split_bursts(records, gap: float) -> List[Tuple[int, int]]:
    """Split records into maximal runs with inter-arrival <= gap."""
    bursts: List[Tuple[int, int]] = []
    start = 0
    for i in range(1, len(records)):
        if records[i].time - records[i - 1].time > gap:
            bursts.append((start, i))
            start = i
    bursts.append((start, len(records)))
    return bursts


_ABSENT = object()
