"""RIPE-RIS-style route collectors and their update streams.

The paper's §4 methodology consumes "all the BGP updates received by 4 RIPE
collectors (rrc00, rrc01, rrc03 and rrc04) over more than 70 eBGP
sessions".  A :class:`Collector` here is a named set of
:class:`CollectorSession` vantage points; each session yields an
:class:`UpdateStream`, the timestamped sequence of per-prefix UPDATE
records that the measurement pipeline (path-change counting, exposure,
reset removal) operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.prefixes import Prefix

__all__ = ["UpdateRecord", "UpdateStream", "CollectorSession", "Collector", "SessionId"]

#: A session is identified by (collector name, peer ASN), e.g. ("rrc00", 42).
SessionId = Tuple[str, int]


@dataclass(frozen=True, order=True)
class UpdateRecord:
    """One UPDATE as logged by a collector session.

    ``as_path`` starts at the session's peer AS and ends at the origin; it
    is ``None`` for withdrawals.  ``from_reset`` is ground-truth annotation
    (set by the trace engine when the record is an artificial table-dump
    re-advertisement); the reset-removal pipeline must *not* read it — it
    exists so tests can score the detector.
    """

    time: float
    prefix: Prefix
    as_path: Optional[Tuple[int, ...]] = None
    from_reset: bool = field(default=False, compare=False)

    @property
    def is_withdrawal(self) -> bool:
        return self.as_path is None


class UpdateStream:
    """The time-ordered update log of one collector session."""

    def __init__(self, session: SessionId, records: Sequence[UpdateRecord] = ()) -> None:
        self.session = session
        self._records: List[UpdateRecord] = sorted(records, key=lambda r: r.time)
        self._by_prefix: Optional[Dict[Prefix, List[UpdateRecord]]] = None

    @property
    def collector(self) -> str:
        return self.session[0]

    @property
    def peer_asn(self) -> int:
        return self.session[1]

    @property
    def records(self) -> Sequence[UpdateRecord]:
        return self._records

    def append(self, record: UpdateRecord) -> None:
        if self._records and record.time < self._records[-1].time:
            raise ValueError(
                f"out-of-order record at {record.time} (stream at {self._records[-1].time})"
            )
        self._records.append(record)
        if self._by_prefix is not None:
            self._by_prefix.setdefault(record.prefix, []).append(record)

    def _index(self) -> Dict[Prefix, List[UpdateRecord]]:
        """Per-prefix record index, built lazily (streams hold hundreds of
        thousands of records; per-prefix scans must not be linear in all)."""
        if self._by_prefix is None:
            index: Dict[Prefix, List[UpdateRecord]] = {}
            for record in self._records:
                index.setdefault(record.prefix, []).append(record)
            self._by_prefix = index
        return self._by_prefix

    def prefixes(self) -> FrozenSet[Prefix]:
        """All prefixes that appeared on this session."""
        return frozenset(self._index())

    def records_for(self, prefix: Prefix) -> List[UpdateRecord]:
        return list(self._index().get(prefix, ()))

    def path_timeline(self, prefix: Prefix) -> List[Tuple[float, Optional[Tuple[int, ...]]]]:
        """The (time, as_path) transitions for a prefix, duplicates removed.

        Consecutive records carrying the same AS path (e.g. attribute-only
        churn or table re-dumps) collapse into the first occurrence.
        """
        timeline: List[Tuple[float, Optional[Tuple[int, ...]]]] = []
        for record in self._index().get(prefix, ()):
            if timeline and timeline[-1][1] == record.as_path:
                continue
            timeline.append((record.time, record.as_path))
        return timeline

    def filtered(self, keep) -> "UpdateStream":
        """A new stream containing only records where ``keep(record)``."""
        return UpdateStream(self.session, [r for r in self._records if keep(r)])

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[UpdateRecord]:
        return iter(self._records)


@dataclass
class CollectorSession:
    """One eBGP session between a collector and a peer AS."""

    collector: str
    peer_asn: int

    @property
    def session_id(self) -> SessionId:
        return (self.collector, self.peer_asn)


class Collector:
    """A route collector: a name plus its peering sessions."""

    def __init__(self, name: str, peer_asns: Sequence[int]) -> None:
        if len(set(peer_asns)) != len(peer_asns):
            raise ValueError(f"collector {name} has duplicate peers")
        self.name = name
        self.sessions: List[CollectorSession] = [
            CollectorSession(name, asn) for asn in peer_asns
        ]

    @property
    def peer_asns(self) -> List[int]:
        return [s.peer_asn for s in self.sessions]

    def __repr__(self) -> str:
        return f"Collector({self.name!r}, peers={self.peer_asns})"


def merge_streams(streams: Sequence[UpdateStream]) -> Dict[SessionId, UpdateStream]:
    """Index streams by session id, asserting uniqueness."""
    indexed: Dict[SessionId, UpdateStream] = {}
    for stream in streams:
        if stream.session in indexed:
            raise ValueError(f"duplicate stream for session {stream.session}")
        indexed[stream.session] = stream
    return indexed
