"""RIPE-RIS-style route collectors and their update streams.

The paper's §4 methodology consumes "all the BGP updates received by 4 RIPE
collectors (rrc00, rrc01, rrc03 and rrc04) over more than 70 eBGP
sessions".  A :class:`Collector` here is a named set of
:class:`CollectorSession` vantage points; each session yields an
:class:`UpdateStream`, the timestamped sequence of per-prefix UPDATE
records that the measurement pipeline (path-change counting, exposure,
reset removal) operates on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

try:  # typing.Protocol landed in 3.8; keep a fallback for exotic builds
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from repro.analysis.prefixes import Prefix

__all__ = [
    "UpdateRecord",
    "UpdateStream",
    "UpdateSource",
    "IterSource",
    "StreamEvent",
    "CollectorSession",
    "Collector",
    "SessionId",
    "merge_sources",
    "merge_streams",
]

#: A session is identified by (collector name, peer ASN), e.g. ("rrc00", 42).
SessionId = Tuple[str, int]


@dataclass(frozen=True, order=True)
class UpdateRecord:
    """One UPDATE as logged by a collector session.

    ``as_path`` starts at the session's peer AS and ends at the origin; it
    is ``None`` for withdrawals.  ``from_reset`` is ground-truth annotation
    (set by the trace engine when the record is an artificial table-dump
    re-advertisement); the reset-removal pipeline must *not* read it — it
    exists so tests can score the detector.
    """

    time: float
    prefix: Prefix
    as_path: Optional[Tuple[int, ...]] = None
    from_reset: bool = field(default=False, compare=False)

    @property
    def is_withdrawal(self) -> bool:
        return self.as_path is None


@dataclass(frozen=True)
class StreamEvent:
    """One update as it crosses the merged, globally time-ordered stream.

    The unit of the streaming pipeline: a record plus the session it was
    logged on.  ``record.time`` is the emission time; events produced by
    :func:`merge_sources` (and everything downstream: windowed replay, the
    RFD transformer, streaming codecs) are nondecreasing in time.
    """

    session: SessionId
    record: UpdateRecord

    @property
    def time(self) -> float:
        return self.record.time

    @property
    def prefix(self) -> Prefix:
        return self.record.prefix


class UpdateSource(Protocol):
    """Anything that can feed the streaming pipeline.

    A source is a ``session`` id plus an iterable of
    :class:`UpdateRecord` in nondecreasing time order.  A materialized
    :class:`UpdateStream` satisfies this protocol; :class:`IterSource`
    adapts a bare generator, so collector-scale feeds never need to be
    held in memory.
    """

    session: SessionId

    def __iter__(self) -> Iterator[UpdateRecord]: ...  # pragma: no cover


class IterSource:
    """Generator-backed update source (one-shot).

    Wraps any iterator/iterable of time-ordered records as an
    :class:`UpdateSource` without materializing it.
    """

    def __init__(self, session: SessionId, records: Iterable[UpdateRecord]) -> None:
        self.session = session
        self._records = iter(records)

    def __iter__(self) -> Iterator[UpdateRecord]:
        return self._records


class UpdateStream:
    """The time-ordered update log of one collector session."""

    def __init__(self, session: SessionId, records: Sequence[UpdateRecord] = ()) -> None:
        self.session = session
        self._records: List[UpdateRecord] = sorted(records, key=lambda r: r.time)
        self._by_prefix: Optional[Dict[Prefix, List[UpdateRecord]]] = None

    @property
    def collector(self) -> str:
        return self.session[0]

    @property
    def peer_asn(self) -> int:
        return self.session[1]

    @property
    def records(self) -> Sequence[UpdateRecord]:
        return self._records

    def append(self, record: UpdateRecord) -> None:
        if self._records and record.time < self._records[-1].time:
            raise ValueError(
                f"out-of-order record at {record.time} (stream at {self._records[-1].time})"
            )
        self._records.append(record)
        if self._by_prefix is not None:
            self._by_prefix.setdefault(record.prefix, []).append(record)

    def _index(self) -> Dict[Prefix, List[UpdateRecord]]:
        """Per-prefix record index, built lazily (streams hold hundreds of
        thousands of records; per-prefix scans must not be linear in all)."""
        if self._by_prefix is None:
            index: Dict[Prefix, List[UpdateRecord]] = {}
            for record in self._records:
                index.setdefault(record.prefix, []).append(record)
            self._by_prefix = index
        return self._by_prefix

    def prefixes(self) -> FrozenSet[Prefix]:
        """All prefixes that appeared on this session."""
        return frozenset(self._index())

    def records_for(self, prefix: Prefix) -> List[UpdateRecord]:
        return list(self._index().get(prefix, ()))

    def path_timeline(self, prefix: Prefix) -> List[Tuple[float, Optional[Tuple[int, ...]]]]:
        """The (time, as_path) transitions for a prefix, duplicates removed.

        Consecutive records carrying the same AS path (e.g. attribute-only
        churn or table re-dumps) collapse into the first occurrence.
        """
        timeline: List[Tuple[float, Optional[Tuple[int, ...]]]] = []
        for record in self._index().get(prefix, ()):
            if timeline and timeline[-1][1] == record.as_path:
                continue
            timeline.append((record.time, record.as_path))
        return timeline

    def filtered(self, keep) -> "UpdateStream":
        """A new stream containing only records where ``keep(record)``."""
        return UpdateStream(self.session, [r for r in self._records if keep(r)])

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[UpdateRecord]:
        return iter(self._records)


@dataclass
class CollectorSession:
    """One eBGP session between a collector and a peer AS."""

    collector: str
    peer_asn: int

    @property
    def session_id(self) -> SessionId:
        return (self.collector, self.peer_asn)


class Collector:
    """A route collector: a name plus its peering sessions."""

    def __init__(self, name: str, peer_asns: Sequence[int]) -> None:
        if len(set(peer_asns)) != len(peer_asns):
            raise ValueError(f"collector {name} has duplicate peers")
        self.name = name
        self.sessions: List[CollectorSession] = [
            CollectorSession(name, asn) for asn in peer_asns
        ]

    @property
    def peer_asns(self) -> List[int]:
        return [s.peer_asn for s in self.sessions]

    def __repr__(self) -> str:
        return f"Collector({self.name!r}, peers={self.peer_asns})"


def merge_sources(
    sources: Iterable[UpdateSource],
    *,
    dedup: bool = False,
) -> Iterator[StreamEvent]:
    """K-way heap merge of per-session sources into one time-ordered stream.

    Accepts any iterable of :class:`UpdateSource` (materialized streams,
    :class:`IterSource`-wrapped generators, streaming MRT readers) and
    yields :class:`StreamEvent` in globally nondecreasing time order while
    holding at most one record per source in memory.

    Tie order is deterministic: records carrying the *same* timestamp are
    yielded in source order (the order sources were passed in), then in
    per-source record order — so simultaneous updates across collectors
    merge identically on every run, regardless of heap internals.

    With ``dedup=True``, per-(session, prefix) duplicate suppression is
    applied incrementally: a record whose AS path equals the previous
    record's path for the same key (attribute-only churn, table re-dumps)
    is dropped — the streaming equivalent of
    :meth:`UpdateStream.path_timeline`'s collapse rule.

    Each source must be internally time-ordered; an out-of-order record
    raises ``ValueError`` rather than silently corrupting the merge.
    """
    # Heap entries: (time, source index, per-source seq, record, session).
    # The (source index, seq) pair both breaks ties deterministically and
    # prevents the heap from ever comparing records.
    heap: List[Tuple[float, int, int, UpdateRecord, SessionId]] = []
    iterators: List[Iterator[UpdateRecord]] = []
    sessions: List[SessionId] = []
    for index, source in enumerate(sources):
        iterators.append(iter(source))
        sessions.append(source.session)
        first = next(iterators[index], None)
        if first is not None:
            heap.append((first.time, index, 0, first, sessions[index]))
    heapq.heapify(heap)

    _missing = object()
    last_path: Dict[Tuple[SessionId, Prefix], Optional[Tuple[int, ...]]] = {}
    while heap:
        time, index, seq, record, session = heapq.heappop(heap)
        nxt = next(iterators[index], None)
        if nxt is not None:
            if nxt.time < time:
                raise ValueError(
                    f"source {session} is not time-ordered: record at "
                    f"{nxt.time} after {time}"
                )
            heapq.heappush(heap, (nxt.time, index, seq + 1, nxt, session))
        if dedup:
            key = (session, record.prefix)
            if last_path.get(key, _missing) == record.as_path:
                continue
            last_path[key] = record.as_path
        yield StreamEvent(session, record)


def merge_streams(streams: Iterable[UpdateSource]) -> Dict[SessionId, UpdateStream]:
    """Index streams by session id, asserting uniqueness.

    Thin materializing wrapper over the streaming tier: accepts any
    iterable of sources (not just sequences of
    :class:`UpdateStream`), drains generator-backed sources into
    materialized :class:`UpdateStream` objects, and preserves the
    session-indexed dict shape the pre-streaming API returned.
    """
    indexed: Dict[SessionId, UpdateStream] = {}
    for stream in streams:
        if stream.session in indexed:
            raise ValueError(f"duplicate stream for session {stream.session}")
        if not isinstance(stream, UpdateStream):
            stream = UpdateStream(stream.session, list(stream))
        indexed[stream.session] = stream
    return indexed
