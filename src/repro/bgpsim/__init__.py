"""Event-driven BGP simulation, route collectors, traces, and attacks.

Two complementary engines live here:

- :mod:`repro.bgpsim.simulator` — a message-level, event-driven BGP
  simulator (per-AS RIBs, policy import/export, per-link delays).  It
  reproduces *convergence behaviour*: path exploration, transient routes,
  and the dynamics of hijack propagation.  Use it for small and medium
  topologies.
- :mod:`repro.bgpsim.trace` — a month-scale trace engine that recomputes
  stable Gao-Rexford outcomes around injected events and emits the
  resulting update streams at RIPE-style collectors.  It trades message
  fidelity for the ability to simulate a month of churn over thousands of
  prefixes in seconds, and is what the Figure 3 reproductions run on.

:mod:`repro.bgpsim.attacks` implements §3.2's prefix hijack, more-specific
hijack, interception and community-scoped stealth attacks on the
Gao-Rexford model.
"""

from repro.bgpsim.messages import Announcement, UpdateMessage, Withdrawal
from repro.bgpsim.rib import AdjRibIn, LocRib, decision_process
from repro.bgpsim.simulator import BGPSimulator, SimulatorConfig
from repro.bgpsim.collector import (
    Collector,
    CollectorSession,
    IterSource,
    StreamEvent,
    UpdateRecord,
    UpdateSource,
    UpdateStream,
    merge_sources,
    merge_streams,
)
from repro.bgpsim.stream import (
    ReplayReport,
    Window,
    WindowOverflowError,
    iter_windows,
    replay,
)
from repro.bgpsim.trace import (
    MonthTrace,
    MonthTraceBuilder,
    TraceConfig,
    TraceEngine,
    TraceStream,
)
from repro.bgpsim.rfd import ExposureConsumer, RfdConfig, RfdFilter, VENDORS
from repro.bgpsim.attacks import (
    AttackKind,
    HijackResult,
    simulate_hijack,
    simulate_interception,
)
from repro.bgpsim.resets import (
    ResetDetectionConfig,
    detect_resets,
    remove_reset_artifacts,
)
from repro.bgpsim.mrt import dumps_stream, iter_records, loads_stream, write_records
from repro.bgpsim.rpki import Roa, RpkiRegistry, simulate_hijack_with_rov, adoption_sweep

__all__ = [
    "Announcement",
    "Withdrawal",
    "UpdateMessage",
    "AdjRibIn",
    "LocRib",
    "decision_process",
    "BGPSimulator",
    "SimulatorConfig",
    "Collector",
    "CollectorSession",
    "IterSource",
    "StreamEvent",
    "UpdateRecord",
    "UpdateSource",
    "UpdateStream",
    "merge_sources",
    "merge_streams",
    "ReplayReport",
    "Window",
    "WindowOverflowError",
    "iter_windows",
    "replay",
    "TraceConfig",
    "TraceEngine",
    "TraceStream",
    "MonthTrace",
    "MonthTraceBuilder",
    "RfdConfig",
    "RfdFilter",
    "ExposureConsumer",
    "VENDORS",
    "AttackKind",
    "HijackResult",
    "simulate_hijack",
    "simulate_interception",
    "ResetDetectionConfig",
    "detect_resets",
    "remove_reset_artifacts",
    "dumps_stream",
    "iter_records",
    "loads_stream",
    "write_records",
    "Roa",
    "RpkiRegistry",
    "simulate_hijack_with_rov",
    "adoption_sweep",
]
