"""BGP UPDATE messages: announcements, withdrawals, and communities.

Only the attributes the paper's analyses touch are modelled: NLRI (one
prefix per message, as collectors see after MRT explosion), AS_PATH,
and COMMUNITIES (used by the Renesys-style stealth hijack of §3.2, where
``NO_EXPORT``-like communities limit propagation of the bogus route).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union

from repro.analysis.prefixes import Prefix

__all__ = [
    "Announcement",
    "Withdrawal",
    "UpdateMessage",
    "NO_EXPORT",
    "Community",
]


#: A community is an (ASN, value) pair, as in RFC 1997.
Community = Tuple[int, int]

#: Well-known community: do not propagate beyond the receiving AS.
NO_EXPORT: Community = (0xFFFF, 0xFF01)


@dataclass(frozen=True)
class Announcement:
    """A reachability announcement for one prefix.

    ``as_path`` is ordered nearest-first: ``as_path[0]`` is the neighbour
    that sent the message, ``as_path[-1]`` the origin.
    """

    prefix: Prefix
    as_path: Tuple[int, ...]
    communities: FrozenSet[Community] = frozenset()

    def __post_init__(self) -> None:
        if not self.as_path:
            raise ValueError("announcement must carry a non-empty AS path")

    @property
    def origin(self) -> int:
        return self.as_path[-1]

    def has_loop(self, asn: int) -> bool:
        """True if ``asn`` already appears in the AS path (must be rejected)."""
        return asn in self.as_path

    def prepended_by(self, asn: int) -> "Announcement":
        """The announcement as re-advertised by ``asn``."""
        if self.has_loop(asn):
            raise ValueError(f"AS{asn} cannot prepend itself onto {self.as_path}")
        return Announcement(
            prefix=self.prefix,
            as_path=(asn,) + self.as_path,
            communities=self.communities,
        )

    def with_communities(self, communities: FrozenSet[Community]) -> "Announcement":
        return Announcement(self.prefix, self.as_path, frozenset(communities))


@dataclass(frozen=True)
class Withdrawal:
    """A withdrawal of reachability for one prefix."""

    prefix: Prefix


@dataclass(frozen=True)
class UpdateMessage:
    """An UPDATE as sent over one BGP session.

    ``sender`` is the ASN of the session peer that emitted the message;
    ``payload`` is either an :class:`Announcement` or a :class:`Withdrawal`.
    """

    sender: int
    payload: Union[Announcement, Withdrawal]

    @property
    def prefix(self) -> Prefix:
        return self.payload.prefix

    @property
    def is_withdrawal(self) -> bool:
        return isinstance(self.payload, Withdrawal)
