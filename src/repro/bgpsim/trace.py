"""Month-scale BGP trace generation at route collectors.

This engine reproduces the *measurement substrate* of §4: a month of BGP
updates as seen from 4 collectors over 70+ eBGP sessions.  It drives the
Gao-Rexford routing model (:mod:`repro.asgraph.routing`) around an injected
event schedule and logs, per collector session, the UPDATE records a RIPE
collector would have archived.

Fidelity/performance trade-off: instead of flooding individual UPDATE
messages for a month (what :mod:`repro.bgpsim.simulator` does, and what is
intractable at month × thousands-of-prefixes scale), the engine recomputes
*stable* routing outcomes around each event and emits the per-session diffs,
optionally preceded by short-lived path-exploration transients.  Everything
the paper measures — path-change counts, AS-level exposure with a dwell
filter, session resets — is a function of exactly these streams.

Event model (all rates seeded and configurable):

- **Core link outages**: tier-1/tier-2 links fail and recover; they affect
  many prefixes at once.
- **Per-prefix traffic-engineering switches**: an origin re-homes the
  announcement of a prefix onto one of its provider links (or back to all
  of them); switch rates are heavy-tailed (lognormal), with Tor prefixes
  drawn from a higher-rate distribution and a small set of extreme
  flappers — the hosting-provider instability §4 measures ("Tor prefixes
  tend to see more path changes than normal BGP prefixes", with one prefix
  2000x above the median).
- **Prepend churn**: AS-PATH-only re-advertisements (origin prepending
  for TE) that the paper's AS-*set* change definition deliberately
  ignores — they exercise the counting rule without moving any statistic.
- **Session resets**: a collector session drops and re-learns the full
  table, generating the artificial updates the methodology removes.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import random
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro import obs
from repro.analysis.prefixes import Prefix
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.topology import ASGraph
from repro.bgpsim.collector import (
    Collector,
    SessionId,
    StreamEvent,
    UpdateRecord,
    UpdateStream,
)
from repro.bgpsim.stream import replay

__all__ = [
    "TraceConfig",
    "TraceEngine",
    "TraceStream",
    "MonthTrace",
    "MonthTraceBuilder",
    "TraceEvent",
]

_DAY = 86_400.0
_Link = FrozenSet[int]


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for the month-long trace; defaults mirror §4's setting."""

    duration_days: float = 31.0
    collector_names: Sequence[str] = ("rrc00", "rrc01", "rrc03", "rrc04")
    sessions_per_collector: int = 18  # 4 x 18 = 72 > "more than 70 eBGP sessions"

    #: mean core-link outages per day across the whole topology.  Outages
    #: hit transit links *below* the tier-1 clique: failures inside the
    #: default-free zone are rare and would flood every prefix at once.
    core_outages_per_day: float = 2.0
    core_outage_mean_hours: float = 3.0

    #: lognormal parameters for per-prefix TE-switch counts over the month
    background_flaps_median: float = 1.0
    tor_flaps_median: float = 4.0
    flaps_sigma: float = 1.1
    #: fraction of Tor prefixes that are extreme flappers, and their rate
    #: multiplier range; one designated prefix additionally gets
    #: ``super_flapper_multiplier`` — the 178.239.176.0/20 cameo of
    #: Figure 3 (left), which alone saw >2000x the median
    tor_extreme_fraction: float = 0.02
    tor_extreme_multiplier: Tuple[float, float] = (20.0, 150.0)
    super_flapper_multiplier: float = 400.0
    #: probability a TE switch returns to announcing via all providers
    flap_all_providers_prob: float = 0.3

    #: mean AS-path-prepending events per prefix over the trace — updates
    #: whose AS-PATH changes (origin repeated for TE) but whose AS *set*
    #: does not; §4's path-change definition deliberately ignores them
    prepend_events_per_prefix: float = 0.5

    #: mean session resets per session over the whole month
    resets_per_session: float = 1.5

    #: probability that a routing change is preceded by a short-lived
    #: exploration transient at a session, and how long it lingers
    transient_prob: float = 0.35
    transient_delay_range: Tuple[float, float] = (1.0, 15.0)
    settle_delay_range: Tuple[float, float] = (20.0, 120.0)

    #: session "richness" (fraction of prefixes it carries): lognormal-ish
    #: spread so per-session Tor-prefix counts have median ~35% and max ~99%
    session_richness_range: Tuple[float, float] = (0.05, 0.99)
    session_richness_median: float = 0.35
    #: per-prefix visibility (fraction of sessions that carry it): mean ~0.4,
    #: capped at 0.6, per §4's "received on 40% of them with a maximum of 60%"
    prefix_visibility_range: Tuple[float, float] = (0.2, 0.6)

    #: LRU cap on the relevance-filtered route cache (entries; each holds
    #: one vantage-path table).  Month-scale runs over many origins churn
    #: through far more (origin, excluded) keys than they revisit.
    route_cache_cap: int = 4096
    #: LRU cap on live per-origin routing sessions
    session_cache_cap: int = 256
    #: answer route-cache misses from stateful incremental sessions
    #: (:meth:`repro.asgraph.engine.RoutingEngine.session`) instead of full
    #: per-origin propagations.  Takes effect with the fast kernel; mainly
    #: an ablation/debugging escape hatch.
    incremental: bool = True

    #: width of the replay windows the streaming pipeline is chopped into
    window_seconds: float = _DAY
    #: honest memory bound: a single replay window holding more events
    #: than this raises :class:`repro.bgpsim.stream.WindowOverflowError`
    #: instead of growing without limit
    max_window_events: int = 5_000_000

    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.sessions_per_collector < 1 or not self.collector_names:
            raise ValueError("need at least one collector session")
        if not 0 <= self.transient_prob <= 1:
            raise ValueError("transient_prob must be a probability")
        if self.route_cache_cap < 1 or self.session_cache_cap < 1:
            raise ValueError("cache caps must be positive")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.max_window_events < 1:
            raise ValueError("max_window_events must be positive")

    @property
    def duration(self) -> float:
        return self.duration_days * _DAY


@dataclass(frozen=True)
class TraceEvent:
    """Ground-truth record of one injected event (for tests/diagnostics)."""

    time: float
    kind: str  # "core_fail" | "core_recover" | "te_switch" | "prepend" | "reset"
    detail: Tuple


@dataclass
class MonthTrace:
    """The output of a :class:`TraceEngine` run."""

    streams: Dict[SessionId, UpdateStream]
    collectors: List[Collector]
    prefix_origins: Dict[Prefix, int]
    tor_prefixes: FrozenSet[Prefix]
    duration: float
    events: List[TraceEvent]
    #: ground truth: which prefixes each session carries
    session_prefixes: Dict[SessionId, FrozenSet[Prefix]]
    #: synthetic full-visibility vantage sessions (clients/destinations of
    #: the §3.1 analysis), disjoint from the collector sessions
    observer_sessions: List[SessionId] = field(default_factory=list)

    @property
    def sessions(self) -> List[SessionId]:
        return sorted(self.streams)

    @property
    def collector_sessions(self) -> List[SessionId]:
        """Real collector sessions only — what §4's statistics run over."""
        observers = set(self.observer_sessions)
        return sorted(s for s in self.streams if s not in observers)

    def observer_stream(self, asn: int) -> UpdateStream:
        """The full-visibility stream of observer AS ``asn``."""
        session = ("observer", asn)
        if session not in self.streams:
            raise KeyError(f"AS{asn} was not registered as an observer")
        return self.streams[session]

    def tor_streams_nonempty(self) -> bool:
        """§4: "All sessions learned at least one Tor prefix"."""
        return all(
            any(p in self.tor_prefixes for p in prefixes)
            for prefixes in self.session_prefixes.values()
        )


class TraceEngine:
    """Generates a :class:`MonthTrace` over a topology and prefix set."""

    def __init__(
        self,
        graph: ASGraph,
        prefix_origins: Mapping[Prefix, int],
        tor_prefixes: Iterable[Prefix],
        config: TraceConfig = TraceConfig(),
        observer_asns: Sequence[int] = (),
        *,
        engine: Optional[RoutingEngine] = None,
    ) -> None:
        self.graph = graph
        #: kernel facade; the process-wide engine by default, so repeated
        #: runs over the same world (countermeasure ablations, seed sweeps
        #: that share a topology) reuse routing outcomes across runs
        self.engine = engine if engine is not None else shared_engine()
        self.prefix_origins: Dict[Prefix, int] = dict(prefix_origins)
        self.tor_prefixes: FrozenSet[Prefix] = frozenset(tor_prefixes)
        missing = [p for p in self.tor_prefixes if p not in self.prefix_origins]
        if missing:
            raise ValueError(f"tor prefixes without an origin: {missing[:3]}...")
        for prefix, origin in self.prefix_origins.items():
            if origin not in graph:
                raise ValueError(f"origin AS{origin} of {prefix} not in topology")
        self.config = config
        self.observer_asns = list(observer_asns)
        for asn in self.observer_asns:
            if asn not in graph:
                raise ValueError(f"observer AS{asn} not in topology")
        self._rng = random.Random(config.seed)
        # relevance-filtered route cache (LRU, capped by
        # config.route_cache_cap):
        # (origin, relevant_excluded) -> ({vantage: path|None}, links_used)
        self._route_cache: "OrderedDict[Tuple[int, FrozenSet[_Link]], Tuple[Dict[int, Optional[Tuple[int, ...]]], FrozenSet[_Link]]]" = OrderedDict()
        # live incremental routing sessions keyed by origin (LRU, capped
        # by config.session_cache_cap): core-epoch events become subtree
        # patches inside a session instead of fresh propagations.  The
        # shared serve-tier pool replaced the old private OrderedDict;
        # the historical trace.sessions.* counter names are kept.
        # Imported lazily: repro.serve pulls in repro.persist, which
        # imports this module.
        from repro.serve.pool import SessionPool

        self._pool = SessionPool(
            graph,
            engine=self.engine,
            cap=config.session_cache_cap,
            counter_prefix="trace.sessions",
        )
        #: sessions only help on the mutable flat-array substrate
        self._use_sessions = config.incremental and self.engine.kernel == "fast"
        self._vantages: List[int] = []
        self._vantage_targets: FrozenSet[int] = frozenset()
        self._sessions_by_prefix: Dict[Prefix, List[SessionId]] = {}
        self._prefix_links: Dict[Prefix, FrozenSet[_Link]] = {}
        # reverse index of _prefix_links: link -> prefixes whose current
        # vantage paths cross it (maintained by _set_prefix_links)
        self._link_prefixes: Dict[_Link, Set[Prefix]] = {}

    # -- public API ----------------------------------------------------------

    def run(self) -> MonthTrace:
        """Generate the full month of collector streams.

        Replay-backed: opens the streaming generator (:meth:`open_stream`)
        and materializes it through a :class:`MonthTraceBuilder`, one
        bounded window at a time — bit-identical to the pre-refactor
        materialize-then-sort path (:meth:`run_materialized`, kept as the
        equivalence reference).
        """
        cfg = self.config
        with obs.span(
            "trace.run",
            prefixes=len(self.prefix_origins),
            tor_prefixes=len(self.tor_prefixes),
            duration_days=cfg.duration_days,
        ) as run_span:
            stream = self.open_stream()
            builder = MonthTraceBuilder(stream)
            replay(
                stream,
                builder,
                window_seconds=cfg.window_seconds,
                duration=cfg.duration,
                max_window_events=cfg.max_window_events,
            )
            trace = builder.build()
            run_span.set(
                events=len(trace.events),
                records=sum(len(s) for s in trace.streams.values()),
                sessions=len(trace.streams),
            )
            return trace

    def open_stream(self) -> "TraceStream":
        """Open the trace as a one-shot event stream.

        Does the eager, bounded-size work up front — vantage roster,
        visibility, the t=0 table, the event schedule (all the ground
        truth a consumer may want before replaying) — and defers the
        expensive part, routing around every scheduled event, to the
        returned stream's iterator.  Records surface in globally
        nondecreasing time order without the full trace ever being held:
        an internal heap re-orders the in-flight records (each event
        emits with bounded settle/transient delay, so only a small
        horizon is ever buffered).

        Consuming the iterator advances this engine's RNG and caches, so
        a stream can be opened and drained once per engine run.
        """
        cfg = self.config
        emitter = _HeapEmitter()
        prep = self._prepare(emitter)

        def iterate() -> Iterator[StreamEvent]:
            for time, kind, detail in prep.schedule:
                for event in emitter.drain(time, cfg.duration):
                    yield event
                self._apply_event(time, kind, detail, prep, emitter)
            for event in emitter.drain(None, cfg.duration):
                yield event

        return TraceStream(
            collectors=prep.collectors,
            prefix_origins=dict(self.prefix_origins),
            tor_prefixes=self.tor_prefixes,
            duration=cfg.duration,
            events=prep.events_gt,
            session_prefixes=prep.session_prefixes,
            observer_sessions=prep.observer_sessions,
            sessions=prep.sessions,
            fingerprint=self._fingerprint(),
            iterator=iterate(),
        )

    def run_materialized(self) -> MonthTrace:
        """The pre-refactor materialize-then-sort path.

        Collects every pending record in one list, sorts it, and builds
        the streams — exactly what :meth:`run` did before the streaming
        refactor.  Kept (deprecated) as the reference side of the
        bit-identical equivalence gate in ``benchmarks/bench_stream.py``;
        new code should use :meth:`run` or :meth:`open_stream`.
        """
        warnings.warn(
            "run_materialized() is the pre-refactor reference path kept for "
            "equivalence gates; use run() (replay-backed) or open_stream()",
            DeprecationWarning,
            stacklevel=2,
        )
        cfg = self.config
        with obs.span(
            "trace.run",
            prefixes=len(self.prefix_origins),
            tor_prefixes=len(self.tor_prefixes),
            duration_days=cfg.duration_days,
        ) as run_span:
            pending: List[Tuple[float, UpdateRecord, SessionId]] = []
            prep = self._prepare(pending)
            with obs.span("trace.events", scheduled=len(prep.schedule)):
                for time, kind, detail in prep.schedule:
                    self._apply_event(time, kind, detail, prep, pending)

            streams: Dict[SessionId, UpdateStream] = {
                s: UpdateStream(s) for s in prep.sessions
            }
            pending.sort(key=lambda item: item[0])
            for emit_time, record, session in pending:
                if emit_time > cfg.duration:
                    continue
                streams[session].append(
                    UpdateRecord(
                        emit_time, record.prefix, record.as_path, record.from_reset
                    )
                )

            trace = MonthTrace(
                streams=streams,
                collectors=prep.collectors,
                prefix_origins=dict(self.prefix_origins),
                tor_prefixes=self.tor_prefixes,
                duration=cfg.duration,
                events=prep.events_gt,
                session_prefixes=prep.session_prefixes,
                observer_sessions=prep.observer_sessions,
            )
            run_span.set(
                events=len(trace.events),
                records=sum(len(s) for s in trace.streams.values()),
                sessions=len(trace.streams),
            )
            return trace

    # -- generation ----------------------------------------------------------

    def _fingerprint(self) -> str:
        """Identity of this engine's generated stream (for resume checks).

        Folds the graph fingerprint, the full config, the prefix table,
        and the observer roster — everything the stream's contents depend
        on besides the code itself.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.engine.fingerprint(self.graph).encode())
        digest.update(repr(self.config).encode())
        for prefix in sorted(self.prefix_origins, key=str):
            tor = int(prefix in self.tor_prefixes)
            digest.update(
                f"{prefix}|{self.prefix_origins[prefix]}|{tor};".encode()
            )
        digest.update(repr(sorted(self.observer_asns)).encode())
        return digest.hexdigest()

    def _prepare(self, pending) -> "_PreparedRun":
        """Everything before the event loop, in RNG-draw order.

        Builds the vantage roster, visibility, the t=0 initial table
        (emitted into ``pending``), and the event schedule.  ``pending``
        is any object with ``append((time, record, session))`` — a plain
        list for the materialized path, a :class:`_HeapEmitter` for the
        streaming path — so both paths consume the RNG identically.
        """
        rng = self._rng

        with obs.span("trace.collectors"):
            collectors = self._build_collectors()
        observer_sessions: List[SessionId] = [
            ("observer", asn) for asn in self.observer_asns
        ]
        collector_session_ids: List[SessionId] = [
            s.session_id for c in collectors for s in c.sessions
        ]
        self._vantages = sorted(
            {s.peer_asn for c in collectors for s in c.sessions}
            | set(self.observer_asns)
        )
        self._vantage_targets = frozenset(self._vantages)
        sessions: List[SessionId] = collector_session_ids + observer_sessions

        with obs.span("trace.visibility"):
            session_prefixes = self._assign_visibility(collector_session_ids)
        all_prefixes = frozenset(self.prefix_origins)
        for session in observer_sessions:
            session_prefixes[session] = all_prefixes
        # Inverted index: which sessions carry each prefix (static).
        sessions_by_prefix: Dict[Prefix, List[SessionId]] = {p: [] for p in all_prefixes}
        for session in sessions:
            for prefix in session_prefixes[session]:
                sessions_by_prefix[prefix].append(session)
        self._sessions_by_prefix = sessions_by_prefix
        # Per-prefix union of links on its current vantage paths (for
        # core-event impact queries), plus its reverse index.
        self._prefix_links = {}
        self._link_prefixes = {}
        events_gt: List[TraceEvent] = []

        # Current state.  Per-prefix exclusions are the provider links the
        # prefix is currently NOT announced through (TE state).
        excluded_core: Set[_Link] = set()
        prefix_excluded: Dict[Prefix, FrozenSet[_Link]] = {
            p: frozenset() for p in self.prefix_origins
        }
        current_path: Dict[Tuple[SessionId, Prefix], Optional[Tuple[int, ...]]] = {}

        # t=0: initial table (the month's "first path" baseline).
        with obs.span("trace.initial_table"):
            for prefix, origin in self.prefix_origins.items():
                paths, links = self._vantage_paths(origin, frozenset(), frozenset())
                self._set_prefix_links(prefix, links)
                for session in sessions_by_prefix[prefix]:
                    path = paths.get(session[1])
                    current_path[(session, prefix)] = path
                    if path is not None:
                        pending.append(
                            (rng.uniform(0.0, 60.0), UpdateRecord(0.0, prefix, path), session)
                        )

        # Build the event schedule (resets only hit real collector sessions).
        with obs.span("trace.schedule"):
            schedule = self._build_schedule(
                session_ids=collector_session_ids, events_gt=events_gt
            )
        events_gt.sort(key=lambda e: e.time)

        return _PreparedRun(
            collectors=collectors,
            observer_sessions=observer_sessions,
            sessions=sessions,
            session_prefixes=session_prefixes,
            schedule=schedule,
            events_gt=events_gt,
            excluded_core=excluded_core,
            prefix_excluded=prefix_excluded,
            current_path=current_path,
        )

    def _apply_event(
        self, time: float, kind: str, detail: object, prep: "_PreparedRun", pending
    ) -> None:
        """Route around one scheduled event, emitting diffs into ``pending``."""
        obs.add(f"trace.events.{kind}")
        if kind == "core_fail":
            link = detail
            affected = self._prefixes_using_link(link)
            prep.core_affected[link] = affected
            prep.excluded_core.add(link)
            self._reroute(
                affected, time, kind, prep.excluded_core, prep.prefix_excluded,
                prep.session_prefixes, prep.current_path, pending,
            )
        elif kind == "core_recover":
            link = detail
            prep.excluded_core.discard(link)
            affected = prep.core_affected.pop(link, set())
            self._reroute(
                affected, time, kind, prep.excluded_core, prep.prefix_excluded,
                prep.session_prefixes, prep.current_path, pending,
            )
        elif kind == "te_switch":
            prefix, links = detail
            prep.prefix_excluded[prefix] = links
            self._reroute(
                {prefix}, time, kind, prep.excluded_core, prep.prefix_excluded,
                prep.session_prefixes, prep.current_path, pending,
            )
        elif kind == "prepend":
            prefix = detail
            # Re-advertise the current path with the origin prepended
            # once more: a pure AS-PATH change, no AS-set change.
            for session in self._sessions_by_prefix[prefix]:
                path = prep.current_path.get((session, prefix))
                if path is not None:
                    pending.append(
                        (
                            time + self._rng.uniform(0.0, 60.0),
                            UpdateRecord(0.0, prefix, path + (path[-1],)),
                            session,
                        )
                    )
        elif kind == "reset":
            session = detail
            offset = 0.0
            for prefix in sorted(prep.session_prefixes[session], key=str):
                path = prep.current_path.get((session, prefix))
                if path is not None:
                    offset += self._rng.uniform(0.01, 0.05)
                    pending.append(
                        (
                            time + offset,
                            UpdateRecord(0.0, prefix, path, from_reset=True),
                            session,
                        )
                    )
        else:  # pragma: no cover - schedule only emits known kinds
            raise AssertionError(f"unknown event kind {kind}")

    # -- construction helpers -----------------------------------------------

    def _build_collectors(self) -> List[Collector]:
        """Pick vantage ASes: transit-heavy ASes give full-feed sessions."""
        cfg = self.config
        candidates = sorted(
            (asn for asn in self.graph.ases if self.graph.customers(asn)),
            key=lambda asn: (-self.graph.degree(asn), asn),
        )
        needed = len(cfg.collector_names) * cfg.sessions_per_collector
        if len(candidates) < needed:
            # Fall back to any AS to fill the roster on tiny topologies.
            extra = [asn for asn in sorted(self.graph.ases) if asn not in candidates]
            candidates = candidates + extra
        if len(candidates) < needed:
            raise ValueError(
                f"topology too small: need {needed} vantage ASes, have {len(candidates)}"
            )
        pool = candidates[: needed * 2]
        chosen = self._rng.sample(pool, needed) if len(pool) > needed else pool[:needed]
        collectors: List[Collector] = []
        for i, name in enumerate(cfg.collector_names):
            peers = chosen[i * cfg.sessions_per_collector : (i + 1) * cfg.sessions_per_collector]
            collectors.append(Collector(name, peers))
        return collectors

    def _assign_visibility(
        self, sessions: Sequence[SessionId]
    ) -> Dict[SessionId, FrozenSet[Prefix]]:
        """Decide which prefixes each session carries (partial feeds).

        Session richness and per-prefix visibility multiply into an
        inclusion probability, reproducing §4's marginals: a prefix is seen
        on ~40% of sessions (max 60%) while sessions range from sparse
        (a few % of prefixes) to near-full feeds.
        """
        cfg = self.config
        rng = self._rng
        lo_r, hi_r = cfg.session_richness_range
        # Draw richness so that the median lands near the configured value:
        # two-sided triangular-ish mixture around the median.
        richness: Dict[SessionId, float] = {}
        full_feed: Optional[SessionId] = sessions[0] if sessions else None
        for i, session in enumerate(sessions):
            if i == 0:
                richness[session] = hi_r  # the near-full feed ("max 99%")
            elif rng.random() < 0.5:
                richness[session] = rng.uniform(lo_r, cfg.session_richness_median)
            else:
                richness[session] = rng.uniform(cfg.session_richness_median, hi_r)
        lo_v, hi_v = cfg.prefix_visibility_range
        mean_v = (lo_v + hi_v) / 2.0
        visibility = {p: rng.uniform(lo_v, hi_v) for p in self.prefix_origins}
        mean_r = sum(richness.values()) / len(richness)

        carried: Dict[SessionId, Set[Prefix]] = {s: set() for s in sessions}
        for prefix, vis in visibility.items():
            for session in sessions:
                if session == full_feed:
                    # A true full-feed peer carries (nearly) everything,
                    # like the paper's best session with 99% of Tor prefixes.
                    p_include = hi_r
                else:
                    p_include = min(1.0, richness[session] * vis / (mean_r * mean_v) * mean_v)
                if rng.random() < p_include:
                    carried[session].add(prefix)
        # §4: every session learned at least one Tor prefix.
        tor_sorted = sorted(self.tor_prefixes, key=str)
        for session in sessions:
            if not carried[session] & self.tor_prefixes:
                carried[session].add(rng.choice(tor_sorted))
        return {s: frozenset(ps) for s, ps in carried.items()}

    def _build_schedule(
        self, session_ids: Sequence[SessionId], events_gt: List[TraceEvent]
    ) -> List[Tuple[float, str, object]]:
        """Poisson schedules for core outages, prefix flaps, and resets."""
        cfg = self.config
        rng = self._rng
        schedule: List[Tuple[float, str, object]] = []

        # Core links: transit links below the tier-1 clique (both endpoints
        # have customers, neither is provider-free).  Tier-1 adjacencies are
        # excluded: their failure would churn nearly every prefix at once,
        # which RIPE-scale traces do not show at a per-day cadence.
        core_links = [
            frozenset((a, b))
            for a, b, _rel in self.graph.links()
            if self.graph.customers(a)
            and self.graph.customers(b)
            and self.graph.providers(a)
            and self.graph.providers(b)
        ]
        if core_links and cfg.core_outages_per_day > 0:
            t = 0.0
            rate = cfg.core_outages_per_day / _DAY
            while True:
                t += rng.expovariate(rate)
                if t >= cfg.duration:
                    break
                link = rng.choice(core_links)
                duration = rng.expovariate(1.0 / (cfg.core_outage_mean_hours * 3600.0))
                end = min(t + max(duration, 60.0), cfg.duration - 1.0)
                if end <= t:
                    continue
                schedule.append((t, "core_fail", link))
                schedule.append((end, "core_recover", link))
                events_gt.append(TraceEvent(t, "core_fail", tuple(sorted(link))))
                events_gt.append(TraceEvent(end, "core_recover", tuple(sorted(link))))

        # Per-prefix TE flaps.
        tor_extreme = {
            p
            for p in self.tor_prefixes
            if rng.random() < cfg.tor_extreme_fraction
        }
        multihomed_tor = sorted(
            (
                p
                for p in self.tor_prefixes
                if len(self.graph.providers(self.prefix_origins[p])) >= 2
            ),
            key=str,
        )
        super_flapper = multihomed_tor[0] if multihomed_tor else None
        for prefix, origin in self.prefix_origins.items():
            providers = sorted(self.graph.providers(origin))
            if not providers:
                continue
            median = (
                cfg.tor_flaps_median if prefix in self.tor_prefixes else cfg.background_flaps_median
            )
            rate_month = rng.lognormvariate(math.log(median), cfg.flaps_sigma)
            if prefix == super_flapper:
                rate_month = median * cfg.super_flapper_multiplier
            elif prefix in tor_extreme:
                rate_month *= rng.uniform(*cfg.tor_extreme_multiplier)
            expected = rate_month
            t = 0.0
            lam = expected / cfg.duration
            if lam <= 0:
                continue
            if len(providers) < 2:
                continue  # single-homed origin: no TE to do
            while True:
                t += rng.expovariate(lam)
                if t >= cfg.duration:
                    break
                # A TE switch re-homes the announcement: either onto one
                # provider (others excluded) or back to all providers.
                if rng.random() < cfg.flap_all_providers_prob:
                    links: FrozenSet[_Link] = frozenset()
                    keep = "all"
                else:
                    keep_asn = rng.choice(providers)
                    links = frozenset(
                        frozenset((origin, p)) for p in providers if p != keep_asn
                    )
                    keep = keep_asn
                schedule.append((t, "te_switch", (prefix, links)))
                events_gt.append(TraceEvent(t, "te_switch", (str(prefix), keep)))

        # Prepend churn: TE that changes the AS-PATH but not the AS set.
        if cfg.prepend_events_per_prefix > 0:
            lam_prepend = cfg.prepend_events_per_prefix / cfg.duration
            for prefix in self.prefix_origins:
                t = 0.0
                while True:
                    t += rng.expovariate(lam_prepend)
                    if t >= cfg.duration:
                        break
                    schedule.append((t, "prepend", prefix))
                    events_gt.append(TraceEvent(t, "prepend", (str(prefix),)))

        # Session resets.
        if cfg.resets_per_session > 0:
            for session in session_ids:
                lam = cfg.resets_per_session / cfg.duration
                t = 0.0
                while True:
                    t += rng.expovariate(lam)
                    if t >= cfg.duration:
                        break
                    schedule.append((t, "reset", session))
                    events_gt.append(TraceEvent(t, "reset", session))

        schedule.sort(key=lambda item: (item[0], item[1]))
        return schedule

    # -- routing -----------------------------------------------------------------

    def _vantage_paths(
        self, origin: int, local: FrozenSet[_Link], global_excluded: FrozenSet[_Link]
    ) -> Tuple[Dict[int, Optional[Tuple[int, ...]]], FrozenSet[_Link]]:
        """Vantage paths to ``origin`` plus the union of links they cross.

        ``local`` are exclusions known to matter (the origin's own TE state,
        a transient's detour link); ``global_excluded`` is the full current
        exclusion set (core outages included).  Results are cached with
        *relevance filtering*: the cache key only grows with the excluded
        links the computed routes would otherwise cross.  Most core-link
        failures are irrelevant to most origins, so keying on the global
        state would recompute every origin on every core epoch.

        Soundness of the fixpoint: a route set computed under a subset
        ``E' ⊆ global`` whose paths avoid *all* of ``global`` is feasible
        under the full exclusion, and optimal under fewer constraints —
        hence optimal under the full exclusion too.
        """
        relevant = local
        while True:
            paths, links = self._paths_for_key(origin, relevant)
            violated = (global_excluded - relevant) & links
            if not violated:
                return paths, links
            relevant = relevant | violated

    def _paths_for_key(
        self, origin: int, excluded: FrozenSet[_Link]
    ) -> Tuple[Dict[int, Optional[Tuple[int, ...]]], FrozenSet[_Link]]:
        key = (origin, excluded)
        cache = self._route_cache
        cached = cache.get(key)
        if cached is not None:
            obs.add("trace.route_cache.hits")
            cache.move_to_end(key)
            return cached
        obs.add("trace.route_cache.misses")
        if self._use_sessions:
            # Borrow the origin's warm session, diffed onto this event's
            # exclusion set: unchanged links cost nothing, changed links
            # cost a subtree patch (or a provable no-op) instead of a
            # fresh propagation.
            with self._pool.borrow(origin, excluded=excluded) as session:
                paths = {v: session.path(v) for v in self._vantages}
        else:
            outcome = self.engine.outcome(
                self.graph,
                [origin],
                excluded_links=excluded,
                targets=self._vantage_targets,
            )
            paths = {v: outcome.path(v) for v in self._vantages}
        links: Set[_Link] = set()
        for path in paths.values():
            if path:
                for a, b in zip(path, path[1:]):
                    links.add(frozenset((a, b)))
        entry = (paths, frozenset(links))
        cache[key] = entry
        while len(cache) > self.config.route_cache_cap:
            cache.popitem(last=False)
            obs.add("trace.route_cache.evictions")
        obs.gauge("trace.route_cache.size", len(cache))
        return entry

    def _set_prefix_links(self, prefix: Prefix, links: FrozenSet[_Link]) -> None:
        """Record the links under a prefix's current vantage paths, keeping
        the link->prefixes reverse index in sync."""
        index = self._link_prefixes
        old = self._prefix_links.get(prefix, frozenset())
        for link in old - links:
            holders = index.get(link)
            if holders is not None:
                holders.discard(prefix)
                if not holders:
                    del index[link]
        for link in links - old:
            index.setdefault(link, set()).add(prefix)
        self._prefix_links[prefix] = links

    def _prefixes_using_link(self, link: _Link) -> Set[Prefix]:
        """Prefixes whose current vantage paths traverse ``link``.

        Answered from the reverse index maintained by
        :meth:`_set_prefix_links` — O(affected), not O(prefixes).  Returns
        a copy: the index keeps mutating as the affected prefixes reroute.
        """
        obs.add("trace.link_index.lookups")
        return set(self._link_prefixes.get(link, ()))

    def _reroute(
        self,
        prefixes: Iterable[Prefix],
        time: float,
        kind: str,
        excluded_core: Set[_Link],
        prefix_excluded: Dict[Prefix, FrozenSet[_Link]],
        session_prefixes: Dict[SessionId, FrozenSet[Prefix]],
        current_path: Dict[Tuple[SessionId, Prefix], Optional[Tuple[int, ...]]],
        pending: List[Tuple[float, UpdateRecord, SessionId]],
    ) -> None:
        """Recompute the given prefixes and emit diffs at affected sessions."""
        with obs.span("trace.reroute", kind=kind) as reroute_span:
            emitted_before = len(pending)
            self._reroute_prefixes(
                prefixes, time, excluded_core, prefix_excluded,
                session_prefixes, current_path, pending,
            )
            fanout = len(pending) - emitted_before
            reroute_span.set(prefixes=len(prefixes) if hasattr(prefixes, "__len__") else None,
                             updates=fanout)
            obs.observe("trace.reroute.updates", fanout)

    def _reroute_prefixes(
        self,
        prefixes: Iterable[Prefix],
        time: float,
        excluded_core: Set[_Link],
        prefix_excluded: Dict[Prefix, FrozenSet[_Link]],
        session_prefixes: Dict[SessionId, FrozenSet[Prefix]],
        current_path: Dict[Tuple[SessionId, Prefix], Optional[Tuple[int, ...]]],
        pending: List[Tuple[float, UpdateRecord, SessionId]],
    ) -> None:
        cfg = self.config
        rng = self._rng
        for prefix in prefixes:
            origin = self.prefix_origins[prefix]
            local = prefix_excluded[prefix]
            excluded = frozenset(excluded_core) | local
            paths, links = self._vantage_paths(origin, local, excluded)
            self._set_prefix_links(prefix, links)
            # One shared exploration tree per rerouted prefix: the routes
            # in force when a canonical next-hop link is unavailable
            # (vantages try alternates while the announcement wave
            # propagates).  The canonical link is a deterministic function
            # of the new route state, so the transient trees reuse the same
            # cache keys across events; per-event or per-session alternates
            # would be slightly more faithful but multiply the cache key
            # space (and the runtime) by the event and session counts.
            alt_paths: Optional[Dict[int, Optional[Tuple[int, ...]]]] = None
            detour = self._canonical_detour(paths)
            for session in self._sessions_by_prefix[prefix]:
                key = (session, prefix)
                new_path = paths.get(session[1])
                if current_path.get(key) == new_path:
                    continue
                settle = time + rng.uniform(*cfg.settle_delay_range)
                if (
                    new_path is not None
                    and detour is not None
                    and rng.random() < cfg.transient_prob
                    and len(new_path) > 1
                ):
                    if alt_paths is None:
                        alt_paths, _alt_links = self._vantage_paths(
                            origin, local | {detour}, excluded | {detour}
                        )
                    alt = alt_paths.get(session[1])
                    if alt is not None and alt != current_path.get(key) and alt != new_path:
                        t_transient = time + rng.uniform(*cfg.transient_delay_range)
                        if t_transient < settle:
                            pending.append(
                                (t_transient, UpdateRecord(0.0, prefix, alt), session)
                            )
                current_path[key] = new_path
                pending.append((settle, UpdateRecord(0.0, prefix, new_path), session))

    @staticmethod
    def _canonical_detour(
        paths: Dict[int, Optional[Tuple[int, ...]]]
    ) -> Optional[_Link]:
        """The first link of the lowest-numbered vantage's multi-hop path —
        a deterministic choice of which next hop the exploration transients
        pretend is briefly unavailable."""
        for vantage in sorted(paths):
            path = paths[vantage]
            if path is not None and len(path) > 1:
                return frozenset((path[0], path[1]))
        return None


@dataclass
class _PreparedRun:
    """Shared pre-event-loop state between the streaming and materialized
    paths: the vantage roster, schedule, and the mutable routing state the
    event loop folds over."""

    collectors: List[Collector]
    observer_sessions: List[SessionId]
    sessions: List[SessionId]
    session_prefixes: Dict[SessionId, FrozenSet[Prefix]]
    schedule: List[Tuple[float, str, object]]
    events_gt: List[TraceEvent]
    excluded_core: Set[_Link]
    prefix_excluded: Dict[Prefix, FrozenSet[_Link]]
    current_path: Dict[Tuple[SessionId, Prefix], Optional[Tuple[int, ...]]]
    #: prefixes each currently-failed core link displaced (filled by
    #: core_fail events, drained by the matching core_recover)
    core_affected: Dict[_Link, Set[Prefix]] = field(default_factory=dict)


class _HeapEmitter:
    """Min-heap ``pending`` sink that replays records in emission order.

    Drop-in for the materialized path's list: ``append`` takes the same
    ``(time, record, session)`` tuples, but :meth:`drain` pops everything
    due strictly before a watermark in ``(time, insertion order)`` order —
    exactly the order a stable sort of the full list would produce, which
    is what makes the streaming path bit-identical to the pre-refactor
    one.  Draining before each schedule event's time is safe because
    events only emit records at times at or after their own time.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, UpdateRecord, SessionId]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def append(self, item: Tuple[float, UpdateRecord, SessionId]) -> None:
        time, record, session = item
        heapq.heappush(self._heap, (time, self._seq, record, session))
        self._seq += 1

    def drain(
        self, before: Optional[float], duration: float
    ) -> Iterator[StreamEvent]:
        """Yield all buffered records due before ``before`` (all, if None),
        re-stamped with their emission time and filtered to the trace
        duration — the streaming equivalent of the final sort+filter."""
        heap = self._heap
        while heap and (before is None or heap[0][0] < before):
            emit_time, _seq, record, session = heapq.heappop(heap)
            if emit_time > duration:
                continue
            yield StreamEvent(
                session,
                UpdateRecord(emit_time, record.prefix, record.as_path, record.from_reset),
            )


class TraceStream:
    """A trace opened as a stream: eager metadata, lazy records.

    Everything a consumer may want before replaying — the collector
    roster, visibility ground truth, the injected-event ground truth, the
    engine fingerprint for checkpoint validation — is available
    immediately; iterating yields the trace's
    :class:`~repro.bgpsim.collector.StreamEvent` records in nondecreasing
    time order, computing routes as it goes.  One-shot: the underlying
    generator advances the engine's RNG, so a second iteration raises
    instead of silently producing a different trace.
    """

    def __init__(
        self,
        *,
        collectors: List[Collector],
        prefix_origins: Dict[Prefix, int],
        tor_prefixes: FrozenSet[Prefix],
        duration: float,
        events: List[TraceEvent],
        session_prefixes: Dict[SessionId, FrozenSet[Prefix]],
        observer_sessions: List[SessionId],
        sessions: List[SessionId],
        fingerprint: str,
        iterator: Iterator[StreamEvent],
    ) -> None:
        self.collectors = collectors
        self.prefix_origins = prefix_origins
        self.tor_prefixes = tor_prefixes
        self.duration = duration
        self.events = events
        self.session_prefixes = session_prefixes
        self.observer_sessions = observer_sessions
        self.sessions = sessions
        self.fingerprint = fingerprint
        self._iterator = iterator
        self._consumed = False

    @property
    def collector_sessions(self) -> List[SessionId]:
        """Real collector sessions only — what §4's statistics run over."""
        observers = set(self.observer_sessions)
        return sorted(s for s in self.sessions if s not in observers)

    def __iter__(self) -> Iterator[StreamEvent]:
        if self._consumed:
            raise RuntimeError(
                "TraceStream is one-shot (iterating advances the engine RNG); "
                "open a new stream to replay again"
            )
        self._consumed = True
        return self._iterator


class MonthTraceBuilder:
    """Windowed consumer that materializes a full :class:`MonthTrace`.

    The bridge from the streaming pipeline back to the materialized API:
    :meth:`TraceEngine.run` replays a :class:`TraceStream` through one of
    these.  Deliberately *not* checkpointable — it holds every record
    anyway, so resumable replay would only hide that cost;
    ``state``/``restore`` raise to keep it ineligible for
    ``checkpoint=``/``resume=`` replay.
    """

    def __init__(self, stream: TraceStream) -> None:
        self._stream = stream
        self._streams: Dict[SessionId, UpdateStream] = {
            s: UpdateStream(s) for s in stream.sessions
        }

    def consume(self, window) -> None:
        streams = self._streams
        for event in window.events:
            streams[event.session].append(event.record)

    def state(self) -> dict:
        raise NotImplementedError(
            "MonthTraceBuilder materializes the full trace and is not "
            "checkpointable; use a bounded consumer for resumable replay"
        )

    def restore(self, state: dict) -> None:
        raise NotImplementedError(
            "MonthTraceBuilder materializes the full trace and is not "
            "checkpointable; use a bounded consumer for resumable replay"
        )

    def build(self) -> MonthTrace:
        meta = self._stream
        return MonthTrace(
            streams=self._streams,
            collectors=meta.collectors,
            prefix_origins=meta.prefix_origins,
            tor_prefixes=meta.tor_prefixes,
            duration=meta.duration,
            events=meta.events,
            session_prefixes=meta.session_prefixes,
            observer_sessions=meta.observer_sessions,
        )
