"""Bounded-memory windowed replay over update-event streams.

The drive shaft of the streaming trace pipeline: an event source (a
:class:`~repro.bgpsim.trace.TraceStream`, a merged set of MRT readers, an
RFD-filtered transform — anything yielding time-ordered
:class:`~repro.bgpsim.collector.StreamEvent`) is chopped into consecutive
fixed-width time :class:`Window`\\ s, and a :class:`StreamConsumer` folds
each window into its running state.  Memory never exceeds one window of
events (plus the consumer's own aggregate), so a *year* of churn across
ten collectors replays in the same footprint as a day.

Replay positions are checkpointable through :mod:`repro.persist`'s JSONL
checkpoint format: after each completed window the consumer's serialized
state is appended, and :func:`replay` with ``resume=True`` restores the
last recorded state, fast-forwards the source past the completed span,
and continues — validated against a source fingerprint the same way
``repro.serve``'s cache snapshots refuse a mismatched topology.

Observability: ``trace.stream.records`` counts every event entering the
windower, ``trace.window.events`` gauges each window's size, and
``trace.window.peak_events`` tracks the high-water mark — the number the
bounded-memory benchmark gate asserts is flat in trace length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

try:
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from repro import obs
from repro.bgpsim.collector import StreamEvent

__all__ = [
    "DAY",
    "Window",
    "WindowOverflowError",
    "StreamConsumer",
    "ReplayReport",
    "iter_windows",
    "replay",
    "REPLAY_EXPERIMENT",
]

DAY = 86_400.0

#: experiment name stamped into replay checkpoint headers
REPLAY_EXPERIMENT = "stream-replay"


class WindowOverflowError(RuntimeError):
    """A single replay window exceeded the configured event cap.

    Raised *instead of* silently growing without bound: a mis-sized
    window (or a pathological burst) should fail loudly with the window
    boundaries and the cap, not OOM the host.
    """


@dataclass
class Window:
    """One contiguous time slice of the merged event stream.

    Half-open span ``[start, end)``; ``events`` are time-ordered and all
    fall inside the span.  Windows arrive consecutively (``index``
    increments by one, empty windows included) so consumers can reason
    about elapsed time even through quiet periods.
    """

    index: int
    start: float
    end: float
    events: List[StreamEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)


class StreamConsumer(Protocol):
    """A windowed consumer of the replay driver.

    ``consume`` folds one window into the consumer's running aggregate.
    ``state``/``restore`` round-trip that aggregate through JSON for
    checkpointable replay; consumers that cannot sensibly serialize
    (e.g. the materializing :class:`~repro.bgpsim.trace.MonthTraceBuilder`)
    should raise ``NotImplementedError`` from both, which simply makes
    them ineligible for ``checkpoint=``/``resume=`` replay.
    """

    def consume(self, window: Window) -> None: ...  # pragma: no cover

    def state(self) -> dict: ...  # pragma: no cover

    def restore(self, state: dict) -> None: ...  # pragma: no cover


def iter_windows(
    events: Iterable[StreamEvent],
    *,
    window_seconds: float = DAY,
    duration: Optional[float] = None,
    max_window_events: Optional[int] = None,
    start_index: int = 0,
) -> Iterator[Window]:
    """Chop a time-ordered event stream into consecutive windows.

    Yields every window from ``start_index`` on — including empty ones —
    up to ``duration`` when given (so a consumer sampling on window
    boundaries sees the full measured span even if the tail is quiet),
    or up to the last event otherwise.  Holds at most one window of
    events; ``max_window_events`` bounds that honestly with a
    :class:`WindowOverflowError` naming the offending window.

    ``start_index`` offsets the windowing for resumed replays: window
    ``i`` always covers ``[i * window_seconds, (i + 1) * window_seconds)``
    regardless of where iteration starts.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    if max_window_events is not None and max_window_events < 1:
        raise ValueError("max_window_events must be positive")

    index = start_index
    current = Window(
        index=index,
        start=index * window_seconds,
        end=(index + 1) * window_seconds,
    )
    peak = 0

    def finish(window: Window) -> Window:
        nonlocal peak
        obs.add("trace.stream.records", len(window.events))
        obs.gauge("trace.window.events", len(window.events))
        if len(window.events) > peak:
            peak = len(window.events)
            obs.gauge("trace.window.peak_events", peak)
        return window

    for event in events:
        time = event.time
        if time < current.start:
            raise ValueError(
                f"event at {time} precedes window {current.index} "
                f"[{current.start}, {current.end}) — stream not time-ordered "
                "or resume position wrong"
            )
        while time >= current.end:
            yield finish(current)
            index += 1
            current = Window(
                index=index,
                start=index * window_seconds,
                end=(index + 1) * window_seconds,
            )
        current.events.append(event)
        if max_window_events is not None and len(current.events) > max_window_events:
            raise WindowOverflowError(
                f"window {current.index} [{current.start}, {current.end}) "
                f"exceeds max_window_events={max_window_events}; widen the "
                "cap or shrink window_seconds"
            )
    # Tail: flush the in-progress window (unless it is an empty window
    # already past the measured span — a resume of a completed replay
    # starts there), then pad with empty windows to cover the full
    # duration when one is known.
    if current.events or duration is None or current.start < duration:
        yield finish(current)
    if duration is not None:
        while current.end < duration:
            index += 1
            current = Window(
                index=index,
                start=index * window_seconds,
                end=(index + 1) * window_seconds,
            )
            yield finish(current)


@dataclass(frozen=True)
class ReplayReport:
    """What one :func:`replay` drive did."""

    windows: int
    records: int
    peak_window_events: int
    #: windows restored from the checkpoint instead of replayed
    resumed_windows: int
    #: end time of the last window processed
    end: float
    checkpoint: Optional[str] = None


def replay(
    source,
    consumer: StreamConsumer,
    *,
    window_seconds: float = DAY,
    duration: Optional[float] = None,
    max_window_events: Optional[int] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    fingerprint: Optional[str] = None,
) -> ReplayReport:
    """Drive ``consumer`` over ``source`` one window at a time.

    ``source`` is any iterable of time-ordered
    :class:`~repro.bgpsim.collector.StreamEvent`; if it exposes
    ``duration`` / ``fingerprint`` attributes (as
    :class:`~repro.bgpsim.trace.TraceStream` does) they become the
    defaults for the matching keywords.

    With ``checkpoint=``, the consumer's serialized state is appended
    after every completed window (:mod:`repro.persist` JSONL checkpoint,
    flushed per record, torn-tail tolerant).  With ``resume=True``, the
    last recorded window's state is restored, the source is
    fast-forwarded past the completed span, and replay continues —
    refusing a checkpoint whose fingerprint does not match the source
    (same contract as ``repro.serve``'s snapshot restore).  A resumed
    replay is bit-identical to an uninterrupted one for any consumer
    whose ``state``/``restore`` round-trip is faithful.
    """
    from repro import persist  # lazy: persist imports bgpsim modules

    if duration is None:
        duration = getattr(source, "duration", None)
    if fingerprint is None:
        fingerprint = getattr(source, "fingerprint", None)

    header = {
        "experiment": REPLAY_EXPERIMENT,
        # The fingerprint rides in the seed slot: CheckpointWriter.resume
        # compares it exactly, refusing a mismatched source.
        "seed": fingerprint,
        "params": {
            "window_seconds": window_seconds,
            "duration": duration,
        },
    }

    writer: Optional[persist.CheckpointWriter] = None
    resumed_windows = 0
    start_index = 0
    skip_before: Optional[float] = None
    events: Iterable[StreamEvent] = iter(source)

    with obs.span(
        "trace.replay", window_seconds=window_seconds, resume=resume
    ) as replay_span:
        try:
            if checkpoint is not None:
                if resume:
                    writer, recorded = persist.CheckpointWriter.resume(
                        checkpoint, header
                    )
                    if recorded:
                        last = recorded[-1]
                        result = last["result"]
                        consumer.restore(result["state"])
                        skip_before = float(result["end"])
                        start_index = int(last["index"]) + 1
                        resumed_windows = len(recorded)
                else:
                    writer = persist.CheckpointWriter.create(checkpoint, header)

            if skip_before is not None:
                events = _skip_events(events, skip_before)

            windows = 0
            records = 0
            peak = 0
            end = float(start_index) * window_seconds
            for window in iter_windows(
                events,
                window_seconds=window_seconds,
                duration=duration,
                max_window_events=max_window_events,
                start_index=start_index,
            ):
                consumer.consume(window)
                windows += 1
                records += len(window.events)
                peak = max(peak, len(window.events))
                end = window.end
                if writer is not None:
                    writer.append(
                        {
                            "type": "trial",
                            "id": f"window-{window.index}",
                            "index": window.index,
                            "result": {
                                "start": window.start,
                                "end": window.end,
                                "records": len(window.events),
                                "state": consumer.state(),
                            },
                        }
                    )
        finally:
            if writer is not None:
                writer.close()
        replay_span.set(
            windows=windows,
            records=records,
            peak_window_events=peak,
            resumed_windows=resumed_windows,
        )

    return ReplayReport(
        windows=windows,
        records=records,
        peak_window_events=peak,
        resumed_windows=resumed_windows,
        end=end,
        checkpoint=checkpoint,
    )


def _skip_events(
    events: Iterable[StreamEvent], before: float
) -> Iterator[StreamEvent]:
    """Drop events with ``time < before`` (the resumed span's records)."""
    for event in events:
        if event.time >= before:
            yield event
            break
    for event in events:
        yield event
