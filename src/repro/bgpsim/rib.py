"""Routing Information Bases and the BGP decision process.

Each simulated AS keeps one Adj-RIB-In per neighbour session and a Loc-RIB
of selected best routes.  The decision process implements the Gao-Rexford
preference order used throughout the library: local preference by business
relationship (customer > peer > provider), then shortest AS path, then
lowest neighbour ASN as the deterministic tiebreak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.prefixes import Prefix
from repro.asgraph.relationships import RouteKind
from repro.bgpsim.messages import Announcement

__all__ = ["RibEntry", "AdjRibIn", "LocRib", "decision_process"]


@dataclass(frozen=True)
class RibEntry:
    """A candidate route: an announcement plus how it was learned."""

    announcement: Announcement
    learned_from: int
    kind: RouteKind

    @property
    def as_path(self) -> Tuple[int, ...]:
        return self.announcement.as_path

    def preference_key(self) -> Tuple[int, int, int]:
        """Sort key: lower is better (kind, path length, neighbour ASN)."""
        return (int(self.kind), len(self.as_path), self.learned_from)


class AdjRibIn:
    """Per-neighbour store of the routes a neighbour has advertised."""

    def __init__(self) -> None:
        # neighbour -> prefix -> entry
        self._entries: Dict[int, Dict[Prefix, RibEntry]] = {}

    def update(self, entry: RibEntry) -> None:
        self._entries.setdefault(entry.learned_from, {})[entry.announcement.prefix] = entry

    def withdraw(self, neighbour: int, prefix: Prefix) -> bool:
        """Remove a route; returns True if one was present."""
        table = self._entries.get(neighbour)
        if table is None:
            return False
        return table.pop(prefix, None) is not None

    def clear_neighbour(self, neighbour: int) -> List[Prefix]:
        """Drop all routes from a neighbour (session failure); returns prefixes."""
        table = self._entries.pop(neighbour, None)
        if table is None:
            return []
        return list(table)

    def candidates(self, prefix: Prefix) -> List[RibEntry]:
        """All stored candidate routes for a prefix."""
        return [
            table[prefix]
            for table in self._entries.values()
            if prefix in table
        ]

    def route_from(self, neighbour: int, prefix: Prefix) -> Optional[RibEntry]:
        return self._entries.get(neighbour, {}).get(prefix)

    def prefixes(self) -> Iterable[Prefix]:
        seen = set()
        for table in self._entries.values():
            for prefix in table:
                if prefix not in seen:
                    seen.add(prefix)
                    yield prefix


class LocRib:
    """The selected best route per prefix."""

    def __init__(self) -> None:
        self._best: Dict[Prefix, RibEntry] = {}

    def best(self, prefix: Prefix) -> Optional[RibEntry]:
        return self._best.get(prefix)

    def install(self, prefix: Prefix, entry: Optional[RibEntry]) -> bool:
        """Install a new best route (or None); returns True if it changed."""
        current = self._best.get(prefix)
        if entry is None:
            if current is None:
                return False
            del self._best[prefix]
            return True
        if current is not None and current == entry:
            return False
        self._best[prefix] = entry
        return True

    def prefixes(self) -> Iterable[Prefix]:
        return self._best.keys()

    def items(self) -> Iterable[Tuple[Prefix, RibEntry]]:
        return self._best.items()

    def __len__(self) -> int:
        return len(self._best)


def decision_process(candidates: Iterable[RibEntry]) -> Optional[RibEntry]:
    """Select the best route among candidates (None if there are none).

    Preference: lowest :class:`RouteKind` (customer-learned beats peer beats
    provider), then shortest AS path, then lowest neighbour ASN.
    """
    best: Optional[RibEntry] = None
    best_key: Optional[Tuple[int, int, int]] = None
    for entry in candidates:
        key = entry.preference_key()
        if best_key is None or key < best_key:
            best, best_key = entry, key
    return best
