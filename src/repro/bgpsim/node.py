"""A single BGP-speaking AS: sessions, policy, and update processing.

Nodes are deliberately passive: :meth:`BGPNode.receive` ingests one UPDATE,
reruns the decision process, and *returns* the UPDATEs that must be sent to
neighbours.  The simulator owns time and message delivery, which keeps the
node logic synchronous and easy to test in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.prefixes import Prefix
from repro.asgraph.relationships import Relationship, RouteKind, may_export
from repro.bgpsim.messages import (
    NO_EXPORT,
    Announcement,
    Community,
    UpdateMessage,
    Withdrawal,
)
from repro.bgpsim.rib import AdjRibIn, LocRib, RibEntry, decision_process

__all__ = ["BGPNode", "Outbox"]

#: Community value meaning "the AS named in the first element must not
#: re-export this route" — the per-AS scoping primitive behind the
#: Renesys-style stealth hijack (§3.2).
NO_EXPORT_TO_UPSTREAMS_VALUE = 0xFF02

#: Messages a node wants delivered: (neighbour_asn, message).
Outbox = List[Tuple[int, UpdateMessage]]


class BGPNode:
    """One AS in the message-level simulator."""

    def __init__(self, asn: int, neighbours: Mapping[int, Relationship]) -> None:
        """``neighbours`` maps neighbour ASN to its relationship as seen
        from this AS (``Relationship.CUSTOMER`` means the neighbour pays us).
        """
        self.asn = asn
        self._neighbours: Dict[int, Relationship] = dict(neighbours)
        self.adj_rib_in = AdjRibIn()
        self.loc_rib = LocRib()
        #: prefixes this AS originates, with the communities it attaches and
        #: the subset of neighbours it announces to (None = all neighbours).
        self._originated: Dict[Prefix, Tuple[FrozenSet[Community], Optional[FrozenSet[int]]]] = {}
        #: what we last advertised to each neighbour, per prefix, so we can
        #: send implicit withdrawals / avoid duplicate updates.
        self._advertised: Dict[int, Dict[Prefix, Announcement]] = {}

    # -- session management --------------------------------------------------

    @property
    def neighbours(self) -> Mapping[int, Relationship]:
        return self._neighbours

    def add_neighbour(self, asn: int, relationship: Relationship) -> Outbox:
        """Bring up a session; returns the full-table dump to send to it."""
        if asn in self._neighbours:
            raise ValueError(f"AS{self.asn} already has a session with AS{asn}")
        self._neighbours[asn] = relationship
        return self._full_table_for(asn)

    def drop_neighbour(self, asn: int) -> Outbox:
        """Tear down a session: flush its routes, rerun decisions, and
        return the updates triggered at the other (still-up) sessions."""
        if asn not in self._neighbours:
            raise ValueError(f"AS{self.asn} has no session with AS{asn}")
        del self._neighbours[asn]
        self._advertised.pop(asn, None)
        affected = self.adj_rib_in.clear_neighbour(asn)
        outbox: Outbox = []
        for prefix in affected:
            outbox.extend(self._reselect(prefix))
        return outbox

    def session_reset(self, asn: int) -> Outbox:
        """Model a session reset towards ``asn``: re-send the full table.

        This is the source of the "artificial updates" that §4's methodology
        removes (Zhang et al. 2005): the re-advertisements carry paths that
        did not actually change.
        """
        if asn not in self._neighbours:
            raise ValueError(f"AS{self.asn} has no session with AS{asn}")
        self._advertised.pop(asn, None)
        return self._full_table_for(asn)

    # -- origination ----------------------------------------------------------

    def originate(
        self,
        prefix: Prefix,
        communities: FrozenSet[Community] = frozenset(),
        to_neighbours: Optional[Iterable[int]] = None,
    ) -> Outbox:
        """Start announcing ``prefix`` as our own.

        ``to_neighbours`` restricts the announcement to a subset of sessions
        (traffic engineering / scoped attack announcements).
        """
        scope = frozenset(to_neighbours) if to_neighbours is not None else None
        if scope is not None:
            unknown = scope - set(self._neighbours)
            if unknown:
                raise ValueError(f"AS{self.asn} has no session with {sorted(unknown)}")
        self._originated[prefix] = (frozenset(communities), scope)
        own = RibEntry(
            announcement=Announcement(prefix, (self.asn,), frozenset(communities)),
            learned_from=self.asn,
            kind=RouteKind.ORIGIN,
        )
        self.loc_rib.install(prefix, own)
        return self._announce_best(prefix)

    def withdraw_origin(self, prefix: Prefix) -> Outbox:
        """Stop announcing an originated prefix."""
        if prefix not in self._originated:
            raise ValueError(f"AS{self.asn} does not originate {prefix}")
        del self._originated[prefix]
        return self._reselect(prefix)

    def originates(self, prefix: Prefix) -> bool:
        return prefix in self._originated

    # -- update processing -----------------------------------------------------

    def receive(self, message: UpdateMessage) -> Outbox:
        """Process one UPDATE from a neighbour; returns messages to send."""
        sender = message.sender
        relationship = self._neighbours.get(sender)
        if relationship is None:
            # Session went down while the message was in flight; drop it.
            return []
        prefix = message.prefix
        if message.is_withdrawal:
            if not self.adj_rib_in.withdraw(sender, prefix):
                return []
            return self._reselect(prefix)

        announcement = message.payload
        assert isinstance(announcement, Announcement)
        if announcement.has_loop(self.asn):
            return []  # loop prevention: silently discard
        entry = RibEntry(
            announcement=announcement,
            learned_from=sender,
            kind=RouteKind.from_relationship(relationship),
        )
        self.adj_rib_in.update(entry)
        return self._reselect(prefix)

    def best_path(self, prefix: Prefix) -> Optional[Tuple[int, ...]]:
        """The AS path currently selected for ``prefix`` (self included)."""
        best = self.loc_rib.best(prefix)
        if best is None:
            return None
        if best.kind is RouteKind.ORIGIN:
            return (self.asn,)
        return (self.asn,) + best.as_path

    # -- internals ---------------------------------------------------------------

    def _reselect(self, prefix: Prefix) -> Outbox:
        candidates = list(self.adj_rib_in.candidates(prefix))
        if prefix in self._originated:
            communities, _ = self._originated[prefix]
            candidates.append(
                RibEntry(
                    announcement=Announcement(prefix, (self.asn,), communities),
                    learned_from=self.asn,
                    kind=RouteKind.ORIGIN,
                )
            )
        best = decision_process(candidates)
        changed = self.loc_rib.install(prefix, best)
        if not changed:
            return []
        return self._announce_best(prefix)

    def _announce_best(self, prefix: Prefix) -> Outbox:
        """Advertise the current best route (or withdraw) to every eligible
        neighbour, suppressing updates that repeat the last advertisement."""
        outbox: Outbox = []
        best = self.loc_rib.best(prefix)
        for neighbour in self._neighbours:
            outbox.extend(self._update_for(neighbour, prefix, best))
        return outbox

    def _update_for(
        self, neighbour: int, prefix: Prefix, best: Optional[RibEntry]
    ) -> Outbox:
        advertised = self._advertised.setdefault(neighbour, {})
        exported = self._exportable(neighbour, best)
        if exported is None:
            if prefix in advertised:
                del advertised[prefix]
                return [(neighbour, UpdateMessage(self.asn, Withdrawal(prefix)))]
            return []
        if advertised.get(prefix) == exported:
            return []
        advertised[prefix] = exported
        return [(neighbour, UpdateMessage(self.asn, exported))]

    def _exportable(
        self, neighbour: int, best: Optional[RibEntry]
    ) -> Optional[Announcement]:
        """Apply export policy; None means nothing may be advertised."""
        if best is None:
            return None
        relationship = self._neighbours[neighbour]
        if not may_export(best.kind, relationship):
            return None
        announcement = best.announcement
        if best.kind is RouteKind.ORIGIN:
            _, scope = self._originated[announcement.prefix]
            if scope is not None and neighbour not in scope:
                return None
            return announcement
        # Community-based propagation control on learned routes.
        if NO_EXPORT in announcement.communities:
            return None
        if (self.asn, NO_EXPORT_TO_UPSTREAMS_VALUE) in announcement.communities:
            return None
        if announcement.has_loop(neighbour):
            return None  # poison-aware: the neighbour would reject it anyway
        return announcement.prepended_by(self.asn)

    def _full_table_for(self, neighbour: int) -> Outbox:
        outbox: Outbox = []
        for prefix, best in list(self.loc_rib.items()):
            outbox.extend(self._update_for(neighbour, prefix, best))
        return outbox
