"""Trial execution: serial and process-pool sharded backends.

The :class:`Runner` takes an :class:`~repro.runner.spec.ExperimentSpec`
and drives its trials to completion:

- ``jobs=1`` (default) runs trials in-process, in enumeration order, with
  the context exactly as the caller built it (including any live
  :class:`~repro.asgraph.engine.RoutingEngine` riding on it).
- ``jobs>1`` shards pending trials into chunks across a
  ``ProcessPoolExecutor``.  The context ships to each worker **once**,
  via the pool initializer; per-chunk task payloads are just the small
  :class:`~repro.runner.spec.Trial` tuples.  Because trial functions are
  pure and per-trial seeds are spawned independently of sharding, the
  report is identical at any ``jobs`` value.
- ``checkpoint=`` streams each completed trial to a JSONL checkpoint file
  (format owned by :mod:`repro.persist`) as it finishes, so a killed
  sweep keeps everything already computed.
- ``resume=True`` reloads that file first and skips every recorded trial
  id, merging stored results back into the report in enumeration order.

Progress and shard metrics flow into :mod:`repro.obs`: one
``runner.run`` span per sweep (with trial/job/resume attributes), plus
``runner.trials_completed`` / ``runner.trials_resumed`` counters and a
``runner.trial_seconds`` histogram.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.runner.spec import ExperimentSpec, Trial

__all__ = ["Runner", "RunReport", "TrialRecord", "run_experiment"]


@dataclass(frozen=True)
class TrialRecord:
    """One completed trial: its identity, result, and provenance."""

    trial_id: str
    index: int
    result: object
    #: wall seconds inside the trial function (0.0 for resumed trials)
    seconds: float = 0.0
    #: True when the result came from the checkpoint, not this run
    resumed: bool = False


@dataclass(frozen=True)
class RunReport:
    """Outcome of one :meth:`Runner.run`: every trial, enumeration order."""

    experiment: str
    records: Tuple[TrialRecord, ...]
    jobs: int
    #: trials executed by this run
    completed: int
    #: trials skipped because the checkpoint already recorded them
    resumed: int
    wall_seconds: float
    checkpoint: Optional[str] = None

    def results(self) -> List[object]:
        """Trial results in enumeration order."""
        return [record.result for record in self.records]


class Runner:
    """Executes experiment specs over a serial or sharded backend."""

    def __init__(
        self,
        jobs: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        chunk_size: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if resume and not checkpoint:
            raise ValueError("resume=True requires a checkpoint path")
        self.jobs = jobs
        self.checkpoint = checkpoint
        self.resume = resume
        self.chunk_size = chunk_size

    # -- checkpoint plumbing -------------------------------------------------

    def _open_checkpoint(
        self, spec: ExperimentSpec, valid_ids: Dict[str, Trial]
    ) -> Tuple[Optional[object], Dict[str, TrialRecord]]:
        """Create/resume the checkpoint; returns (writer, recorded trials)."""
        if not self.checkpoint:
            return None, {}
        from repro import persist

        header = spec.header()
        done: Dict[str, TrialRecord] = {}
        if self.resume and os.path.exists(self.checkpoint):
            writer, records = persist.CheckpointWriter.resume(
                self.checkpoint, header
            )
            for record in records:
                trial_id = record["id"]
                trial = valid_ids.get(trial_id)
                if trial is None:
                    raise ValueError(
                        f"checkpoint {self.checkpoint}: trial id {trial_id!r} "
                        f"is not part of experiment {spec.name!r} — wrong "
                        "checkpoint file?"
                    )
                done[trial_id] = TrialRecord(
                    trial_id=trial_id,
                    index=trial.index,
                    result=spec.decode(record["result"]),
                    resumed=True,
                )
        else:
            writer = persist.CheckpointWriter.create(self.checkpoint, header)
        return writer, done

    # -- execution -----------------------------------------------------------

    def run(self, spec: ExperimentSpec) -> RunReport:
        """Execute every not-yet-recorded trial; return the full report."""
        trials = spec.enumerate()
        by_id = {trial.id: trial for trial in trials}
        writer, done = self._open_checkpoint(spec, by_id)
        pending = [trial for trial in trials if trial.id not in done]

        t0 = time.perf_counter()
        try:
            with obs.span(
                "runner.run",
                experiment=spec.name,
                trials=len(trials),
                jobs=self.jobs,
                resumed=len(done),
            ) as run_span:
                obs.add("runner.trials_resumed", len(done))
                executed = 0
                if pending:
                    for trial_id, index, seconds, result in self._execute(
                        spec, pending
                    ):
                        executed += 1
                        done[trial_id] = TrialRecord(
                            trial_id=trial_id,
                            index=index,
                            result=result,
                            seconds=seconds,
                        )
                        obs.add("runner.trials_completed")
                        obs.observe("runner.trial_seconds", seconds)
                        if writer is not None:
                            writer.append(
                                {
                                    "type": "trial",
                                    "id": trial_id,
                                    "index": index,
                                    "seconds": seconds,
                                    "result": spec.encode(result),
                                }
                            )
                run_span.set(completed=executed)
        finally:
            if writer is not None:
                writer.close()

        return RunReport(
            experiment=spec.name,
            records=tuple(done[trial.id] for trial in trials),
            jobs=self.jobs,
            completed=len(pending),
            resumed=len(trials) - len(pending),
            wall_seconds=time.perf_counter() - t0,
            checkpoint=self.checkpoint,
        )

    def _execute(self, spec: ExperimentSpec, pending: Sequence[Trial]):
        """Yield ``(trial_id, index, seconds, result)`` as trials finish."""
        effective = min(self.jobs, len(pending))
        if effective <= 1:
            for trial in pending:
                started = time.perf_counter()
                result = spec.trial_fn(spec.context, trial)
                yield trial.id, trial.index, time.perf_counter() - started, result
            return

        # Sharded backend: chunk the pending trials, ship the context once
        # per worker via the initializer, stream chunks back as they
        # complete so the checkpoint always reflects finished work.
        from concurrent.futures import ProcessPoolExecutor, as_completed

        chunk = self.chunk_size or max(
            1, (len(pending) + effective * 4 - 1) // (effective * 4)
        )
        chunks = [
            pending[i : i + chunk] for i in range(0, len(pending), chunk)
        ]
        obs.gauge("runner.shards", effective)
        obs.add("runner.chunks", len(chunks))
        with ProcessPoolExecutor(
            max_workers=effective,
            initializer=_init_trial_worker,
            initargs=(spec.context, spec.trial_fn),
        ) as pool:
            futures = [pool.submit(_run_trial_chunk, c) for c in chunks]
            for future in as_completed(futures):
                for row in future.result():
                    yield row


def run_experiment(
    spec: ExperimentSpec,
    *,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    chunk_size: Optional[int] = None,
) -> RunReport:
    """One-shot convenience: ``Runner(...).run(spec)``."""
    return Runner(
        jobs=jobs, checkpoint=checkpoint, resume=resume, chunk_size=chunk_size
    ).run(spec)


#: Per-worker state installed by the pool initializer: the shared context
#: and the trial function, received exactly once per worker process.
_worker_context: object = None
_worker_fn = None


def _init_trial_worker(context: object, trial_fn) -> None:
    global _worker_context, _worker_fn
    _worker_context = context
    _worker_fn = trial_fn


def _run_trial_chunk(
    chunk: Sequence[Trial],
) -> List[Tuple[str, int, float, object]]:
    """Pool worker: run one chunk of trials against the shipped context."""
    assert _worker_fn is not None, "_init_trial_worker did not run"
    out: List[Tuple[str, int, float, object]] = []
    for trial in chunk:
        started = time.perf_counter()
        result = _worker_fn(_worker_context, trial)
        out.append((trial.id, trial.index, time.perf_counter() - started, result))
    return out
