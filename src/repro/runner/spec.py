"""Experiment specifications: trial enumeration and deterministic seeding.

An :class:`ExperimentSpec` declares a Monte-Carlo sweep as data: a name, a
root seed, experiment-level parameters, and an ordered enumeration of
**trials** — the independent units of work a
:class:`~repro.runner.runner.Runner` executes, shards, checkpoints, and
resumes.  The split mirrors what every §4 sweep in this reproduction
already looked like implicitly (an outer loop over origins / clients /
adoption rates with an ad-hoc RNG), made explicit so the loop body can run
anywhere:

- ``trial_fn(context, trial)`` must be a **module-level pure function**:
  its result may depend only on ``context``, ``trial.params``, and
  ``trial.seed``.  Module-level is what makes it picklable for the
  process-pool backend; purity is what makes ``jobs=1`` and ``jobs=8``
  produce identical reports.
- ``context`` is the read-only world the trials share (graph, consensus,
  attacker sample, ...).  It ships to each pool worker exactly once via
  the executor initializer — the same ship-the-graph-once pattern as
  :meth:`repro.asgraph.engine.RoutingEngine.paths_many`.

Seed spawning
-------------

Each trial gets its own ``random.Random`` seed via
:func:`spawn_trial_seed`, a keyed hash of ``(experiment name, root seed,
trial id)``.  Crucially the spawned seed does **not** depend on the
trial's position in the enumeration, the shard it lands on, or the
``jobs`` value — so resharding, resuming, or reordering a sweep can never
change any trial's randomness.  Two experiments with different names (or
root seeds) draw fully decorrelated streams.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Mapping, Optional, Tuple

__all__ = ["ExperimentSpec", "Trial", "TransientFields", "spawn_trial_seed"]


def spawn_trial_seed(root_seed: int, experiment: str, trial_id: str) -> int:
    """Deterministic per-trial seed, stable under resharding.

    A keyed blake2b of ``(experiment, root_seed, trial_id)`` truncated to
    63 bits.  Depends on nothing but those three values — in particular
    not on the trial's index, the shard, or ``jobs`` — so a trial keeps
    the same randomness wherever and whenever it runs.
    """
    data = f"{experiment}\x1f{root_seed}\x1f{trial_id}".encode()
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class Trial:
    """One independent unit of a sweep.

    ``params`` is an arbitrary picklable payload (an origin ASN, a client
    ASN, an adoption rate, ...); ``seed`` is the spawned per-trial seed —
    use :meth:`rng` for a fresh generator seeded with it.
    """

    index: int
    id: str
    params: object
    seed: int

    def rng(self) -> random.Random:
        """A fresh ``random.Random`` seeded with this trial's seed."""
        return random.Random(self.seed)


class TransientFields:
    """Mixin for contexts carrying process-local state (e.g. an engine).

    Fields named in ``_transient`` are replaced with ``None`` when the
    context is pickled to a pool worker; the trial function falls back to
    a worker-local substitute (conventionally
    :func:`repro.asgraph.engine.shared_engine`).  Everything else ships
    as-is.
    """

    _transient: ClassVar[Tuple[str, ...]] = ()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for name in self._transient:
            if name in state:
                state[name] = None
        return state


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative sweep: name + seed + context + trial enumeration.

    ``trials`` is an ordered tuple of ``(trial_id, params)`` pairs; ids
    must be unique — they are the checkpoint/resume identity of each
    trial.  ``params`` (experiment-level) is echoed into the checkpoint
    header for provenance.  ``encode_result`` / ``decode_result`` convert
    a trial result to/from the JSON-serialisable form stored in the
    checkpoint; they must be exact inverses or a resumed run would differ
    from an uninterrupted one.
    """

    name: str
    trial_fn: Callable[[object, Trial], object]
    trials: Tuple[Tuple[str, object], ...]
    context: object = None
    seed: int = 0
    params: Mapping[str, object] = field(default_factory=dict)
    encode_result: Optional[Callable[[object], object]] = None
    decode_result: Optional[Callable[[object], object]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("experiment name must be non-empty")
        if not self.trials:
            raise ValueError(f"experiment {self.name!r} enumerates no trials")
        seen = set()
        for trial_id, _params in self.trials:
            if trial_id in seen:
                raise ValueError(
                    f"experiment {self.name!r}: duplicate trial id {trial_id!r}"
                )
            seen.add(trial_id)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def enumerate(self) -> Tuple[Trial, ...]:
        """Materialise the trials, spawning each one's seed."""
        return tuple(
            Trial(
                index=index,
                id=trial_id,
                params=params,
                seed=spawn_trial_seed(self.seed, self.name, trial_id),
            )
            for index, (trial_id, params) in enumerate(self.trials)
        )

    def header(self) -> dict:
        """The checkpoint-header identity of this spec."""
        return {
            "experiment": self.name,
            "seed": self.seed,
            "total_trials": len(self.trials),
            "params": dict(self.params),
        }

    def encode(self, result: object) -> object:
        return self.encode_result(result) if self.encode_result else result

    def decode(self, encoded: object) -> object:
        return self.decode_result(encoded) if self.decode_result else encoded
