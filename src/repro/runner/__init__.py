"""repro.runner — the unified sharded experiment framework.

Every core Monte-Carlo sweep in this reproduction (guard resilience,
temporal exposure, surveillance circuits, secure-selection clients, user
populations, RPKI adoption, hijack sweeps) is expressed as an
:class:`ExperimentSpec` — a declarative enumeration of independent,
deterministically seeded **trials** — executed by a :class:`Runner` that
runs them serially or sharded across a process pool, streams completed
trials to a checkpoint file, and resumes interrupted sweeps by skipping
already-recorded trial ids.

Guarantees the rest of the codebase builds on:

- **determinism**: per-trial seeds are spawned from ``(experiment name,
  root seed, trial id)`` only — identical results at any ``jobs`` value,
  after any resume, in any shard order;
- **context ships once**: the shared world (graph, consensus, ...) goes
  to each worker via the pool initializer, never per trial;
- **crash safety**: with a checkpoint, every finished trial is durable;
  a half-written trailing line from a kill is detected and dropped on
  resume.

See ``docs/api.md`` ("Running experiments") for the full contract.
"""

from repro.runner.runner import RunReport, Runner, TrialRecord, run_experiment
from repro.runner.spec import (
    ExperimentSpec,
    TransientFields,
    Trial,
    spawn_trial_seed,
)

__all__ = [
    "ExperimentSpec",
    "Trial",
    "TransientFields",
    "spawn_trial_seed",
    "Runner",
    "RunReport",
    "TrialRecord",
    "run_experiment",
]
