"""repro — reproduction of "Anonymity on QuickSand: Using BGP to Compromise Tor".

The package is organised as a set of substrates plus the paper's core
contribution:

- :mod:`repro.asgraph` — AS-level topology and Gao-Rexford policy routing.
- :mod:`repro.bgpsim` — event-driven BGP simulator, route collectors,
  month-long update traces, and active routing attacks.
- :mod:`repro.tor` — Tor network model: consensus, relays, path selection.
- :mod:`repro.traffic` — discrete-event TCP and Tor-circuit data plane.
- :mod:`repro.analysis` — prefix tries, path-change counting, exposure
  statistics, CCDF helpers.
- :mod:`repro.core` — the attacks and analyses of the paper itself:
  temporal-dynamics exposure, interception attacks, asymmetric traffic
  analysis, surveillance modelling, and countermeasures.
- :mod:`repro.scenario` — seeded end-to-end world builder gluing all of the
  above together for examples, tests, and benchmarks.
"""

from repro.scenario import Scenario, ScenarioConfig

__version__ = "1.0.0"

__all__ = ["Scenario", "ScenarioConfig", "__version__"]
