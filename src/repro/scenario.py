"""End-to-end scenario builder: one seeded world for everything.

A :class:`Scenario` wires together the synthetic Internet (AS graph), the
synthetic Tor network hosted on it, the background prefix population, and
the trace engine — so examples, tests, and every benchmark construct their
world through one audited code path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.prefixes import Prefix
from repro.asgraph.engine import RoutingEngine, shared_engine
from repro.asgraph.generator import TopologyConfig, generate_topology
from repro.asgraph.topology import ASGraph
from repro.bgpsim.trace import MonthTrace, TraceConfig, TraceEngine
from repro.tor.generator import ConsensusConfig, SyntheticTorNetwork, generate_consensus

__all__ = ["ScenarioConfig", "Scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """A complete world description.

    Use :meth:`paper` for §4's full scale and :meth:`small` for fast tests;
    both derive every sub-seed from ``seed`` so a scenario is reproducible
    from a single integer.
    """

    seed: int = 0
    topology: TopologyConfig = TopologyConfig()
    consensus: ConsensusConfig = ConsensusConfig()
    trace: TraceConfig = TraceConfig()
    #: non-Tor prefixes announced in the trace (the "any BGP prefix"
    #: population whose median normalises Figure 3 left)
    background_prefixes: int = 1500
    #: first address of the background block (disjoint from Tor blocks)
    background_base: int = 120 << 24  # 120.0.0.0

    @classmethod
    def paper(cls, seed: int = 0) -> "ScenarioConfig":
        """Full §4 scale: ~4586 relays, 1251 Tor prefixes, 72 sessions."""
        return cls(
            seed=seed,
            topology=TopologyConfig(num_ases=1000, seed=seed),
            consensus=ConsensusConfig(scale=1.0, seed=seed + 1),
            trace=TraceConfig(seed=seed + 2),
            background_prefixes=1500,
        )

    @classmethod
    def small(cls, seed: int = 0) -> "ScenarioConfig":
        """~1/10 scale for unit/integration tests (seconds, not minutes)."""
        return cls(
            seed=seed,
            topology=TopologyConfig(num_ases=220, num_tier1=5, num_tier2=40, seed=seed),
            consensus=ConsensusConfig(scale=0.1, seed=seed + 1),
            trace=TraceConfig(
                sessions_per_collector=5,
                collector_names=("rrc00", "rrc01"),
                seed=seed + 2,
            ),
            background_prefixes=150,
        )


class Scenario:
    """A built world: topology + Tor network + prefix population."""

    def __init__(
        self,
        config: ScenarioConfig = ScenarioConfig(),
        engine: Optional[RoutingEngine] = None,
    ) -> None:
        self.config = config
        #: routing facade shared by everything built from this world
        self.routing: RoutingEngine = engine if engine is not None else shared_engine()
        with obs.span("scenario.build", seed=config.seed) as build_span:
            with obs.span("scenario.topology"):
                self.graph: ASGraph = generate_topology(config.topology)

            # Hosting pool: edge and mid-tier ASes (hosting providers live
            # there).  Multi-homed ASes come first — real hosting providers are
            # multi-homed, and their announcements are what flap in §4.
            rng = random.Random(config.seed + 17)
            with obs.span("scenario.consensus"):
                non_tier1 = [
                    asn for asn in sorted(self.graph.ases) if self.graph.providers(asn)
                ]
                rng.shuffle(non_tier1)
                non_tier1.sort(key=lambda asn: len(self.graph.providers(asn)) < 2)
                self.tor: SyntheticTorNetwork = generate_consensus(
                    config.consensus, non_tier1
                )

            # Background (non-Tor) prefixes, announced by random ASes.
            with obs.span("scenario.prefixes"):
                self.background_origins: Dict[Prefix, int] = {}
                cursor = config.background_base
                all_ases = sorted(self.graph.ases)
                for _ in range(config.background_prefixes):
                    length = rng.choice((24, 24, 24, 23, 22, 21, 20, 19, 16))
                    size = 1 << (32 - length)
                    cursor = (cursor + size - 1) & ~(size - 1)
                    prefix = Prefix(cursor, length)
                    cursor += size
                    self.background_origins[prefix] = rng.choice(all_ases)

                self.prefix_origins: Dict[Prefix, int] = dict(self.tor.prefix_origins)
                overlap = set(self.prefix_origins) & set(self.background_origins)
                if overlap:
                    raise AssertionError(
                        f"background prefixes collide with Tor blocks: {overlap}"
                    )
                self.prefix_origins.update(self.background_origins)
            build_span.set(
                ases=len(self.graph.ases),
                relays=len(self.tor.consensus),
                prefixes=len(self.prefix_origins),
            )

    # -- convenience accessors -------------------------------------------------

    @property
    def engine(self) -> RoutingEngine:
        """The routing engine bound to this world's graph.

        The one injection point for route memoisation: everything built
        from this scenario (trace engines, attack planners, surveillance
        models) should take ``engine=scenario.engine`` instead of
        re-deriving :func:`~repro.asgraph.engine.shared_engine` per call.
        """
        return self.routing

    @property
    def consensus(self):
        return self.tor.consensus

    @property
    def tor_prefixes(self) -> FrozenSet[Prefix]:
        return self.tor.tor_prefixes

    def relay_asn(self, fingerprint: str) -> int:
        return self.tor.relay_origin(fingerprint)

    def client_ases(self, count: int, seed: int = 99) -> List[int]:
        """Stub ASes that host no relays — plausible client locations."""
        hosting = set(self.tor.prefix_origins.values())
        candidates = [
            asn for asn in sorted(self.graph.stub_ases()) if asn not in hosting
        ]
        if len(candidates) < count:
            raise ValueError(f"only {len(candidates)} non-hosting stub ASes available")
        rng = random.Random(self.config.seed * 1000 + seed)
        return rng.sample(candidates, count)

    def destination_ases(self, count: int, seed: int = 7) -> List[int]:
        """Stub ASes standing in for popular web destinations."""
        return self.client_ases(count, seed=seed + 1)

    def adversary_as(self, seed: int = 3) -> int:
        """A mid-tier transit AS — a plausible interception attacker."""
        transit = [
            asn
            for asn in sorted(self.graph.ases)
            if self.graph.customers(asn) and self.graph.providers(asn)
        ]
        if not transit:
            raise ValueError("topology has no mid-tier transit AS")
        rng = random.Random(self.config.seed * 1000 + seed)
        return rng.choice(transit)

    def ixps(self, num_ixps: int = 10):
        """The world's Internet exchanges (peering links grouped into
        heavy-tailed facilities); deterministic for the scenario seed."""
        from repro.asgraph.ixp import assign_ixps

        return assign_ixps(self.graph, num_ixps=num_ixps, seed=self.config.seed + 31)

    # -- routing ---------------------------------------------------------------

    def paths(
        self,
        pairs: Iterable[Tuple[int, int]],
        workers: Optional[int] = None,
    ) -> Dict[Tuple[int, int], Optional[Tuple[int, ...]]]:
        """Batch (src, dst) policy-path queries over this world's topology.

        Thin wrapper over
        :meth:`~repro.asgraph.engine.RoutingEngine.paths_many`: grouped by
        destination, memoised, optionally fanned out over ``workers``
        processes.
        """
        from repro.serve.api import PathBatch

        batch = self.routing.paths_many(
            self.graph, PathBatch.of(pairs, workers=workers)
        )
        return batch.mapping()

    # -- trace generation ----------------------------------------------------------

    def build_trace_engine(
        self, observer_asns: Sequence[int] = ()
    ) -> TraceEngine:
        """The trace engine for this world (one audited construction path)."""
        return TraceEngine(
            self.graph,
            self.prefix_origins,
            self.tor_prefixes,
            self.config.trace,
            observer_asns=observer_asns,
            engine=self.routing,
        )

    def run_trace(self, observer_asns: Sequence[int] = ()) -> MonthTrace:
        """Generate the month of collector streams for this world."""
        return self.build_trace_engine(observer_asns).run()

    def open_trace_stream(self, observer_asns: Sequence[int] = ()):
        """Open the trace as a bounded-memory event stream.

        Returns a one-shot :class:`~repro.bgpsim.trace.TraceStream`: feed
        it to :func:`repro.bgpsim.stream.replay` with a windowed consumer
        (an RFD exposure scan, a streaming persist) instead of holding a
        materialized :class:`MonthTrace`.
        """
        return self.build_trace_engine(observer_asns).open_stream()
