"""Command-line interface: quick access to the main pipelines.

Usage (after ``pip install -e .``)::

    python -m repro.cli info                 # build a world, dataset stats
    python -m repro.cli trace                # month of BGP churn, Figure 3 stats
    python -m repro.cli attack               # hijack/interception sweep
    python -m repro.cli transfer             # circuit download, Figure 2 right
    python -m repro.cli --scale paper trace  # full §4 scale (slower)

Every command is seeded and deterministic; ``--seed`` changes the world.

Commands are thin drivers: each ``_cmd_*`` computes a typed result object
(:mod:`repro.cli.results`) and returns it; :mod:`repro.cli.render` turns
it into the human text, and ``--json`` emits the same object as a JSON
document instead.  ``--obs-out FILE`` streams the run's span tree,
metrics, and manifest as JSONL (plus a ``FILE.manifest.json`` sibling);
``--obs-summary`` prints an end-of-run summary table to stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro import obs
from repro.cli.render import render
from repro.cli.results import (
    AttackResult,
    CommandResult,
    InfoResult,
    PopulationResult,
    ResilienceResult,
    RovResult,
    ServeResult,
    StreamTraceResult,
    SweepInfo,
    TargetInfo,
    TraceResult,
    TransferResult,
    UsersResult,
)
from repro.scenario import Scenario, ScenarioConfig

__all__ = ["main"]


def _build_scenario(args: argparse.Namespace) -> Scenario:
    if args.scale == "paper":
        config = ScenarioConfig.paper(seed=args.seed)
    else:
        config = ScenarioConfig.small(seed=args.seed)
    print(f"building {args.scale} scenario (seed={args.seed})...", file=sys.stderr)
    return Scenario(config)


def _cmd_info(args: argparse.Namespace) -> InfoResult:
    scenario = _build_scenario(args)
    consensus = scenario.consensus
    graph = scenario.graph
    w = consensus.weights
    return InfoResult(
        num_ases=len(graph),
        num_tier1=len(graph.tier1_ases()),
        num_stubs=len(graph.stub_ases()),
        num_links=graph.num_links(),
        num_relays=len(consensus),
        num_guards=len(consensus.guards()),
        num_exits=len(consensus.exits()),
        num_guard_and_exit=len(consensus.guard_and_exit()),
        num_tor_prefixes=len(scenario.tor_prefixes),
        num_hosting_ases=len(set(scenario.tor.prefix_origins.values())),
        num_background_prefixes=len(scenario.background_origins),
        weights={"Wgg": w.Wgg, "Wgd": w.Wgd, "Wee": w.Wee, "Wed": w.Wed},
    )


def _cmd_trace(args: argparse.Namespace) -> CommandResult:
    from repro.analysis.exposure import extra_as_samples
    from repro.analysis.pathchanges import tor_ratio_samples
    from repro.analysis.stats import Ccdf
    from repro.bgpsim.resets import remove_reset_artifacts

    if (
        args.stream
        or args.year
        or args.days is not None
        or args.collectors is not None
        or args.rfd_vendor is not None
        or args.window_days is not None
        or args.checkpoint is not None
    ):
        return _cmd_trace_stream(args)

    scenario = _build_scenario(args)
    print("running the month-long trace...", file=sys.stderr)
    trace = scenario.run_trace()
    with obs.span("trace.analysis"):
        streams = [
            remove_reset_artifacts(trace.streams[s]) for s in trace.collector_sessions
        ]
        total = sum(len(s) for s in streams)
        ratios = tor_ratio_samples(streams, trace.tor_prefixes)
        ccdf = Ccdf.from_samples(ratios)
        extras = extra_as_samples(streams, trace.tor_prefixes, trace.duration)
        eccdf = Ccdf.from_samples(extras)
    return TraceResult(
        num_sessions=len(streams),
        num_records=total,
        ratio_p_gt_1=ccdf.fraction_greater(1.0),
        ratio_max=max(ratios),
        extra_p_ge_2=eccdf.fraction_at_least(2),
        extra_p_gt_5=eccdf.fraction_greater(5),
        extra_median=eccdf.median(),
        ratio_ccdf=tuple(ccdf.points),
        extra_ccdf=tuple(eccdf.points),
    )


def _cmd_trace_stream(args: argparse.Namespace) -> StreamTraceResult:
    """Bounded-memory streaming replay: exposed-AS growth, optional RFD.

    Never materializes the trace: the engine's event stream is replayed
    window-by-window through an exposure consumer, checkpointing after
    every completed window when asked — a year over ten collectors runs
    in one day's footprint and resumes mid-year.
    """
    import dataclasses

    from repro.bgpsim.rfd import ExposureConsumer, RfdFilter, VENDORS
    from repro.bgpsim.stream import DAY, replay

    config = (
        ScenarioConfig.paper(seed=args.seed)
        if args.scale == "paper"
        else ScenarioConfig.small(seed=args.seed)
    )
    overrides = {}
    if args.year:
        overrides["duration_days"] = 365.0
    elif args.days is not None:
        overrides["duration_days"] = float(args.days)
    if args.collectors is not None:
        overrides["collector_names"] = tuple(
            f"rrc{i:02d}" for i in range(args.collectors)
        )
    if args.window_days is not None:
        overrides["window_seconds"] = float(args.window_days) * DAY
    trace_cfg = (
        dataclasses.replace(config.trace, **overrides) if overrides else config.trace
    )
    config = dataclasses.replace(config, trace=trace_cfg)
    print(f"building {args.scale} scenario (seed={args.seed})...", file=sys.stderr)
    scenario = Scenario(config)

    vendor = args.rfd_vendor if args.rfd_vendor not in (None, "none") else None
    print(
        f"streaming {trace_cfg.duration_days:g} days over "
        f"{len(trace_cfg.collector_names)} collectors "
        f"(RFD: {vendor or 'off'})...",
        file=sys.stderr,
    )
    stream = scenario.open_trace_stream()
    rfd = RfdFilter(VENDORS[vendor]) if vendor else None
    consumer = ExposureConsumer(stream.tor_prefixes, rfd=rfd)
    report = replay(
        stream,
        consumer,
        window_seconds=trace_cfg.window_seconds,
        max_window_events=trace_cfg.max_window_events,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    curve = tuple((end / DAY, count) for end, count in consumer.samples)
    return StreamTraceResult(
        duration_days=trace_cfg.duration_days,
        num_collectors=len(trace_cfg.collector_names),
        num_sessions=len(stream.sessions),
        rfd_vendor=vendor,
        windows=report.windows + report.resumed_windows,
        window_days=trace_cfg.window_seconds / DAY,
        records=report.records,
        peak_window_events=report.peak_window_events,
        resumed_windows=report.resumed_windows,
        suppressed_records=rfd.suppressed_records if rfd else 0,
        suppression_episodes=rfd.suppressions if rfd else 0,
        final_exposed_ases=len(consumer.qualified),
        exposure_curve=curve,
        checkpoint=args.checkpoint,
    )


def _cmd_attack(args: argparse.Namespace) -> AttackResult:
    from repro.bgpsim.attacks import AttackKind
    from repro.core.interception import AttackPlanner
    from repro.tor.consensus import Position

    scenario = _build_scenario(args)
    planner = AttackPlanner(scenario.graph, scenario.tor, engine=scenario.engine)
    attacker = scenario.adversary_as()
    targets = tuple(
        TargetInfo(
            prefix=str(t.prefix),
            origin_asn=t.origin_asn,
            selection_probability=t.selection_probability,
        )
        for t in planner.rank_targets(Position.GUARD).top(args.top)
    )
    sweeps = []
    for kind in (AttackKind.SAME_PREFIX, AttackKind.INTERCEPTION, AttackKind.COMMUNITY_SCOPED):
        # One checkpoint file per attack kind, derived from the base path.
        kind_checkpoint = (
            f"{args.checkpoint}.{kind.value}" if args.checkpoint else None
        )
        outcomes = planner.sweep(
            attacker,
            Position.GUARD,
            args.top,
            kind,
            jobs=args.jobs,
            checkpoint=kind_checkpoint,
            resume=args.resume,
        )
        fracs = [o.hijack.capture_fraction for o in outcomes]
        sweeps.append(
            SweepInfo(
                kind=kind.value,
                mean_capture=sum(fracs) / len(fracs) if fracs else 0.0,
                interception_feasible=sum(
                    o.hijack.interception_feasible for o in outcomes
                ),
                num_targets=len(outcomes),
            )
        )
    coverage = planner.surveillance_coverage(attacker, args.top, args.top)
    return AttackResult(
        attacker_asn=attacker,
        top_targets=targets,
        sweeps=tuple(sweeps),
        guard_coverage=coverage["guard_coverage"],
        exit_coverage=coverage["exit_coverage"],
        circuit_coverage=coverage["circuit_coverage"],
        top_k=args.top,
    )


def _cmd_transfer(args: argparse.Namespace) -> TransferResult:
    from repro.core.asymmetric import correlate_segments
    from repro.traffic.circuitsim import CircuitTransfer, TransferConfig

    sim = CircuitTransfer(TransferConfig(file_size=args.size)).run()
    taps = sim.taps.all()
    samples = tuple(
        (
            sim.duration * i / 10,
            {c.name: c.cumulative_at(sim.duration * i / 10) for c in taps},
        )
        for i in range(1, 11)
    )
    correlations = tuple(
        (a, b, r) for (a, b), r in correlate_segments(sim.taps).items()
    )
    return TransferResult(
        bytes_delivered=sim.bytes_delivered,
        duration=sim.duration,
        throughput=sim.throughput,
        cells_forwarded=sim.cells_forwarded,
        sendmes=sim.sendmes,
        samples=samples,
        correlations=correlations,
        taps=sim.taps,
    )


def _cmd_rov(args: argparse.Namespace) -> RovResult:
    from repro.bgpsim.rpki import RpkiRegistry, adoption_sweep
    from repro.core.interception import AttackPlanner
    from repro.tor.consensus import Position

    scenario = _build_scenario(args)
    planner = AttackPlanner(scenario.graph, scenario.tor, engine=scenario.engine)
    attacker = scenario.adversary_as()
    target = next(
        t for t in planner.rank_targets(Position.GUARD).targets
        if t.origin_asn != attacker
    )
    registry = RpkiRegistry.for_prefixes(scenario.tor.prefix_origins)
    # Two sweeps, two checkpoint files derived from the one base path.
    honest = adoption_sweep(
        scenario.graph, registry, target.prefix, target.origin_asn, attacker,
        seed=1, jobs=args.jobs, checkpoint=args.checkpoint,
        resume=args.resume,
    )
    forged = adoption_sweep(
        scenario.graph, registry, target.prefix, target.origin_asn, attacker,
        seed=1, forge_origin=True, jobs=args.jobs,
        checkpoint=f"{args.checkpoint}.forged" if args.checkpoint else None,
        resume=args.resume,
    )
    rows = tuple(
        (rate, cap_h, cap_f) for (rate, cap_h), (_r, cap_f) in zip(honest, forged)
    )
    return RovResult(
        prefix=str(target.prefix),
        origin_asn=target.origin_asn,
        attacker_asn=attacker,
        rows=rows,
    )


def _cmd_users(args: argparse.Namespace) -> UsersResult:
    from repro.core.surveillance import ObservationMode
    from repro.core.usermetrics import simulate_user_population

    scenario = _build_scenario(args)
    clients = scenario.client_ases(args.clients)
    dests = scenario.destination_ases(max(2, args.clients // 2))
    adversaries = {0, scenario.adversary_as()}
    print(f"simulating {len(clients)} users x {args.days} days "
          f"vs colluding ASes {sorted(adversaries)}...", file=sys.stderr)
    report = simulate_user_population(
        scenario.graph,
        scenario.consensus,
        scenario.relay_asn,
        clients,
        dests,
        adversaries,
        days=args.days,
        mode=ObservationMode.EITHER,
        engine=scenario.engine,
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    return UsersResult(
        num_clients=len(clients),
        days=args.days,
        adversaries=tuple(sorted(adversaries)),
        curve=tuple(report.fraction_compromised_by_day()),
        fraction_compromised=report.fraction_compromised,
        median_days=report.median_days_to_compromise(),
    )


def _cmd_population(args: argparse.Namespace) -> PopulationResult:
    from repro.core.population import _resolve_backend, simulate_population
    from repro.core.surveillance import ObservationMode
    from repro.tor.churn import ChurnConfig, evolve_consensus
    from repro.tor.clientdist import ClientASDistribution

    scenario = _build_scenario(args)
    client_pool = scenario.client_ases(args.client_ases)
    if args.skew == "zipf":
        distribution = ClientASDistribution.zipf(
            client_pool, exponent=args.zipf_exponent
        )
    else:
        distribution = ClientASDistribution.uniform(client_pool)
    dests = scenario.destination_ases(max(2, len(client_pool) // 4))
    adversaries = {0, scenario.adversary_as()}
    consensus = scenario.consensus
    if args.churn:
        consensus = evolve_consensus(
            consensus, args.days, ChurnConfig(seed=args.seed)
        )
    backend = None if args.backend == "auto" else args.backend
    print(
        f"simulating {args.users} users over {len(client_pool)} client ASes "
        f"x {args.days} days vs colluding ASes {sorted(adversaries)}...",
        file=sys.stderr,
    )
    started = time.perf_counter()
    report = simulate_population(
        scenario.graph,
        consensus,
        scenario.relay_asn,
        distribution,
        dests,
        adversaries,
        num_users=args.users,
        days=args.days,
        circuits_per_day=args.circuits_per_day,
        num_guards=args.guards,
        rotation_days=args.rotation_days,
        mode=ObservationMode.EITHER,
        seed=args.seed,
        backend=backend,
        engine=scenario.engine,
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    elapsed = time.perf_counter() - started
    quantiles = (0.25, 0.5, 0.9)
    return PopulationResult(
        num_users=report.num_users,
        num_client_ases=len(client_pool),
        days=args.days,
        circuits_per_day=args.circuits_per_day,
        num_guards=args.guards,
        backend=_resolve_backend(backend),
        skew=args.skew,
        churn=args.churn,
        adversaries=tuple(sorted(adversaries)),
        curve=tuple(report.fraction_compromised_by_day()),
        fraction_compromised=report.fraction_compromised,
        median_days=report.median_days_to_compromise(),
        time_to_compromise=tuple(
            (q, report.time_to_compromise_percentile(q)) for q in quantiles
        ),
        rate_percentiles=tuple(
            (q, report.compromise_rate_percentile(q)) for q in quantiles
        ),
        user_days_per_sec=(
            report.num_users * args.days / elapsed if elapsed > 0 else 0.0
        ),
    )


def _cmd_resilience(args: argparse.Namespace) -> ResilienceResult:
    from repro.core.resilience import compute_resilience, evaluate_selection

    scenario = _build_scenario(args)
    guards = scenario.consensus.guards()
    client = scenario.client_ases(1)[0]
    print(
        f"computing resilience of {len(guards)} guards for client AS{client} "
        f"vs {args.attackers} sampled attackers...",
        file=sys.stderr,
    )

    def guard_asn(relay):
        return scenario.relay_asn(relay.fingerprint)

    table = compute_resilience(
        scenario.graph,
        client,
        guards,
        guard_asn,
        num_attackers=args.attackers,
        seed=args.seed,
        engine=scenario.engine,
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    values = [table.of(g) for g in guards]
    by_origin = sorted(
        {(guard_asn(g), table.of(g)) for g in guards},
        key=lambda item: (-item[1], item[0]),
    )
    selection = tuple(
        (e.alpha, e.expected_capture, e.bandwidth_distortion)
        for e in evaluate_selection(scenario.consensus, table, guards)
    )
    return ResilienceResult(
        client_asn=client,
        num_guards=len(guards),
        num_attackers=len(table.attacker_sample),
        mean_resilience=sum(values) / len(values),
        min_resilience=min(values),
        max_resilience=max(values),
        top_guards=tuple(by_origin[: args.top]),
        selection=selection,
    )


def _follow_churn_events(scenario, follow_days: float):
    """Link deltas for ``serve --follow``: the scenario's trace churn.

    Rebuilds the scenario's trace engine with the requested duration and
    pulls the ground-truth schedule (``TraceStream.events`` is materialised
    by ``open_stream`` without draining the update iterator), then keeps
    only the core fail/recover deltas.
    """
    import dataclasses as _dc

    from repro.bgpsim.trace import TraceEngine
    from repro.serve.follow import link_events

    trace_cfg = _dc.replace(scenario.config.trace, duration_days=follow_days)
    engine = TraceEngine(
        scenario.graph,
        scenario.prefix_origins,
        scenario.tor_prefixes,
        trace_cfg,
        engine=scenario.routing,
    )
    return link_events(engine.open_stream().events)


def _cmd_serve(args: argparse.Namespace) -> ServeResult:
    import asyncio
    import threading

    from repro.serve.daemon import RoutingDaemon, ServeConfig

    scenario = _build_scenario(args)
    daemon = RoutingDaemon(
        scenario.graph,
        engine=scenario.engine,
        config=ServeConfig(
            host=args.host,
            port=args.port,
            cache_entries=args.cache_entries,
            pool_entries=args.pool_entries,
        ),
    )

    bound = {"host": args.host, "port": args.port}
    churn = {"windows": 0, "events": 0}
    follow_thread = None
    if args.follow is not None:
        if args.follow <= 0:
            raise SystemExit("--follow expects a positive number of days")
        from repro.bgpsim.stream import DAY
        from repro.serve.follow import facade_apply, follow

        events = _follow_churn_events(scenario, args.follow)
        print(
            f"following {args.follow:g} trace days "
            f"({len(events)} link events)",
            file=sys.stderr,
        )

        def _feed() -> None:
            report, feed = follow(
                events,
                facade_apply(daemon.facade),
                window_seconds=args.follow_window_days * DAY,
                duration=args.follow * DAY,
            )
            churn["windows"] = feed.windows
            churn["events"] = feed.events
            print(
                f"churn replay done: {feed.windows} windows, "
                f"{feed.events} events, epoch {feed.epoch}",
                file=sys.stderr,
            )

        follow_thread = threading.Thread(
            target=_feed, name="serve-follow", daemon=True
        )

    async def _run() -> None:
        host, port = await daemon.start()
        bound["host"], bound["port"] = host, port
        if args.restore:
            restored = daemon.cache.restore(
                args.restore, daemon.engine.fingerprint(daemon.graph)
            )
            print(
                f"restored {restored} cached results from {args.restore}",
                file=sys.stderr,
            )
        print(f"serving on {host}:{port}", file=sys.stderr)
        if follow_thread is not None:
            follow_thread.start()
        if args.ready_file:
            # Written only once the socket accepts connections, so a
            # supervisor can poll the file instead of the port.
            with open(args.ready_file, "w", encoding="utf-8") as fh:
                fh.write(f"{host}:{port}\n")
        await daemon.wait_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    if follow_thread is not None:
        follow_thread.join(timeout=30.0)
    stats = daemon.stats()
    return ServeResult(
        host=bound["host"],
        port=bound["port"],
        num_ases=len(scenario.graph),
        connections=stats.connections,
        requests=stats.requests,
        batches=stats.batches,
        queries=stats.queries,
        errors=stats.errors,
        cache_entries=stats.cache_entries,
        cache_hits=stats.cache_hits,
        cache_misses=stats.cache_misses,
        epoch=stats.epoch,
        pool_sessions=stats.pool_sessions,
        pool_hits=stats.pool_hits,
        pool_misses=stats.pool_misses,
        pool_evictions=stats.pool_evictions,
        pool_repairs=stats.pool_repairs,
        follow_windows=churn["windows"],
        follow_events=churn["events"],
    )


def _add_global_args(
    parser: argparse.ArgumentParser, *, top_level: bool = False
) -> None:
    """Flags accepted both before and after the subcommand.

    Subparser copies use ``SUPPRESS`` defaults so that an unset
    subcommand-level flag never clobbers a value parsed at the top level
    (``repro --seed 5 trace`` keeps seed 5).
    """

    def dflt(value):
        return value if top_level else argparse.SUPPRESS

    parser.add_argument("--seed", type=int, default=dflt(0), help="world seed")
    parser.add_argument(
        "--scale", choices=("small", "paper"), default=dflt("small"),
        help="world size: 'small' (~1/10, seconds) or 'paper' (§4 scale, minutes)",
    )
    parser.add_argument(
        "--json", action="store_true", default=dflt(False),
        help="emit the command's result as a JSON document on stdout",
    )
    parser.add_argument(
        "--obs-out", metavar="FILE", default=dflt(None),
        help="stream spans/metrics/manifest as JSONL to FILE "
             "(also writes FILE.manifest.json)",
    )
    parser.add_argument(
        "--obs-summary", action="store_true", default=dflt(False),
        help="print an end-of-run span/metric summary table to stderr",
    )


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Flags for commands whose sweeps run on :mod:`repro.runner`."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard the sweep over N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="stream each completed trial to FILE (JSONL); commands that "
             "run several sweeps derive sibling files from this base path",
    )
    parser.add_argument(
        "--resume", action="store_true", default=False,
        help="skip trials already recorded in --checkpoint",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BGP-vs-Tor paper reproduction toolkit"
    )
    _add_global_args(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="build a world and print dataset statistics")
    trace = sub.add_parser(
        "trace",
        help="run the month-long BGP trace, print Figure 3 stats "
             "(streaming flags switch to the bounded-memory replay)",
    )
    trace.add_argument("--plot", action="store_true", help="render ASCII CCDF plots")
    trace.add_argument(
        "--stream", action="store_true", default=False,
        help="replay the trace as a bounded-memory stream (exposed-AS growth) "
             "instead of materializing Figure 3 stats",
    )
    trace.add_argument(
        "--year", action="store_true", default=False,
        help="stream a full 365-day trace (implies --stream)",
    )
    trace.add_argument(
        "--days", type=float, default=None, metavar="D",
        help="trace duration in days (implies --stream)",
    )
    trace.add_argument(
        "--collectors", type=int, default=None, metavar="N",
        help="number of route collectors (implies --stream)",
    )
    trace.add_argument(
        "--rfd-vendor", choices=("cisco", "juniper", "none"), default=None,
        help="damp the stream with this vendor's route-flap-damping defaults "
             "(implies --stream; 'none' streams undamped)",
    )
    trace.add_argument(
        "--window-days", type=float, default=None, metavar="W",
        help="replay window width in days (default: 1; implies --stream)",
    )
    trace.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="record replay state after every window (implies --stream)",
    )
    trace.add_argument(
        "--resume", action="store_true", default=False,
        help="resume the replay from --checkpoint (fingerprint-validated)",
    )
    attack = sub.add_parser("attack", help="run the §3.2 attack sweep")
    attack.add_argument("--top", type=int, default=10, help="top-k target prefixes")
    transfer = sub.add_parser("transfer", help="run a circuit download (Figure 2 right)")
    transfer.add_argument("--size", type=int, default=10_000_000, help="bytes to download")
    transfer.add_argument("--plot", action="store_true", help="render ASCII byte curves")
    rov = sub.add_parser("rov", help="RPKI adoption sweep against a guard-prefix hijack")
    users = sub.add_parser("users", help="user-level time-to-compromise simulation")
    users.add_argument("--clients", type=int, default=10)
    users.add_argument("--days", type=int, default=31)
    population = sub.add_parser(
        "population",
        help="population-scale compromise simulation (struct-of-arrays kernel)",
    )
    population.add_argument(
        "--users", type=int, default=100_000, help="simulated Tor clients"
    )
    population.add_argument(
        "--client-ases", type=int, default=40,
        help="distinct client ASes the users are drawn from",
    )
    population.add_argument("--days", type=int, default=30)
    population.add_argument("--circuits-per-day", type=int, default=6)
    population.add_argument(
        "--guards", type=int, default=3, help="guard slots per user"
    )
    population.add_argument(
        "--rotation-days", type=float, default=30.0,
        help="guard rotation period (staggered per slot)",
    )
    population.add_argument(
        "--skew", choices=("uniform", "zipf"), default="zipf",
        help="client-AS popularity skew (default: zipf)",
    )
    population.add_argument(
        "--zipf-exponent", type=float, default=1.0,
        help="skew exponent for --skew zipf (0 = uniform)",
    )
    population.add_argument(
        "--churn", action="store_true", default=False,
        help="evolve the consensus daily with relay churn",
    )
    population.add_argument(
        "--backend", choices=("auto", "vector", "loop"), default="auto",
        help="kernel tier: numpy vector, pure-python loop, or auto",
    )
    resilience = sub.add_parser(
        "resilience", help="hijack-resilience-aware guard selection (§5)"
    )
    resilience.add_argument(
        "--attackers", type=int, default=40, help="sampled attacker ASes"
    )
    resilience.add_argument(
        "--top", type=int, default=10, help="guard origins to list"
    )
    serve = sub.add_parser(
        "serve", help="start the routing daemon (JSONL query socket)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default: 0, an ephemeral port)",
    )
    serve.add_argument(
        "--ready-file", metavar="FILE", default=None,
        help="write 'host:port' to FILE once the daemon accepts connections",
    )
    serve.add_argument(
        "--restore", metavar="FILE", default=None,
        help="load a result-cache snapshot before serving",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=65536,
        help="result-cache capacity (default: 65536)",
    )
    serve.add_argument(
        "--pool-entries", type=int, default=256,
        help="warm per-origin session pool capacity (default: 256)",
    )
    serve.add_argument(
        "--follow", type=float, metavar="DAYS", default=None,
        help="replay DAYS of the scenario's trace churn into the live "
             "daemon (one epoch per window)",
    )
    serve.add_argument(
        "--follow-window-days", type=float, metavar="DAYS", default=1.0,
        help="replay window width in trace days (default: 1.0)",
    )
    for command in (attack, rov, users, population, resilience):
        _add_runner_args(command)
    for command in (
        info, trace, attack, transfer, rov, users, population, resilience,
        serve,
    ):
        _add_global_args(command)
    return parser


_HANDLERS = {
    "info": _cmd_info,
    "trace": _cmd_trace,
    "attack": _cmd_attack,
    "transfer": _cmd_transfer,
    "rov": _cmd_rov,
    "users": _cmd_users,
    "population": _cmd_population,
    "resilience": _cmd_resilience,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    summary = args.obs_summary
    sinks: List[obs.Sink] = []
    if args.obs_out:
        sinks.append(obs.JsonlSink(args.obs_out))
    if summary:
        sinks.append(obs.SummarySink(sys.stderr))

    recorder = obs.Recorder(sinks=sinks)
    previous = obs.set_recorder(recorder)
    started_at = time.time()
    t0 = time.perf_counter()
    try:
        with recorder.span(
            f"cli.{args.command}",
            command=args.command,
            seed=args.seed,
            scale=args.scale,
        ):
            result: CommandResult = _HANDLERS[args.command](args)
        if args.json:
            json.dump(
                result.document(seed=args.seed, scale=args.scale),
                sys.stdout,
                indent=2,
            )
            sys.stdout.write("\n")
        else:
            print(render(result, plot=getattr(args, "plot", False)))
        return 0
    finally:
        from repro.asgraph.engine import shared_engine

        recorder.absorb_engine_stats(shared_engine().stats())
        manifest = obs.RunManifest.collect(
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            params={
                "seed": args.seed,
                "scale": args.scale,
                "json": args.json,
                **{
                    key: getattr(args, key)
                    for key in (
                        "plot", "top", "size", "clients", "days",
                        "attackers", "jobs", "checkpoint", "resume",
                        "users", "client_ases", "circuits_per_day",
                        "guards", "skew", "churn", "backend",
                    )
                    if hasattr(args, key)
                },
            },
            started_at=started_at,
            wall_seconds=time.perf_counter() - t0,
        )
        recorder.finish(manifest)
        if args.obs_out:
            manifest.write(args.obs_out + ".manifest.json")
        obs.set_recorder(previous)


if __name__ == "__main__":
    raise SystemExit(main())
