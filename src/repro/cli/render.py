"""Human rendering of :mod:`repro.cli.results` objects.

One formatter per result type, all returning the exact text the commands
have always printed — the typed results changed where the numbers live,
not what the terminal shows.  ``--plot`` variants append ASCII plots built
from the data carried on the result.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cli.results import (
    AttackResult,
    CommandResult,
    InfoResult,
    PopulationResult,
    ResilienceResult,
    RovResult,
    ServeResult,
    StreamTraceResult,
    TraceResult,
    TransferResult,
    UsersResult,
)

__all__ = ["render"]


def render_info(result: InfoResult, plot: bool = False) -> str:
    w = result.weights
    return "\n".join(
        [
            f"ASes:            {result.num_ases} ({result.num_tier1} tier-1, "
            f"{result.num_stubs} stubs, {result.num_links} links)",
            f"relays:          {result.num_relays}",
            f"  guards:        {result.num_guards}",
            f"  exits:         {result.num_exits}",
            f"  guard+exit:    {result.num_guard_and_exit}",
            f"tor prefixes:    {result.num_tor_prefixes}",
            f"hosting ASes:    {result.num_hosting_ases}",
            f"bg prefixes:     {result.num_background_prefixes}",
            f"weights:         Wgg={w['Wgg']:.2f} Wgd={w['Wgd']:.2f} "
            f"Wee={w['Wee']:.2f} Wed={w['Wed']:.2f}",
        ]
    )


def render_trace(result: TraceResult, plot: bool = False) -> str:
    lines = [
        f"sessions: {result.num_sessions}, records after reset removal: {result.num_records}",
        "",
        "Figure 3 (left) — path-change ratio of Tor prefixes:",
        f"  P[ratio > 1]  = {result.ratio_p_gt_1:.1%}  (paper: >50%)",
        f"  max ratio     = {result.ratio_max:.0f}x     (paper: >2000x outlier)",
        "",
        "Figure 3 (right) — extra ASes (>=5 min) per Tor prefix:",
        f"  P[extra >= 2] = {result.extra_p_ge_2:.1%}  (paper: 50%)",
        f"  P[extra > 5]  = {result.extra_p_gt_5:.1%}  (paper: ~8%)",
        f"  median        = {result.extra_median:.0f}",
    ]
    if plot:
        from repro.analysis.asciiplot import plot_ccdf

        positive = [(max(x, 0.01), y) for x, y in result.ratio_ccdf]
        lines += [
            "",
            plot_ccdf(positive, title="Figure 3 (left): tor pfx change ratio / session median"),
            "",
            plot_ccdf(
                [(max(x, 0.5), y) for x, y in result.extra_ccdf],
                title="Figure 3 (right): extra ASes (>=5 min) per tor prefix",
            ),
        ]
    return "\n".join(lines)


def render_stream_trace(result: StreamTraceResult, plot: bool = False) -> str:
    vendor = result.rfd_vendor if result.rfd_vendor else "off"
    lines = [
        f"streamed {result.duration_days:.0f} days over {result.num_collectors} "
        f"collectors ({result.num_sessions} sessions), RFD: {vendor}",
        f"replay:   {result.windows} windows x {result.window_days:g} days, "
        f"{result.records} records, peak window {result.peak_window_events} events"
        + (
            f" (resumed past {result.resumed_windows} windows)"
            if result.resumed_windows
            else ""
        ),
    ]
    if result.rfd_vendor:
        lines.append(
            f"damping:  {result.suppressed_records} updates absorbed in "
            f"{result.suppression_episodes} suppression episodes"
        )
    lines += [
        "",
        f"exposed ASes (dwell-qualified, cumulative): {result.final_exposed_ases}",
    ]
    curve = result.exposure_curve
    if curve:
        step = max(1, len(curve) // 10)
        lines.append("  day   exposed ASes")
        for day, count in curve[:: step]:
            lines.append(f"  {day:5.0f}  {count:6d}")
        if (len(curve) - 1) % step:
            day, count = curve[-1]
            lines.append(f"  {day:5.0f}  {count:6d}")
    return "\n".join(lines)


def render_attack(result: AttackResult, plot: bool = False) -> str:
    lines = [f"attacker: AS{result.attacker_asn}", ""]
    lines.append("top guard-prefix targets:")
    for target in result.top_targets:
        lines.append(
            f"  {target.prefix:20s} AS{target.origin_asn:<6d} "
            f"p(select)={target.selection_probability:.3f}"
        )
    lines.append("")
    for sweep in result.sweeps:
        lines.append(
            f"{sweep.kind:26s} mean capture {sweep.mean_capture:6.1%}, "
            f"intercept-feasible {sweep.interception_feasible}/{sweep.num_targets}"
        )
    lines.append(
        f"\nsurveillance coverage (top-{result.top_k} guard+exit interception): "
        f"{result.circuit_coverage:.2%} of circuits correlatable"
    )
    return "\n".join(lines)


def render_transfer(result: TransferResult, plot: bool = False) -> str:
    lines = [
        f"transferred {result.bytes_delivered/1e6:.1f} MB in {result.duration:.1f}s "
        f"({result.throughput/1000:.0f} KB/s), cells={result.cells_forwarded}, "
        f"sendmes={result.sendmes}",
        "",
        "cumulative MB over time (Figure 2, right):",
    ]
    names = list(result.samples[0][1]) if result.samples else []
    lines.append("  t(s)   " + "  ".join(f"{name:>16s}" for name in names))
    for t, row in result.samples:
        lines.append(f"  {t:5.1f}  " + "  ".join(f"{row[name]/1e6:16.2f}" for name in names))
    lines.append("\ncorrelations (any direction pair works, §3.3):")
    for a, b, r in result.correlations:
        lines.append(f"  {a:15s} vs {b:15s}: {r:+.3f}")

    if plot and result.taps is not None:
        from repro.analysis.asciiplot import plot_series

        series = []
        labels = []
        for cap in result.taps.all():
            times, mbs = cap.curve()
            series.append(list(zip(times, mbs))[:: max(1, len(times) // 200)])
            labels.append(cap.name)
        lines += [
            "",
            plot_series(
                series,
                labels=labels,
                title="Figure 2 (right): cumulative MB per segment",
                xlabel="time (s)",
                ylabel="MB",
            ),
        ]
    return "\n".join(lines)


def render_rov(result: RovResult, plot: bool = False) -> str:
    lines = [
        f"hijack of {result.prefix} (AS{result.origin_asn}) by AS{result.attacker_asn}",
        "",
        "ROV adoption   capture (invalid origin)   capture (forged origin)",
    ]
    for rate, honest, forged in result.rows:
        lines.append(f"{rate:10.0%}     {honest:12.1%}            {forged:12.1%}")
    lines += [
        "",
        "Origin validation kills the classic hijack; the forged-origin",
        "variant (what interception uses) is untouched — §7's outlook.",
    ]
    return "\n".join(lines)


def render_users(result: UsersResult, plot: bool = False) -> str:
    lines = ["day   users compromised so far"]
    step = max(1, result.days // 8)
    for day in range(1, result.days + 1, step):
        lines.append(f"{day:4d}  {result.curve[day-1]:6.1%}")
    median = result.median_days
    lines.append(
        f"\nwithin {result.days} days: {result.fraction_compromised:.0%} of users; "
        f"median time to first compromise: "
        + (f"{median:.0f} days" if median is not None else f">{result.days} days")
    )
    return "\n".join(lines)


def render_population(result: PopulationResult, plot: bool = False) -> str:
    lines = [
        f"{result.num_users} users over {result.num_client_ases} client ASes "
        f"({result.skew} skew), {result.days} days x "
        f"{result.circuits_per_day} circuits, {result.num_guards} guards"
        + (", daily relay churn" if result.churn else "")
        + f" [{result.backend} backend]",
        "",
        "day   users compromised so far",
    ]
    step = max(1, result.days // 8)
    for day in range(1, result.days + 1, step):
        lines.append(f"{day:4d}  {result.curve[day-1]:6.1%}")
    median = result.median_days
    lines.append(
        f"\nwithin {result.days} days: {result.fraction_compromised:.1%} of "
        f"users; median time to first compromise: "
        + (f"{median:.0f} days" if median is not None else f">{result.days} days")
    )
    ttc = "  ".join(
        f"p{int(q * 100)}: " + (f"day {day}" if day is not None else "never")
        for q, day in result.time_to_compromise
    )
    rates = "  ".join(
        f"p{int(q * 100)}: {rate:.1%}" for q, rate in result.rate_percentiles
    )
    lines += [
        f"time to compromise    {ttc}",
        f"per-user circuit rate {rates}",
        f"throughput: {result.user_days_per_sec:,.0f} user-days/sec",
    ]
    return "\n".join(lines)


def render_resilience(result: ResilienceResult, plot: bool = False) -> str:
    lines = [
        f"client AS{result.client_asn} vs {result.num_attackers} sampled "
        f"attackers over {result.num_guards} guards",
        "",
        f"resilience: mean {result.mean_resilience:.1%}, "
        f"min {result.min_resilience:.1%}, max {result.max_resilience:.1%}",
        "",
        "most resilient guard origins:",
    ]
    for asn, res in result.top_guards:
        lines.append(f"  AS{asn:<6d} {res:6.1%}")
    lines += ["", "alpha   E[capture]   bandwidth distortion"]
    for alpha, capture, distortion in result.selection:
        lines.append(f"{alpha:5.2f}   {capture:8.1%}   {distortion:10.1%}")
    lines += [
        "",
        "alpha blends resilience into guard weights (0 = vanilla Tor);",
        "capture falls as load-balancing distortion rises — §5's trade-off.",
    ]
    return "\n".join(lines)


def render_serve(result: ServeResult, plot: bool = False) -> str:
    return "\n".join(
        [
            f"served {result.num_ases} ASes on "
            f"{result.host}:{result.port} (now stopped)",
            f"connections:     {result.connections}",
            f"requests:        {result.requests} "
            f"({result.batches} batches, {result.queries} queries, "
            f"{result.errors} errors)",
            f"result cache:    {result.cache_entries} entries, "
            f"{result.cache_hits} hits, {result.cache_misses} misses",
            f"session pool:    epoch {result.epoch}, "
            f"{result.pool_sessions} warm sessions, "
            f"{result.pool_hits} hits, {result.pool_misses} misses, "
            f"{result.pool_evictions} evictions, {result.pool_repairs} repairs",
            f"churn replay:    {result.follow_windows} windows, "
            f"{result.follow_events} link events",
        ]
    )


_RENDERERS: Dict[type, Callable[..., str]] = {
    InfoResult: render_info,
    TraceResult: render_trace,
    StreamTraceResult: render_stream_trace,
    AttackResult: render_attack,
    TransferResult: render_transfer,
    RovResult: render_rov,
    UsersResult: render_users,
    PopulationResult: render_population,
    ResilienceResult: render_resilience,
    ServeResult: render_serve,
}


def render(result: CommandResult, plot: bool = False) -> str:
    """Dispatch to the formatter for this result type."""
    try:
        renderer = _RENDERERS[type(result)]
    except KeyError:
        raise TypeError(f"no renderer for {type(result).__name__}") from None
    return renderer(result, plot=plot)
