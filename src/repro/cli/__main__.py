"""``python -m repro.cli`` entry point."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
