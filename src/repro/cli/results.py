"""Typed result objects for every CLI command.

Each ``repro.cli`` command computes one of these dataclasses and *returns*
it; presentation is someone else's job.  The same object renders two ways:

- :mod:`repro.cli.render` turns it into the human text the command always
  printed;
- ``--json`` dumps :meth:`CommandResult.document` — a stable, versioned
  JSON envelope — making every command scriptable.

``payload()`` is written out explicitly per class (no ``asdict`` magic) so
the JSON schema is a deliberate, reviewable surface: prefixes become
strings, tuples become lists, and simulation objects that exist only for
plotting (e.g. the transfer's capture taps) are deliberately excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "CommandResult",
    "InfoResult",
    "TraceResult",
    "StreamTraceResult",
    "TargetInfo",
    "SweepInfo",
    "AttackResult",
    "TransferResult",
    "RovResult",
    "UsersResult",
    "PopulationResult",
    "ResilienceResult",
    "ServeResult",
]

#: bump when any payload shape changes incompatibly
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CommandResult:
    """Base for command results: knows its command name and JSON envelope."""

    @property
    def command(self) -> str:
        raise NotImplementedError

    def payload(self) -> Dict[str, object]:
        raise NotImplementedError

    def document(self, seed: int = 0, scale: str = "small") -> Dict[str, object]:
        """The ``--json`` envelope: command + world identity + payload."""
        return {
            "schema_version": SCHEMA_VERSION,
            "command": self.command,
            "seed": seed,
            "scale": scale,
            "result": self.payload(),
        }


@dataclass(frozen=True)
class InfoResult(CommandResult):
    """Dataset statistics of one built world (`info`)."""

    num_ases: int
    num_tier1: int
    num_stubs: int
    num_links: int
    num_relays: int
    num_guards: int
    num_exits: int
    num_guard_and_exit: int
    num_tor_prefixes: int
    num_hosting_ases: int
    num_background_prefixes: int
    weights: Dict[str, float]

    @property
    def command(self) -> str:
        return "info"

    def payload(self) -> Dict[str, object]:
        return {
            "ases": {
                "total": self.num_ases,
                "tier1": self.num_tier1,
                "stubs": self.num_stubs,
                "links": self.num_links,
            },
            "relays": {
                "total": self.num_relays,
                "guards": self.num_guards,
                "exits": self.num_exits,
                "guard_and_exit": self.num_guard_and_exit,
            },
            "prefixes": {
                "tor": self.num_tor_prefixes,
                "hosting_ases": self.num_hosting_ases,
                "background": self.num_background_prefixes,
            },
            "weights": dict(self.weights),
        }


@dataclass(frozen=True)
class TraceResult(CommandResult):
    """Figure 3 statistics from the month-long trace (`trace`)."""

    num_sessions: int
    num_records: int
    ratio_p_gt_1: float
    ratio_max: float
    extra_p_ge_2: float
    extra_p_gt_5: float
    extra_median: float
    #: CCDF points [(x, P[X > x]), ...] backing the two panels
    ratio_ccdf: Tuple[Tuple[float, float], ...] = ()
    extra_ccdf: Tuple[Tuple[float, float], ...] = ()

    @property
    def command(self) -> str:
        return "trace"

    def payload(self) -> Dict[str, object]:
        return {
            "sessions": self.num_sessions,
            "records_after_reset_removal": self.num_records,
            "path_change_ratio": {
                "p_greater_1": self.ratio_p_gt_1,
                "max": self.ratio_max,
                "ccdf": [[x, y] for x, y in self.ratio_ccdf],
            },
            "extra_ases": {
                "p_at_least_2": self.extra_p_ge_2,
                "p_greater_5": self.extra_p_gt_5,
                "median": self.extra_median,
                "ccdf": [[x, y] for x, y in self.extra_ccdf],
            },
        }


@dataclass(frozen=True)
class StreamTraceResult(CommandResult):
    """Bounded-memory streaming replay, optionally RFD-damped
    (`trace --stream`)."""

    duration_days: float
    num_collectors: int
    num_sessions: int
    rfd_vendor: Optional[str]
    windows: int
    window_days: float
    records: int
    peak_window_events: int
    resumed_windows: int
    suppressed_records: int
    suppression_episodes: int
    final_exposed_ases: int
    #: (window end in days, cumulative dwell-qualified exposed-AS count)
    exposure_curve: Tuple[Tuple[float, int], ...] = ()
    checkpoint: Optional[str] = None

    @property
    def command(self) -> str:
        return "trace-stream"

    def payload(self) -> Dict[str, object]:
        return {
            "duration_days": self.duration_days,
            "collectors": self.num_collectors,
            "sessions": self.num_sessions,
            "rfd_vendor": self.rfd_vendor,
            "replay": {
                "windows": self.windows,
                "window_days": self.window_days,
                "records": self.records,
                "peak_window_events": self.peak_window_events,
                "resumed_windows": self.resumed_windows,
                "checkpoint": self.checkpoint,
            },
            "rfd": {
                "suppressed_records": self.suppressed_records,
                "suppression_episodes": self.suppression_episodes,
            },
            "exposure": {
                "final_exposed_ases": self.final_exposed_ases,
                "curve": [[day, count] for day, count in self.exposure_curve],
            },
        }


@dataclass(frozen=True)
class TargetInfo:
    """One ranked target prefix of the attack sweep."""

    prefix: str
    origin_asn: int
    selection_probability: float

    def payload(self) -> Dict[str, object]:
        return {
            "prefix": self.prefix,
            "origin_asn": self.origin_asn,
            "selection_probability": self.selection_probability,
        }


@dataclass(frozen=True)
class SweepInfo:
    """Aggregate outcome of one attack kind over the top-k targets."""

    kind: str
    mean_capture: float
    interception_feasible: int
    num_targets: int

    def payload(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "mean_capture_fraction": self.mean_capture,
            "interception_feasible": self.interception_feasible,
            "targets": self.num_targets,
        }


@dataclass(frozen=True)
class AttackResult(CommandResult):
    """§3.2 hijack/interception sweep (`attack`)."""

    attacker_asn: int
    top_targets: Tuple[TargetInfo, ...]
    sweeps: Tuple[SweepInfo, ...]
    guard_coverage: float
    exit_coverage: float
    circuit_coverage: float
    top_k: int

    @property
    def command(self) -> str:
        return "attack"

    def payload(self) -> Dict[str, object]:
        return {
            "attacker_asn": self.attacker_asn,
            "top_k": self.top_k,
            "top_guard_targets": [t.payload() for t in self.top_targets],
            "sweeps": [s.payload() for s in self.sweeps],
            "surveillance_coverage": {
                "guard": self.guard_coverage,
                "exit": self.exit_coverage,
                "circuit": self.circuit_coverage,
            },
        }


@dataclass(frozen=True)
class TransferResult(CommandResult):
    """Circuit download (`transfer`, Figure 2 right)."""

    bytes_delivered: int
    duration: float
    throughput: float
    cells_forwarded: int
    sendmes: int
    #: (time, {tap name: cumulative bytes}) at ten evenly spaced times
    samples: Tuple[Tuple[float, Dict[str, float]], ...]
    #: ((segment a, segment b), pearson r) in a stable order
    correlations: Tuple[Tuple[str, str, float], ...]
    #: the raw capture taps, kept for ASCII plotting only (not serialised)
    taps: object = field(default=None, repr=False, compare=False)

    @property
    def command(self) -> str:
        return "transfer"

    def payload(self) -> Dict[str, object]:
        return {
            "bytes_delivered": self.bytes_delivered,
            "duration_seconds": self.duration,
            "throughput_bytes_per_second": self.throughput,
            "cells_forwarded": self.cells_forwarded,
            "sendmes": self.sendmes,
            "cumulative_bytes": [
                {"time": t, "segments": dict(row)} for t, row in self.samples
            ],
            "correlations": [
                {"a": a, "b": b, "r": r} for a, b, r in self.correlations
            ],
        }


@dataclass(frozen=True)
class RovResult(CommandResult):
    """RPKI adoption sweep against a guard-prefix hijack (`rov`)."""

    prefix: str
    origin_asn: int
    attacker_asn: int
    #: (adoption rate, capture w/ honest origin, capture w/ forged origin)
    rows: Tuple[Tuple[float, float, float], ...]

    @property
    def command(self) -> str:
        return "rov"

    def payload(self) -> Dict[str, object]:
        return {
            "prefix": self.prefix,
            "origin_asn": self.origin_asn,
            "attacker_asn": self.attacker_asn,
            "adoption_sweep": [
                {
                    "adoption": rate,
                    "capture_invalid_origin": honest,
                    "capture_forged_origin": forged,
                }
                for rate, honest, forged in self.rows
            ],
        }


@dataclass(frozen=True)
class ResilienceResult(CommandResult):
    """Hijack-resilience-aware guard selection (`resilience`)."""

    client_asn: int
    num_guards: int
    num_attackers: int
    mean_resilience: float
    min_resilience: float
    max_resilience: float
    #: (guard origin ASN, resilience) for the best guards, best first
    top_guards: Tuple[Tuple[int, float], ...]
    #: (alpha, expected capture, bandwidth distortion) — the §5 trade-off
    selection: Tuple[Tuple[float, float, float], ...]

    @property
    def command(self) -> str:
        return "resilience"

    def payload(self) -> Dict[str, object]:
        return {
            "client_asn": self.client_asn,
            "guards": self.num_guards,
            "attackers": self.num_attackers,
            "resilience": {
                "mean": self.mean_resilience,
                "min": self.min_resilience,
                "max": self.max_resilience,
            },
            "top_guards": [
                {"origin_asn": asn, "resilience": res}
                for asn, res in self.top_guards
            ],
            "selection_tradeoff": [
                {
                    "alpha": alpha,
                    "expected_capture": capture,
                    "bandwidth_distortion": distortion,
                }
                for alpha, capture, distortion in self.selection
            ],
        }


@dataclass(frozen=True)
class UsersResult(CommandResult):
    """User-level time-to-compromise simulation (`users`)."""

    num_clients: int
    days: int
    adversaries: Tuple[int, ...]
    #: cumulative fraction of users compromised by day (index 0 = day 1)
    curve: Tuple[float, ...]
    fraction_compromised: float
    median_days: Optional[float]

    @property
    def command(self) -> str:
        return "users"

    def payload(self) -> Dict[str, object]:
        return {
            "clients": self.num_clients,
            "days": self.days,
            "adversaries": list(self.adversaries),
            "fraction_compromised_by_day": list(self.curve),
            "fraction_compromised": self.fraction_compromised,
            "median_days_to_compromise": self.median_days,
        }


@dataclass(frozen=True)
class PopulationResult(CommandResult):
    """Population-scale compromise simulation (`population`)."""

    num_users: int
    num_client_ases: int
    days: int
    circuits_per_day: int
    num_guards: int
    backend: str
    skew: str
    churn: bool
    adversaries: Tuple[int, ...]
    #: cumulative fraction of users compromised by day (index 0 = day 1)
    curve: Tuple[float, ...]
    fraction_compromised: float
    median_days: Optional[float]
    #: (quantile, day the quantile of users is compromised by; None = never)
    time_to_compromise: Tuple[Tuple[float, Optional[int]], ...]
    #: (quantile, per-user circuit-compromise rate at that quantile)
    rate_percentiles: Tuple[Tuple[float, float], ...]
    user_days_per_sec: float

    @property
    def command(self) -> str:
        return "population"

    def payload(self) -> Dict[str, object]:
        return {
            "users": self.num_users,
            "client_ases": self.num_client_ases,
            "days": self.days,
            "circuits_per_day": self.circuits_per_day,
            "num_guards": self.num_guards,
            "backend": self.backend,
            "skew": self.skew,
            "churn": self.churn,
            "adversaries": list(self.adversaries),
            "fraction_compromised_by_day": list(self.curve),
            "fraction_compromised": self.fraction_compromised,
            "median_days_to_compromise": self.median_days,
            "time_to_compromise_days": [
                {"q": q, "day": day} for q, day in self.time_to_compromise
            ],
            "compromise_rate_percentiles": [
                {"q": q, "rate": rate} for q, rate in self.rate_percentiles
            ],
            "user_days_per_sec": self.user_days_per_sec,
        }


@dataclass(frozen=True)
class ServeResult(CommandResult):
    """Routing-daemon run summary, reported after shutdown (`serve`)."""

    host: str
    port: int
    num_ases: int
    connections: int
    requests: int
    batches: int
    queries: int
    errors: int
    cache_entries: int
    cache_hits: int
    cache_misses: int
    epoch: int = 0
    pool_sessions: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    pool_evictions: int = 0
    pool_repairs: int = 0
    follow_windows: int = 0
    follow_events: int = 0

    @property
    def command(self) -> str:
        return "serve"

    def payload(self) -> Dict[str, object]:
        return {
            "address": {"host": self.host, "port": self.port},
            "world": {"ases": self.num_ases},
            "traffic": {
                "connections": self.connections,
                "requests": self.requests,
                "batches": self.batches,
                "queries": self.queries,
                "errors": self.errors,
            },
            "cache": {
                "entries": self.cache_entries,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "pool": {
                "epoch": self.epoch,
                "sessions": self.pool_sessions,
                "hits": self.pool_hits,
                "misses": self.pool_misses,
                "evictions": self.pool_evictions,
                "repairs": self.pool_repairs,
            },
            "follow": {
                "windows": self.follow_windows,
                "events": self.follow_events,
            },
        }
