"""Tests for Gao-style relationship inference from observed paths."""

import pytest

from repro.asgraph import (
    ASGraph,
    Relationship,
    TopologyConfig,
    compute_routes,
    generate_topology,
)
from repro.asgraph.inference import infer_relationships


def observed_paths(graph, num_destinations=30, num_observers=25):
    """Collect the policy paths a set of vantage ASes would export."""
    ases = sorted(graph.ases)
    destinations = ases[:: max(1, len(ases) // num_destinations)][:num_destinations]
    observers = [a for a in ases if graph.customers(a)][:num_observers]
    paths = []
    for dest in destinations:
        outcome = compute_routes(graph, [dest])
        for observer in observers:
            path = outcome.path(observer)
            if path is not None and len(path) >= 2:
                paths.append(path)
    return paths


class TestInferenceMechanics:
    def test_simple_chain(self):
        # paths through a clear hierarchy; AS1 has the highest observed
        # degree, so Gao's phase-2 split makes it everyone's top provider
        paths = [
            (3, 2, 1),
            (4, 2, 1),
            (3, 2, 1, 5),
            (4, 2, 1, 5),
            (6, 1),
            (7, 1),  # extra adjacencies push AS1's degree above AS2's
        ]
        result = infer_relationships(paths)
        assert result.relationship(2, 1) is Relationship.PROVIDER
        assert result.relationship(1, 2) is Relationship.CUSTOMER
        assert result.relationship(3, 2) is Relationship.PROVIDER
        assert result.relationship(5, 1) is Relationship.PROVIDER

    def test_peering_between_comparable_tops(self):
        # two equal-degree hubs adjacent at the top of every path
        paths = [
            (10, 1, 2, 20),
            (11, 1, 2, 21),
            (10, 1, 2, 21),
            (20, 2, 1, 11),
            (21, 2, 1, 10),
        ]
        result = infer_relationships(paths)
        assert result.relationship(1, 2) is Relationship.PEER

    def test_loop_rejected(self):
        with pytest.raises(ValueError):
            infer_relationships([(1, 2, 1)])

    def test_short_paths_ignored(self):
        result = infer_relationships([(1,), (2,)])
        assert not result.observed_links

    def test_unobserved_pair_is_none(self):
        result = infer_relationships([(1, 2)])
        assert result.relationship(5, 6) is None

    def test_accuracy_requires_observations(self):
        result = infer_relationships([])
        with pytest.raises(ValueError):
            result.accuracy_against(ASGraph())


class TestInferenceOnGeneratedInternet:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_recovers_most_relationships(self, seed):
        """On a synthetic Internet with valley-free ground truth, Gao's
        heuristic should classify the bulk of observed links correctly —
        the premise the prior-work analyses relied on."""
        graph = generate_topology(
            TopologyConfig(num_ases=150, num_tier1=4, num_tier2=25, seed=seed)
        )
        paths = observed_paths(graph)
        assert len(paths) > 200
        result = infer_relationships(paths)
        accuracy = result.accuracy_against(graph)
        assert accuracy > 0.7, f"accuracy only {accuracy:.2f}"

    def test_transit_direction_mostly_correct(self):
        """When a link is classified as transit, the customer/provider
        orientation matters more than the transit/peer boundary."""
        graph = generate_topology(
            TopologyConfig(num_ases=150, num_tier1=4, num_tier2=25, seed=3)
        )
        result = infer_relationships(observed_paths(graph))
        oriented = wrong = 0
        for link, (customer, provider) in result.transit.items():
            truth = graph.relationship(customer, provider)
            if truth is Relationship.PROVIDER:
                oriented += 1
            elif truth is Relationship.CUSTOMER:
                wrong += 1
        assert oriented > 5 * max(1, wrong)
