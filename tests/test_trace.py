"""Integration tests for the month-scale trace engine (§4 substrate)."""

import pytest

from repro.analysis.pathchanges import session_stats, tor_ratio_samples
from repro.analysis.exposure import extra_as_samples
from repro.analysis.stats import Ccdf
from repro.bgpsim.resets import remove_reset_artifacts
from repro.bgpsim.trace import TraceConfig, TraceEngine


class TestTraceStructure:
    def test_session_roster(self, small_trace, small_scenario):
        trace, observers = small_trace
        cfg = small_scenario.config.trace
        expected = len(cfg.collector_names) * cfg.sessions_per_collector
        assert len(trace.collector_sessions) == expected
        assert len(trace.observer_sessions) == len(observers)
        assert set(trace.sessions) == set(trace.collector_sessions) | set(
            trace.observer_sessions
        )

    def test_streams_time_ordered_and_bounded(self, small_trace):
        trace, _ = small_trace
        for stream in trace.streams.values():
            times = [r.time for r in stream]
            assert times == sorted(times)
            assert all(0 <= t <= trace.duration for t in times)

    def test_every_session_learns_a_tor_prefix(self, small_trace):
        trace, _ = small_trace
        assert trace.tor_streams_nonempty()

    def test_records_respect_visibility(self, small_trace):
        trace, _ = small_trace
        for session, stream in trace.streams.items():
            assert stream.prefixes() <= trace.session_prefixes[session]

    def test_as_paths_start_at_peer_and_end_at_origin(self, small_trace):
        trace, _ = small_trace
        for session in trace.collector_sessions:
            stream = trace.streams[session]
            for record in list(stream)[:200]:
                if record.as_path is None:
                    continue
                assert record.as_path[0] == session[1]
                if not record.from_reset:
                    origin = trace.prefix_origins[record.prefix]
                    # TE transients may carry alternate-tree paths, but the
                    # terminal AS must always be the true origin
                    assert record.as_path[-1] == origin

    def test_observer_sees_all_tor_prefixes_it_routes_to(self, small_trace):
        trace, observers = small_trace
        stream = trace.observer_stream(observers[0])
        seen = stream.prefixes()
        # full-visibility observer: nearly every Tor prefix shows up
        assert len(seen & trace.tor_prefixes) >= 0.9 * len(trace.tor_prefixes)

    def test_observer_stream_unknown_raises(self, small_trace):
        trace, _ = small_trace
        with pytest.raises(KeyError):
            trace.observer_stream(999999)

    def test_ground_truth_events_recorded(self, small_trace):
        trace, _ = small_trace
        kinds = {e.kind for e in trace.events}
        assert "te_switch" in kinds
        assert "reset" in kinds
        assert "core_fail" in kinds and "core_recover" in kinds
        assert "prepend" in kinds
        times = [e.time for e in trace.events]
        assert times == sorted(times)

    def test_prepend_churn_present_but_not_counted(self, small_trace):
        """Prepend events put AS-PATH-only changes on the wire; the §4
        path-change definition (AS *sets*) must ignore them."""
        from repro.analysis.pathchanges import count_path_changes

        trace, _ = small_trace
        prepended = 0
        for session in trace.collector_sessions:
            for record in trace.streams[session]:
                if record.as_path and len(record.as_path) != len(set(record.as_path)):
                    prepended += 1
        assert prepended > 0, "no prepended updates on the wire"

        # The counting rule ignores them: for any stream, counting with the
        # AS-set rule must match a manual count that first collapses
        # prepend-only transitions.
        session = trace.collector_sessions[0]
        stream = trace.streams[session]
        prefix = next(iter(stream.prefixes()))
        manual = 0
        last = None
        for record in stream.records_for(prefix):
            if record.as_path is None:
                continue
            as_set = frozenset(record.as_path)
            if last is not None and as_set != last:
                manual += 1
            last = as_set
        assert count_path_changes(stream, prefix) == manual

    def test_deterministic_for_seed(self, small_scenario):
        cfg = TraceConfig(
            sessions_per_collector=3,
            collector_names=("rrc00",),
            duration_days=3.0,
            seed=77,
        )
        def build():
            engine = TraceEngine(
                small_scenario.graph,
                small_scenario.prefix_origins,
                small_scenario.tor_prefixes,
                cfg,
            )
            trace = engine.run()
            return [
                (s, [(r.time, r.prefix, r.as_path) for r in trace.streams[s]])
                for s in trace.sessions
            ]
        assert build() == build()


class TestTraceStatisticsShape:
    """Loose-band checks that the synthetic trace has the paper's shape;
    the tight assertions live in the benchmark harness at full scale."""

    def test_prefix_visibility_band(self, small_trace):
        trace, _ = small_trace
        sessions = trace.collector_sessions
        counts = {}
        for s in sessions:
            for p in trace.session_prefixes[s]:
                counts[p] = counts.get(p, 0) + 1
        fractions = [c / len(sessions) for c in counts.values()]
        mean = sum(fractions) / len(fractions)
        assert 0.25 < mean < 0.55  # paper: ~40%

    def test_tor_prefixes_change_more_than_median(self, small_trace):
        trace, _ = small_trace
        streams = [
            remove_reset_artifacts(trace.streams[s]) for s in trace.collector_sessions
        ]
        ratios = tor_ratio_samples(streams, trace.tor_prefixes)
        assert len(ratios) > 50
        ccdf = Ccdf.from_samples(ratios)
        assert ccdf.fraction_greater(1.0) > 0.4  # paper: >50%
        assert max(ratios) > 50  # the extreme-flapper tail

    def test_extra_ases_grow_over_month(self, small_trace):
        trace, _ = small_trace
        streams = [
            remove_reset_artifacts(trace.streams[s]) for s in trace.collector_sessions
        ]
        extras = extra_as_samples(streams, trace.tor_prefixes, trace.duration)
        ccdf = Ccdf.from_samples(extras)
        assert ccdf.median() >= 1  # paper: median 2
        assert ccdf.fraction_at_least(2) > 0.3

    def test_session_median_changes_positive(self, small_trace):
        trace, _ = small_trace
        nonzero_medians = 0
        for s in trace.collector_sessions:
            stats = session_stats(remove_reset_artifacts(trace.streams[s]))
            if stats.median > 0:
                nonzero_medians += 1
        assert nonzero_medians >= len(trace.collector_sessions) // 2


class TestTraceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(duration_days=0)
        with pytest.raises(ValueError):
            TraceConfig(sessions_per_collector=0)
        with pytest.raises(ValueError):
            TraceConfig(transient_prob=2.0)

    def test_engine_rejects_unknown_origin(self, small_scenario):
        from repro.analysis.prefixes import Prefix

        with pytest.raises(ValueError):
            TraceEngine(
                small_scenario.graph,
                {Prefix.parse("9.9.9.0/24"): 10**9},
                [],
            )

    def test_engine_rejects_unknown_observer(self, small_scenario):
        with pytest.raises(ValueError):
            TraceEngine(
                small_scenario.graph,
                small_scenario.prefix_origins,
                small_scenario.tor_prefixes,
                observer_asns=[10**9],
            )

    def test_engine_rejects_tor_prefix_without_origin(self, small_scenario):
        from repro.analysis.prefixes import Prefix

        orphan = Prefix.parse("9.9.9.0/24")
        with pytest.raises(ValueError):
            TraceEngine(
                small_scenario.graph,
                small_scenario.prefix_origins,
                set(small_scenario.tor_prefixes) | {orphan},
            )

    def test_streaming_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(window_seconds=0)
        with pytest.raises(ValueError):
            TraceConfig(max_window_events=0)


def _short_engine(scenario, **overrides):
    overrides.setdefault("seed", 77)
    cfg = TraceConfig(
        sessions_per_collector=3,
        collector_names=("rrc00",),
        duration_days=3.0,
        **overrides,
    )
    return TraceEngine(
        scenario.graph, scenario.prefix_origins, scenario.tor_prefixes, cfg
    )


class TestStreamingTrace:
    def test_streamed_equals_materialized(self, small_scenario):
        """The windowed replay path and the legacy materialize-then-sort
        path must produce bit-identical MonthTraces."""
        streamed = _short_engine(small_scenario).run()
        with pytest.warns(DeprecationWarning):
            materialized = _short_engine(small_scenario).run_materialized()

        assert streamed.sessions == materialized.sessions
        assert streamed.duration == materialized.duration
        assert streamed.session_prefixes == materialized.session_prefixes
        assert streamed.events == materialized.events
        for session in streamed.sessions:
            a = [(r.time, r.prefix, r.as_path, r.from_reset)
                 for r in streamed.streams[session]]
            b = [(r.time, r.prefix, r.as_path, r.from_reset)
                 for r in materialized.streams[session]]
            assert a == b

    def test_open_stream_is_one_shot(self, small_scenario):
        stream = _short_engine(small_scenario).open_stream()
        assert sum(1 for _ in stream) > 0
        with pytest.raises(RuntimeError, match="one-shot"):
            iter(stream)

    def test_stream_metadata_before_iteration(self, small_scenario):
        stream = _short_engine(small_scenario).open_stream()
        assert stream.duration == pytest.approx(3 * 86_400.0)
        assert len(stream.collector_sessions) == 3
        assert stream.fingerprint
        assert stream.events  # ground-truth schedule known up front

    def test_fingerprint_stable_and_config_sensitive(self, small_scenario):
        a = _short_engine(small_scenario).open_stream().fingerprint
        b = _short_engine(small_scenario).open_stream().fingerprint
        c = _short_engine(small_scenario, seed=78).open_stream().fingerprint
        assert a == b
        assert a != c

    def test_window_cap_overflows_loudly(self, small_scenario):
        from repro.bgpsim.stream import WindowOverflowError

        engine = _short_engine(small_scenario, max_window_events=10)
        with pytest.raises(WindowOverflowError, match="max_window_events=10"):
            engine.run()
