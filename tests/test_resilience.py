"""Tests for hijack-resilience-aware guard selection."""

import pytest

from repro.core.resilience import (
    blended_guard_weights,
    compute_resilience,
    evaluate_selection,
)
from repro.tor.consensus import Position


@pytest.fixture(scope="module")
def world(small_scenario):
    client = small_scenario.client_ases(1)[0]
    guards = small_scenario.consensus.guards()[:25]
    table = compute_resilience(
        small_scenario.graph,
        client,
        guards,
        guard_asn=lambda g: small_scenario.relay_asn(g.fingerprint),
        num_attackers=15,
        seed=3,
    )
    return small_scenario, client, guards, table


class TestResilienceTable:
    def test_values_are_probabilities(self, world):
        _sc, _client, guards, table = world
        for guard in guards:
            assert 0.0 <= table.of(guard) <= 1.0

    def test_same_origin_guards_share_resilience(self, world):
        sc, _client, guards, table = world
        by_origin = {}
        for guard in guards:
            origin = sc.relay_asn(guard.fingerprint)
            by_origin.setdefault(origin, set()).add(table.of(guard))
        for origin, values in by_origin.items():
            assert len(values) == 1, f"origin AS{origin} has mixed resilience"

    def test_resilience_varies_across_guards(self, world):
        _sc, _client, guards, table = world
        values = {table.of(g) for g in guards}
        assert len(values) > 1, "resilience metric is degenerate"

    def test_deterministic_for_seed(self, world):
        sc, client, guards, table = world
        again = compute_resilience(
            sc.graph,
            client,
            guards,
            guard_asn=lambda g: sc.relay_asn(g.fingerprint),
            num_attackers=15,
            seed=3,
        )
        assert again.resilience == table.resilience

    def test_validation(self, small_scenario):
        with pytest.raises(ValueError):
            compute_resilience(small_scenario.graph, 10**9, [], lambda g: 0)
        with pytest.raises(ValueError):
            compute_resilience(
                small_scenario.graph, small_scenario.client_ases(1)[0], [], lambda g: 0
            )


class TestBlendedWeights:
    def test_alpha_zero_is_bandwidth_order(self, world):
        sc, _client, guards, table = world
        weights = blended_guard_weights(sc.consensus, table, guards, alpha=0.0)
        bw = {g.fingerprint: sc.consensus.position_weight(g, Position.GUARD) for g in guards}
        ordered_w = sorted(guards, key=lambda g: weights[g.fingerprint])
        ordered_bw = sorted(guards, key=lambda g: bw[g.fingerprint])
        assert [g.fingerprint for g in ordered_w] == [g.fingerprint for g in ordered_bw]

    def test_alpha_one_is_resilience_order(self, world):
        sc, _client, guards, table = world
        weights = blended_guard_weights(sc.consensus, table, guards, alpha=1.0)
        for guard in guards:
            assert weights[guard.fingerprint] == pytest.approx(table.of(guard))

    def test_alpha_validation(self, world):
        sc, _client, guards, table = world
        with pytest.raises(ValueError):
            blended_guard_weights(sc.consensus, table, guards, alpha=1.5)


class TestEvaluation:
    def test_capture_decreases_with_alpha(self, world):
        """More resilience weighting => lower expected capture (weakly)."""
        sc, _client, guards, table = world
        sweep = evaluate_selection(sc.consensus, table, guards)
        captures = [e.expected_capture for e in sweep]
        assert captures[-1] <= captures[0] + 1e-9  # alpha=1 vs alpha=0

    def test_distortion_grows_with_alpha(self, world):
        sc, _client, guards, table = world
        sweep = evaluate_selection(sc.consensus, table, guards)
        assert sweep[0].bandwidth_distortion == pytest.approx(0.0)
        assert sweep[-1].bandwidth_distortion >= sweep[0].bandwidth_distortion

    def test_all_metrics_bounded(self, world):
        sc, _client, guards, table = world
        for entry in evaluate_selection(sc.consensus, table, guards):
            assert 0.0 <= entry.expected_capture <= 1.0
            assert 0.0 <= entry.bandwidth_distortion <= 1.0
