"""Tests for layered circuit encryption (the §2 property)."""

import random

import pytest

from repro.tor.onion import (
    CELL_PAYLOAD_BYTES,
    CircuitCrypto,
    RelayCrypto,
    circuit_handshake,
    dh_keypair,
    dh_shared_key,
)


def build_circuit(seed=0, hops=3):
    client_rng = random.Random(seed)
    relay_rngs = [random.Random(seed + 100 + i) for i in range(hops)]
    return circuit_handshake(client_rng, relay_rngs)


def relay_pipeline_outbound(relays, cell):
    """Each hop peels one layer; returns (payload, index) at the relay
    that recognised the cell, or (None, None)."""
    for i, relay in enumerate(relays):
        cell = relay.peel(cell)
        payload = relay.recognise(cell)
        if payload is not None:
            return payload, i
    return None, None


class TestHandshake:
    def test_both_sides_derive_same_key(self):
        rng_a, rng_b = random.Random(1), random.Random(2)
        a, b = dh_keypair(rng_a), dh_keypair(rng_b)
        assert dh_shared_key(a, b.public) == dh_shared_key(b, a.public)

    def test_different_sessions_different_keys(self):
        rng = random.Random(3)
        a1, b1 = dh_keypair(rng), dh_keypair(rng)
        a2, b2 = dh_keypair(rng), dh_keypair(rng)
        assert dh_shared_key(a1, b1.public) != dh_shared_key(a2, b2.public)

    def test_degenerate_public_rejected(self):
        a = dh_keypair(random.Random(4))
        with pytest.raises(ValueError):
            dh_shared_key(a, 1)
        with pytest.raises(ValueError):
            dh_shared_key(a, 0)

    def test_circuit_handshake_key_count(self):
        client, relays = build_circuit(hops=3)
        assert client.hops == 3
        assert len(relays) == 3


class TestOutboundOnion:
    def test_exit_and_only_exit_reads_payload(self):
        client, relays = build_circuit(seed=1)
        payload = b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"
        cell = client.encrypt_outbound(payload)
        got, at = relay_pipeline_outbound(relays, cell)
        assert got == payload
        assert at == 2  # the exit, not the guard or middle

    def test_intermediate_views_look_random(self):
        client, relays = build_circuit(seed=2)
        payload = b"A" * 64
        cell = client.encrypt_outbound(payload)
        assert payload not in cell  # guard sees ciphertext
        after_guard = relays[0].peel(cell)
        assert payload not in after_guard  # middle still sees ciphertext
        assert relays[0].recognise(after_guard) is None
        after_middle = relays[1].peel(after_guard)
        assert relays[1].recognise(after_middle) is None

    def test_multiple_cells_use_fresh_keystream(self):
        client, relays = build_circuit(seed=3)
        c1 = client.encrypt_outbound(b"same payload")
        c2 = client.encrypt_outbound(b"same payload")
        assert c1 != c2  # counter mode: no two identical cells
        p1, _ = relay_pipeline_outbound(relays, c1)
        p2, _ = relay_pipeline_outbound(relays, c2)
        assert p1 == p2 == b"same payload"

    def test_tampering_breaks_recognition(self):
        client, relays = build_circuit(seed=4)
        cell = bytearray(client.encrypt_outbound(b"secret payload with some length"))
        cell[20] ^= 0xFF  # a middle AS flips a bit
        got, _ = relay_pipeline_outbound(relays, bytes(cell))
        assert got is None

    def test_payload_size_limit(self):
        client, _ = build_circuit(seed=5)
        client.encrypt_outbound(b"x" * (CELL_PAYLOAD_BYTES - 8))
        with pytest.raises(ValueError):
            client.encrypt_outbound(b"x" * CELL_PAYLOAD_BYTES)


class TestInboundOnion:
    def test_client_recovers_exit_payload(self):
        client, relays = build_circuit(seed=6)
        payload = b"HTTP/1.1 200 OK\r\n\r\nhello"
        cell = relays[2].seal(payload)
        # each hop wraps on the way back: exit, middle, guard
        for relay in reversed(relays):
            cell = relay.wrap(cell)
        assert client.decrypt_inbound(cell) == payload

    def test_tampered_inbound_rejected(self):
        client, relays = build_circuit(seed=7)
        cell = relays[2].seal(b"data")
        for relay in reversed(relays):
            cell = relay.wrap(cell)
        cell = bytearray(cell)
        cell[5] ^= 1
        assert client.decrypt_inbound(bytes(cell)) is None

    def test_directions_are_independent(self):
        client, relays = build_circuit(seed=8)
        out = client.encrypt_outbound(b"up")
        got, _ = relay_pipeline_outbound(relays, out)
        assert got == b"up"
        cell = relays[2].seal(b"down")
        for relay in reversed(relays):
            cell = relay.wrap(cell)
        assert client.decrypt_inbound(cell) == b"down"


class TestValidation:
    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            RelayCrypto(b"short")
        with pytest.raises(ValueError):
            CircuitCrypto([b"short"])
        with pytest.raises(ValueError):
            CircuitCrypto([])

    def test_short_cells_handled(self):
        _client, relays = build_circuit(seed=9)
        assert relays[0].recognise(b"tiny") is None
        client, _ = build_circuit(seed=10, hops=1)
        assert client.decrypt_inbound(b"x") is None
