"""Smoke tests: every shipped example must run and succeed.

Examples are user-facing documentation; a broken one is a broken promise.
Each runs in a subprocess (as a user would run it) and is checked for a
zero exit and its key output markers.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")

CASES = {
    "quickstart.py": ["P(compromise", "captures", "corr["],
    "temporal_exposure.py": ["3 guards", "1 guard", "amplification"],
    "interception_attack.py": ["interception", "surveillance"],
    "asymmetric_attack.py": ["TRUE MATCH", "deanonymisation successful"],
    "countermeasures_eval.py": ["dynamics-aware", "detected = True"],
    "full_deanonymization.py": ["inferred guard", "SUCCEEDED"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs(name):
    stdout = run_example(name)
    for marker in CASES[name]:
        assert marker in stdout, f"{name}: expected {marker!r} in output"
