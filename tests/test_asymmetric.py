"""Tests for the asymmetric traffic-analysis correlator (§3.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.asymmetric import (
    FlowMatcher,
    correlate_captures,
    correlate_segments,
    pearson,
    spearman,
)
from repro.traffic.capture import PacketCapture
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_too_short(self):
        assert pearson([1], [1]) == 0.0

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=30))
    def test_self_correlation(self, xs):
        r = pearson(xs, xs)
        if max(xs) - min(xs) > 1e-6:  # enough spread that variance survives
            assert r == pytest.approx(1.0)
        else:
            assert r in (0.0, pytest.approx(1.0))

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=20),
        st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=20),
    )
    def test_bounded(self, xs, ys):
        n = min(len(xs), len(ys))
        r = pearson(xs[:n], ys[:n])
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        xs = [1, 2, 3, 4, 5]
        ys = [1, 8, 27, 64, 125]
        assert spearman(xs, ys) == pytest.approx(1.0)
        assert pearson(xs, ys) < 1.0

    def test_ties_handled(self):
        assert -1 <= spearman([1, 1, 2], [3, 3, 1]) <= 1


def make_capture(name, increments, bin_width=1.0):
    cap = PacketCapture(name)
    total = 0
    for i, inc in enumerate(increments):
        total += inc
        cap.observe_total((i + 1) * bin_width - 0.01, total)
    return cap


class TestCorrelateCaptures:
    def test_identical_flows_correlate(self):
        a = make_capture("a", [100, 300, 50, 500, 120])
        b = make_capture("b", [100, 300, 50, 500, 120])
        assert correlate_captures(a, b, 1.0) == pytest.approx(1.0)

    def test_different_flows_do_not(self):
        a = make_capture("a", [1000, 0, 0, 900, 0, 0])
        b = make_capture("b", [0, 0, 800, 0, 0, 850])
        assert correlate_captures(a, b, 1.0) < 0.2

    def test_spearman_method(self):
        a = make_capture("a", [1, 10, 100])
        b = make_capture("b", [2, 20, 200])
        assert correlate_captures(a, b, 1.0, method="spearman") == pytest.approx(1.0)

    def test_unknown_method(self):
        a = make_capture("a", [1])
        with pytest.raises(ValueError):
            correlate_captures(a, a, method="kendall")


class TestFlowMatcher:
    def test_identifies_the_right_flow_among_decoys(self):
        target = make_capture("target", [500, 0, 300, 0, 0, 800, 100])
        candidates = {
            "decoy1": make_capture("d1", [0, 400, 0, 0, 700, 0, 0]),
            "true": make_capture("t", [510, 0, 290, 0, 0, 805, 95]),
            "decoy2": make_capture("d2", [100, 100, 100, 100, 100, 100, 100]),
        }
        result = FlowMatcher(bin_width=1.0).match(target, candidates)
        assert result.best == "true"
        assert result.rank_of("true") == 1
        assert result.margin > 0.1

    def test_scores_sorted_descending(self):
        target = make_capture("t", [1, 2, 3, 4])
        cands = {f"c{i}": make_capture(f"c{i}", [i, 2, 3, 4]) for i in range(4)}
        result = FlowMatcher().match(target, cands)
        scores = [s for _n, s in result.scores]
        assert scores == sorted(scores, reverse=True)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            FlowMatcher().match(make_capture("t", [1]), {})

    def test_rank_of_unknown_raises(self):
        result = FlowMatcher().match(make_capture("t", [1, 2]), {"a": make_capture("a", [1, 2])})
        with pytest.raises(KeyError):
            result.rank_of("zzz")

    def test_bin_width_validation(self):
        with pytest.raises(ValueError):
            FlowMatcher(bin_width=0)


class TestEndToEnd:
    """§3.3 on the real circuit simulation: any direction pair works."""

    @pytest.fixture(scope="class")
    def transfer(self):
        writes = ((0.0, 300_000), (3.0, 700_000), (8.0, 500_000), (12.0, 500_000))
        return CircuitTransfer(
            TransferConfig(file_size=2_000_000, writes=writes)
        ).run()

    def test_all_four_direction_pairs_correlate(self, transfer):
        correlations = correlate_segments(transfer.taps, bin_width=1.0)
        assert len(correlations) == 4
        for pair, r in correlations.items():
            assert r > 0.6, f"{pair}: {r}"

    def test_ack_only_observation_suffices(self, transfer):
        """The extreme variant: ACK streams at BOTH ends still correlate."""
        r = correlate_captures(
            transfer.taps.exit_to_server, transfer.taps.client_to_guard, 1.0
        )
        assert r > 0.6
