"""Tests for the calibrated synthetic Tor consensus generator (§4 data)."""

import pytest

from repro.analysis.prefixes import PrefixTrie
from repro.analysis.stats import cumulative_share, quantile
from repro.tor.generator import ConsensusConfig, generate_consensus


@pytest.fixture(scope="module")
def network():
    hosts = list(range(1000, 1800))
    return generate_consensus(ConsensusConfig(scale=0.25, seed=4), hosts)


class TestCounts:
    def test_relay_totals_near_targets(self, network):
        c = network.consensus
        scale = 0.25
        assert len(c) == pytest.approx(4586 * scale, rel=0.1)
        assert len(c.guards()) == pytest.approx(1918 * scale, rel=0.15)
        assert len(c.exits()) == pytest.approx(891 * scale, rel=0.2)
        assert len(c.guard_and_exit()) == pytest.approx(442 * scale, rel=0.3)

    def test_prefix_and_as_counts(self, network):
        scale = 0.25
        assert len(network.tor_prefixes) == pytest.approx(1251 * scale, rel=0.1)
        hosting = set(network.prefix_origins.values())
        assert len(hosting) >= 650 * scale * 0.9

    def test_every_hosting_as_from_pool(self, network):
        assert set(network.prefix_origins.values()) <= set(range(1000, 1800))


class TestPrefixStructure:
    def test_prefixes_are_disjoint(self, network):
        prefixes = sorted(network.prefix_origins, key=lambda p: (p.network, p.length))
        for a, b in zip(prefixes, prefixes[1:]):
            assert not a.contains_prefix(b) and not b.contains_prefix(a), f"{a} overlaps {b}"

    def test_relay_addresses_inside_their_prefix(self, network):
        for relay in network.consensus.relays:
            prefix = network.relay_prefix[relay.fingerprint]
            assert prefix.contains_ip(relay.ip), f"{relay.address} not in {prefix}"

    def test_longest_prefix_match_recovers_mapping(self, network):
        """The generator's ground truth must agree with an actual LPM over
        the announced prefixes — the paper's pyasn-style pipeline."""
        trie = PrefixTrie({p: o for p, o in network.prefix_origins.items()})
        for relay in network.consensus.relays[:300]:
            match = trie.longest_match(relay.ip)
            assert match is not None
            assert match[0] == network.relay_prefix[relay.fingerprint]

    def test_relays_per_prefix_skew(self, network):
        counts = {}
        for relay in network.consensus.relays:
            if not (relay.is_guard or relay.is_exit):
                continue
            p = network.relay_prefix[relay.fingerprint]
            counts[p] = counts.get(p, 0) + 1
        values = list(counts.values())
        assert quantile(values, 0.5) == 1  # paper: median 1
        assert quantile(values, 0.75) <= 3  # paper: p75 = 2
        assert max(values) >= 0.25 * 33 * 0.7  # the giant /15

    def test_giant_prefix_is_slash15_with_middles(self, network):
        giant = max(network.tor_prefixes, key=lambda p: p.num_addresses)
        assert giant.length == 15
        relays = network.relays_in_prefix(giant)
        ge = [r for r in relays if r.is_guard or r.is_exit]
        middles = [r for r in relays if not (r.is_guard or r.is_exit)]
        assert len(ge) >= 5
        assert len(middles) >= 3


class TestConcentration:
    def test_top5_ases_host_about_20_percent(self, network):
        counts = network.guard_exit_relays_per_as()
        shares = cumulative_share(counts.values())
        top5 = shares[min(4, len(shares) - 1)]
        assert 0.10 < top5 < 0.35  # paper: 20%

    def test_as_names_cover_top_hosters(self, network):
        names = set(network.as_names.values())
        assert "HetznerOnline-sim" in names


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConsensusConfig(scale=0)
        with pytest.raises(ValueError):
            ConsensusConfig(dual_relays=1000, exit_relays=900, guard_relays=2000)
        with pytest.raises(ValueError):
            ConsensusConfig(total_relays=100)

    def test_needs_hosting_pool(self):
        with pytest.raises(ValueError):
            generate_consensus(ConsensusConfig(scale=0.1), [])

    def test_deterministic(self):
        hosts = list(range(50, 200))
        a = generate_consensus(ConsensusConfig(scale=0.05, seed=9), hosts)
        b = generate_consensus(ConsensusConfig(scale=0.05, seed=9), hosts)
        assert a.consensus.to_text() == b.consensus.to_text()
        assert a.prefix_origins == b.prefix_origins

    def test_small_pool_reuses_hosts(self):
        hosts = [7, 8, 9]
        net = generate_consensus(ConsensusConfig(scale=0.05, seed=2), hosts)
        assert set(net.prefix_origins.values()) <= {7, 8, 9}
