"""Tests for the end-to-end Tor circuit transfer simulation."""

import pytest

from repro.traffic.capture import PacketCapture
from repro.traffic.cells import CELL_PAYLOAD
from repro.traffic.circuitsim import CircuitTransfer, TransferConfig
from repro.traffic.tcp import TcpConfig


def run(size=1_000_000, **kw):
    return CircuitTransfer(TransferConfig(file_size=size, **kw)).run()


class TestCompletion:
    def test_delivers_whole_file(self):
        res = run(1_000_000)
        assert res.completed
        assert res.bytes_delivered == 1_000_000
        assert res.duration > 0

    def test_all_four_taps_see_full_transfer(self):
        res = run(1_000_000)
        for cap in res.taps.all():
            assert cap.total_bytes >= 1_000_000, cap.name
            # TCP overhead aside, nothing should inflate byte counts much
            assert cap.total_bytes <= 1.05 * 1_000_000, cap.name

    def test_cell_accounting(self):
        res = run(996_000)  # exactly 2000 cells
        assert res.cells_forwarded == 996_000 // CELL_PAYLOAD
        assert res.sendmes == res.cells_forwarded // 50

    def test_small_file(self):
        res = run(1000)
        assert res.completed
        assert res.bytes_delivered == 1000

    def test_single_cell(self):
        res = run(100)
        assert res.completed
        assert res.cells_forwarded == 1

    def test_throughput_property(self):
        res = run(2_000_000)
        assert res.throughput == pytest.approx(res.bytes_delivered / res.duration)


class TestBottlenecks:
    def test_relay_bandwidth_caps_throughput(self):
        slow = run(1_000_000, relay_rates=(200_000.0, 2_500_000.0))
        fast = run(1_000_000, relay_rates=(2_500_000.0, 2_500_000.0))
        assert slow.duration > fast.duration
        # cells carry 512B per 498B payload: effective cap ~ rate * 498/512
        assert slow.throughput <= 200_000.0

    def test_client_link_caps_throughput(self):
        res = run(
            1_000_000,
            client_tcp=TcpConfig(latency=0.02, rate=150_000.0, seed=2),
        )
        assert res.completed
        assert res.throughput <= 155_000.0

    def test_loss_on_server_side_still_completes(self):
        res = run(500_000, server_tcp=TcpConfig(latency=0.03, rate=6e6, loss_prob=0.02, seed=4))
        assert res.completed
        assert res.server_retransmissions > 0

    def test_loss_on_client_side_still_completes(self):
        res = run(500_000, client_tcp=TcpConfig(latency=0.02, rate=4e6, loss_prob=0.02, seed=5))
        assert res.completed
        assert res.client_retransmissions > 0


class TestWorkloads:
    def test_burst_schedule(self):
        writes = ((0.0, 200_000), (2.0, 300_000), (5.0, 500_000))
        res = CircuitTransfer(
            TransferConfig(file_size=1_000_000, writes=writes)
        ).run()
        assert res.completed
        assert res.duration > 5.0  # last burst can't arrive before written

    def test_writes_must_sum_to_file_size(self):
        with pytest.raises(ValueError):
            TransferConfig(file_size=100, writes=((0.0, 50),)).effective_writes()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransferConfig(file_size=0)
        with pytest.raises(ValueError):
            TransferConfig(relay_rates=(1.0,))
        with pytest.raises(ValueError):
            TransferConfig(relay_rates=(0.0, 1.0))


class TestFigure2RightShape:
    """The paper's observation: all four cumulative curves nearly coincide."""

    def test_curves_nearly_identical(self):
        res = run(3_000_000)
        caps = res.taps.all()
        # The curves can differ by at most the pipeline's in-flight
        # capacity: the stream window's worth of cells plus both TCP
        # receive buffers (a constant — invisible at the paper's 40 MB
        # scale, where the four curves visually coincide).
        cfg = TransferConfig(file_size=3_000_000)
        capacity = (
            cfg.stream_window * CELL_PAYLOAD
            + cfg.server_tcp.rcv_buffer
            + cfg.client_tcp.rcv_buffer
            + 10 * 1460
        )
        grid = [res.duration * i / 20 for i in range(1, 21)]
        for t in grid:
            values = [cap.cumulative_at(t) for cap in caps]
            spread = max(values) - min(values)
            assert spread <= capacity, f"at t={t:.1f}: {values}"

    def test_data_and_ack_totals_match_at_each_end(self):
        res = run(2_000_000)
        assert res.taps.server_to_exit.total_bytes == res.taps.exit_to_server.total_bytes
        assert res.taps.guard_to_client.total_bytes == res.taps.client_to_guard.total_bytes
