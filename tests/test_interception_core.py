"""Tests for attack planning against the Tor population (§3.2 pipeline)."""

import pytest

from repro.bgpsim.attacks import AttackKind
from repro.core.interception import AttackPlanner
from repro.tor.consensus import Position


@pytest.fixture(scope="module")
def planner(small_scenario):
    return AttackPlanner(small_scenario.graph, small_scenario.tor)


class TestTargetRanking:
    def test_rankings_sorted_by_weight(self, planner):
        ranking = planner.rank_targets(Position.GUARD)
        weights = [t.weight for t in ranking.targets]
        assert weights == sorted(weights, reverse=True)

    def test_selection_probabilities_sum_to_one(self, planner):
        for position in (Position.GUARD, Position.EXIT):
            ranking = planner.rank_targets(position)
            total = sum(t.selection_probability for t in ranking.targets)
            assert total == pytest.approx(1.0)

    def test_coverage_monotone_in_k(self, planner):
        ranking = planner.rank_targets(Position.GUARD)
        assert ranking.coverage(1) <= ranking.coverage(5) <= ranking.coverage(50) <= 1.0 + 1e-9

    def test_top_prefixes_concentrate_traffic(self, planner):
        """Bandwidth-proportional selection + skewed hosting: a handful of
        prefixes cover a large share — why interception is so cheap."""
        ranking = planner.rank_targets(Position.GUARD)
        uniform = 10 / len(ranking.targets)
        assert ranking.coverage(10) > 2.5 * uniform

    def test_targets_know_their_origin(self, planner, small_scenario):
        for target in planner.rank_targets(Position.EXIT).top(5):
            assert small_scenario.tor.prefix_origins[target.prefix] == target.origin_asn
            assert target.num_relays >= 1


class TestAttackOutcomes:
    def test_attack_reports_anonymity_set(self, planner, small_scenario):
        attacker = small_scenario.adversary_as()
        target = next(
            t for t in planner.rank_targets(Position.GUARD).targets
            if t.origin_asn != attacker
        )
        clients = small_scenario.client_ases(10)
        outcome = planner.attack(attacker, target, AttackKind.SAME_PREFIX, clients)
        assert outcome.exposed_client_ases <= set(clients)
        assert outcome.anonymity_set_fraction == pytest.approx(
            len(outcome.exposed_client_ases) / 10
        )

    def test_sweep_skips_self_hosted_targets(self, planner, small_scenario):
        attacker = small_scenario.adversary_as()
        outcomes = planner.sweep(attacker, Position.GUARD, 5)
        for outcome in outcomes:
            assert outcome.target.origin_asn != attacker

    def test_surveillance_coverage_structure(self, planner, small_scenario):
        attacker = small_scenario.adversary_as()
        coverage = planner.surveillance_coverage(attacker, guard_k=5, exit_k=5)
        assert set(coverage) == {"guard_coverage", "exit_coverage", "circuit_coverage"}
        assert 0 <= coverage["guard_coverage"] <= 1
        assert 0 <= coverage["exit_coverage"] <= 1
        assert coverage["circuit_coverage"] == pytest.approx(
            coverage["guard_coverage"] * coverage["exit_coverage"]
        )

    def test_more_specific_beats_interception_coverage(self, planner, small_scenario):
        """A more-specific hijack captures everything but is loud; the
        interception coverage can only be smaller or equal."""
        attacker = small_scenario.adversary_as()
        loud = planner.surveillance_coverage(
            attacker, 5, 5, kind=AttackKind.MORE_SPECIFIC
        )
        quiet = planner.surveillance_coverage(
            attacker, 5, 5, kind=AttackKind.INTERCEPTION
        )
        assert quiet["circuit_coverage"] <= loud["circuit_coverage"] + 1e-9
