"""Tests for the discrete-event loop."""

import pytest

from repro.traffic.eventloop import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(3.0, lambda: order.append("c"))
        assert loop.run() == 3
        assert order == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_insertion_order_breaks_ties(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append(1))
        loop.schedule(1.0, lambda: order.append(2))
        loop.run()
        assert order == [1, 2]

    def test_callbacks_can_schedule_more(self):
        loop = EventLoop()
        hits = []

        def recurse(n):
            hits.append(n)
            if n < 3:
                loop.schedule(1.0, lambda: recurse(n + 1))

        loop.schedule(0.0, lambda: recurse(0))
        loop.run()
        assert hits == [0, 1, 2, 3]
        assert loop.now == 3.0

    def test_run_until(self):
        loop = EventLoop()
        hits = []
        loop.schedule(1.0, lambda: hits.append(1))
        loop.schedule(5.0, lambda: hits.append(5))
        loop.run(until=2.0)
        assert hits == [1]
        assert loop.now == 2.0
        loop.run()
        assert hits == [1, 5]

    def test_cancel(self):
        loop = EventLoop()
        hits = []
        handle = loop.schedule(1.0, lambda: hits.append(1))
        loop.schedule(2.0, lambda: hits.append(2))
        loop.cancel(handle)
        loop.run()
        assert hits == [2]

    def test_schedule_at_absolute(self):
        loop = EventLoop()
        hits = []
        loop.schedule(1.0, lambda: loop.schedule_at(5.0, lambda: hits.append(loop.now)))
        loop.run()
        assert hits == [5.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)

    def test_max_events_backstop(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.001, forever)

        loop.schedule(0.0, forever)
        executed = loop.run(max_events=100)
        assert executed == 100

    def test_pending_counts_cancellations(self):
        loop = EventLoop()
        h = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending == 2
        loop.cancel(h)
        assert loop.pending == 1
