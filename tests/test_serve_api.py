"""Wire-protocol tests for the unified query API.

Round-trips every request/response dataclass through the JSON codec and
the JSONL frame layer (hypothesis: ``decode(encode(x)) == x`` exactly),
rejects malformed and oversized frames, and cross-checks the api module's
plain-string enums against the enums they mirror.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.api import (
    API_SCHEMA_VERSION,
    EXPOSURE_MODES,
    HIJACK_KINDS,
    BatchRequest,
    BatchResponse,
    ExposureQuery,
    ExposureResult,
    HijackQuery,
    HijackQueryResult,
    OutcomeBatch,
    PathBatch,
    PathQuery,
    PathResult,
    QueryError,
    WireError,
    decode,
    encode,
    query_key,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    encode_frame,
    response_error,
    response_ok,
)

# -- strategies ---------------------------------------------------------------

asns = st.integers(min_value=0, max_value=2**32)
asn_tuples = st.lists(asns, max_size=5).map(tuple)

path_queries = st.builds(PathQuery, src=asns, dst=asns)
exposure_queries = st.builds(
    ExposureQuery,
    client=asns,
    guard=asns,
    exit=asns,
    dest=asns,
    mode=st.sampled_from(EXPOSURE_MODES),
    adversaries=asn_tuples,
)
hijack_queries = st.builds(
    HijackQuery,
    victim=asns,
    attacker=asns,
    kind=st.sampled_from(HIJACK_KINDS),
    clients=asn_tuples,
)
queries = st.one_of(path_queries, exposure_queries, hijack_queries)

path_results = st.builds(
    PathResult,
    src=asns,
    dst=asns,
    path=st.none() | st.lists(asns, min_size=1, max_size=6).map(tuple),
)
exposure_results = st.builds(
    ExposureResult,
    query=exposure_queries,
    observers=asn_tuples,
    compromised=st.none() | st.booleans(),
)
hijack_results = st.builds(
    HijackQueryResult,
    query=hijack_queries,
    capture_set=asn_tuples,
    capture_fraction=st.floats(min_value=0.0, max_value=1.0),
    interception_feasible=st.booleans(),
    captured_clients=asn_tuples,
    victim_retained_clients=asn_tuples,
)
query_errors = st.builds(
    QueryError,
    kind=st.sampled_from(("ValueError", "TypeError", "WireError")),
    message=st.text(max_size=40),
)
results = st.one_of(path_results, exposure_results, hijack_results, query_errors)

request_ids = st.none() | st.text(max_size=12)
batch_requests = st.builds(
    BatchRequest, queries=st.lists(queries, max_size=4).map(tuple), id=request_ids
)
batch_responses = st.builds(
    BatchResponse, results=st.lists(results, max_size=4).map(tuple), id=request_ids
)

wire_objects = st.one_of(queries, results, batch_requests, batch_responses)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(wire_objects)
    def test_codec_round_trip_exact(self, obj):
        assert decode(encode(obj)) == obj

    @settings(max_examples=100, deadline=None)
    @given(wire_objects)
    def test_round_trip_through_jsonl_frames(self, obj):
        frame = encode_frame(encode(obj))
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1  # one frame, one line
        assert decode(decode_frame(frame)) == obj

    @settings(max_examples=100, deadline=None)
    @given(queries)
    def test_query_key_canonical(self, query):
        key = query_key(query)
        # Key-sorted, separator-canonical JSON: stable across round-trips.
        assert key == query_key(decode(encode(query)))
        assert json.dumps(
            json.loads(key), sort_keys=True, separators=(",", ":")
        ) == key

    def test_normalisation_makes_equivalent_queries_identical(self):
        a = HijackQuery(victim=1, attacker=2, clients=(9, 5, 5, 9))
        b = HijackQuery(victim=1, attacker=2, clients=(5, 9))
        assert a == b
        assert query_key(a) == query_key(b)


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(WireError, match="JSON object"):
            decode(42)

    def test_rejects_unknown_type(self):
        with pytest.raises(WireError, match="unknown wire type"):
            decode({"type": "teleport"})

    def test_rejects_missing_field(self):
        with pytest.raises(WireError, match="missing 'dst'"):
            decode({"type": "path", "src": 1})

    @pytest.mark.parametrize("bad", [-1, True, "7", 1.5, None])
    def test_rejects_non_asn(self, bad):
        with pytest.raises(WireError, match="non-negative integer"):
            decode({"type": "path", "src": bad, "dst": 2})

    def test_rejects_unknown_mode_and_kind(self):
        with pytest.raises(WireError, match="mode must be one of"):
            ExposureQuery(client=1, guard=2, exit=3, dest=4, mode="sideways")
        with pytest.raises(WireError, match="kind must be one of"):
            HijackQuery(victim=1, attacker=2, kind="rumour")

    def test_rejects_future_schema_version(self):
        doc = encode(PathResult(src=1, dst=2, path=(1, 2)))
        doc["schema_version"] = API_SCHEMA_VERSION + 1
        with pytest.raises(WireError, match="unsupported schema_version"):
            decode(doc)

    def test_batch_rejects_results_and_vice_versa(self):
        result_doc = encode(PathResult(src=1, dst=2))
        with pytest.raises(WireError, match="non-query"):
            decode({"type": "batch", "queries": [result_doc]})
        query_doc = encode(PathQuery(src=1, dst=2))
        with pytest.raises(WireError, match="non-result"):
            decode({"type": "batch_result", "results": [query_doc]})

    def test_encode_rejects_foreign_objects(self):
        with pytest.raises(WireError, match="no wire form"):
            encode(object())

    def test_in_process_batches_have_no_wire_form(self):
        with pytest.raises(WireError):
            encode(PathBatch.of([(1, 2)]))
        with pytest.raises(WireError):
            encode(OutcomeBatch.of([[1]]))


class TestFraming:
    def test_decode_rejects_oversized_frame(self):
        line = b"x" * (MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="cap") as excinfo:
            decode_frame(line)
        assert excinfo.value.fatal  # stream desynchronised: must close

    def test_encode_rejects_oversized_document(self):
        doc = {"blob": "y" * (MAX_FRAME_BYTES + 10)}
        with pytest.raises(FrameError, match="cap") as excinfo:
            encode_frame(doc)
        assert excinfo.value.fatal

    def test_rejects_invalid_utf8(self):
        with pytest.raises(FrameError, match="malformed") as excinfo:
            decode_frame(b"\xff\xfe{}\n")
        assert not excinfo.value.fatal  # line-synchronised: recoverable

    def test_rejects_invalid_json(self):
        with pytest.raises(FrameError, match="malformed"):
            decode_frame(b"{nope\n")

    def test_rejects_non_object_frame(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_frame(b"[1, 2]\n")

    def test_response_envelopes(self):
        ok = response_ok("ping", {"pong": True}, request_id=7)
        assert ok == {
            "ok": True,
            "op": "ping",
            "id": 7,
            "schema_version": API_SCHEMA_VERSION,
            "result": {"pong": True},
        }
        err = response_error("batch", "WireError", "bad frame", request_id=8)
        assert err["ok"] is False
        assert err["error"] == {"kind": "WireError", "message": "bad frame"}


class TestEnumCrossCheck:
    """The api module keeps mode/kind as plain strings to stay
    dependency-free; these pin them to the enums they mirror."""

    def test_exposure_modes_match_observation_mode(self):
        from repro.core.surveillance import ObservationMode

        assert EXPOSURE_MODES == tuple(m.value for m in ObservationMode)

    def test_hijack_kinds_match_attack_kind(self):
        from repro.bgpsim.attacks import AttackKind

        assert HIJACK_KINDS == tuple(k.value for k in AttackKind)
