"""Tests for the user-level anonymity metrics."""

import pytest

from repro.core.population import simulate_population
from repro.core.surveillance import ObservationMode
from repro.core.usermetrics import simulate_user_population


@pytest.fixture(scope="module")
def population(small_scenario):
    clients = small_scenario.client_ases(6)
    dests = small_scenario.destination_ases(4)
    adversaries = {0, small_scenario.adversary_as()}
    report = simulate_user_population(
        small_scenario.graph,
        small_scenario.consensus,
        small_scenario.relay_asn,
        clients,
        dests,
        adversaries,
        days=10,
        circuits_per_day=4,
        seed=5,
    )
    return small_scenario, clients, dests, adversaries, report


class TestPopulationReport:
    def test_every_client_reported(self, population):
        _sc, clients, _d, _a, report = population
        assert len(report.outcomes) == len(clients)
        assert {o.client_asn for o in report.outcomes} == set(clients)

    def test_counts_consistent(self, population):
        _sc, _c, _d, _a, report = population
        for outcome in report.outcomes:
            assert 0 <= outcome.compromised_circuits <= outcome.circuits_built
            if outcome.first_compromise_day is not None:
                assert 1 <= outcome.first_compromise_day <= report.days
                assert outcome.compromised_circuits > 0

    def test_survival_curve_monotone(self, population):
        _sc, _c, _d, _a, report = population
        curve = report.fraction_compromised_by_day()
        assert len(curve) == report.days
        assert all(a <= b for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(report.fraction_compromised)

    def test_rates_bounded(self, population):
        _sc, _c, _d, _a, report = population
        assert 0.0 <= report.fraction_compromised <= 1.0
        assert 0.0 <= report.mean_circuit_compromise_rate <= 1.0

    def test_median_defined_only_with_majority(self, population):
        _sc, _c, _d, _a, report = population
        median = report.median_days_to_compromise()
        if report.fraction_compromised >= 0.5:
            assert median is not None and 1 <= median <= report.days
        else:
            assert median is None


class TestModel:
    def test_either_mode_dominates_forward(self, small_scenario):
        clients = small_scenario.client_ases(4)
        dests = small_scenario.destination_ases(3)
        adversaries = {0, 1, small_scenario.adversary_as()}
        kwargs = dict(days=6, circuits_per_day=4, seed=9)
        fwd = simulate_user_population(
            small_scenario.graph, small_scenario.consensus, small_scenario.relay_asn,
            clients, dests, adversaries, mode=ObservationMode.FORWARD, **kwargs
        )
        either = simulate_user_population(
            small_scenario.graph, small_scenario.consensus, small_scenario.relay_asn,
            clients, dests, adversaries, mode=ObservationMode.EITHER, **kwargs
        )
        assert either.mean_circuit_compromise_rate >= fwd.mean_circuit_compromise_rate

    def test_bigger_adversary_is_worse(self, small_scenario):
        clients = small_scenario.client_ases(4)
        dests = small_scenario.destination_ases(3)
        kwargs = dict(days=6, circuits_per_day=4, seed=9)
        small = simulate_user_population(
            small_scenario.graph, small_scenario.consensus, small_scenario.relay_asn,
            clients, dests, {0}, **kwargs
        )
        tier1s = set(small_scenario.graph.tier1_ases())
        big = simulate_user_population(
            small_scenario.graph, small_scenario.consensus, small_scenario.relay_asn,
            clients, dests, tier1s, **kwargs
        )
        assert big.fraction_compromised >= small.fraction_compromised

    def test_wrapper_is_reference_path_for_kernel(self, population):
        """``simulate_user_population`` must be bit-identical to a direct
        kernel call with the same arguments — it IS the reference path."""
        sc, clients, dests, adversaries, report = population
        direct = simulate_population(
            sc.graph,
            sc.consensus,
            sc.relay_asn,
            clients,
            dests,
            adversaries,
            days=10,
            circuits_per_day=4,
            seed=5,
            keep_outcomes=True,
        )
        assert direct.outcomes == report.outcomes
        assert direct.aggregate == report.aggregate

    def test_validation(self, small_scenario):
        clients = small_scenario.client_ases(2)
        with pytest.raises(ValueError):
            simulate_user_population(
                small_scenario.graph, small_scenario.consensus,
                small_scenario.relay_asn, clients, [1], set(), days=1
            )
        with pytest.raises(ValueError):
            simulate_user_population(
                small_scenario.graph, small_scenario.consensus,
                small_scenario.relay_asn, [], [1], {0}, days=1
            )
        with pytest.raises(ValueError):
            simulate_user_population(
                small_scenario.graph, small_scenario.consensus,
                small_scenario.relay_asn, clients, [1], {0}, days=0
            )
