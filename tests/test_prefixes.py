"""Unit tests for IPv4 prefixes and the longest-prefix-match trie."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.prefixes import (
    Prefix,
    PrefixTrie,
    format_ip,
    map_relays_to_prefixes,
    parse_ip,
)


class TestParseFormat:
    def test_parse_roundtrip(self):
        for text in ("0.0.0.0", "255.255.255.255", "78.46.0.1", "10.0.0.1"):
            assert format_ip(parse_ip(text)) == text

    def test_parse_known_value(self):
        assert parse_ip("1.2.3.4") == (1 << 24) | (2 << 16) | (3 << 8) | 4

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d", ""])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(1 << 32)
        with pytest.raises(ValueError):
            format_ip(-1)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert parse_ip(format_ip(value)) == value


class TestPrefix:
    def test_parse_and_str(self):
        p = Prefix.parse("78.46.0.0/15")
        assert str(p) == "78.46.0.0/15"
        assert p.length == 15

    def test_normalises_host_bits(self):
        a = Prefix.parse("10.1.2.3/24")
        b = Prefix.parse("10.1.2.0/24")
        assert a == b

    def test_mask_and_size(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.mask == 0xFFFFFF00
        assert p.num_addresses == 256
        assert Prefix.parse("0.0.0.0/0").num_addresses == 1 << 32

    def test_contains_ip(self):
        p = Prefix.parse("78.46.0.0/15")
        assert p.contains_ip(parse_ip("78.46.0.1"))
        assert p.contains_ip(parse_ip("78.47.255.255"))
        assert not p.contains_ip(parse_ip("78.48.0.0"))

    def test_contains_prefix(self):
        parent = Prefix.parse("10.0.0.0/8")
        child = Prefix.parse("10.5.0.0/16")
        assert parent.contains_prefix(child)
        assert not child.contains_prefix(parent)
        assert parent.contains_prefix(parent)

    def test_subprefix(self):
        p = Prefix.parse("10.0.0.0/16")
        assert p.subprefix(17, 0) == Prefix.parse("10.0.0.0/17")
        assert p.subprefix(17, 1) == Prefix.parse("10.0.128.0/17")
        with pytest.raises(ValueError):
            p.subprefix(15)
        with pytest.raises(ValueError):
            p.subprefix(17, 2)

    def test_nth_ip(self):
        p = Prefix.parse("10.0.0.0/30")
        assert format_ip(p.nth_ip(0)) == "10.0.0.0"
        assert format_ip(p.nth_ip(3)) == "10.0.0.3"
        with pytest.raises(ValueError):
            p.nth_ip(4)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/-1")

    def test_ordering_is_total(self):
        prefixes = [Prefix.parse(s) for s in ("10.0.0.0/8", "9.0.0.0/8", "10.0.0.0/16")]
        assert sorted(prefixes) == sorted(prefixes, key=lambda p: (p.network, p.length))


class TestPrefixTrie:
    def test_insert_get_remove(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "ten")
        assert len(trie) == 1
        assert p in trie
        assert trie.get(p) == "ten"
        assert trie.remove(p)
        assert p not in trie
        assert not trie.remove(p)
        assert len(trie) == 0

    def test_get_default(self):
        trie = PrefixTrie()
        assert trie.get(Prefix.parse("10.0.0.0/8"), default="missing") == "missing"

    def test_insert_replaces(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, 1)
        trie.insert(p, 2)
        assert trie.get(p) == 2
        assert len(trie) == 1

    def test_longest_match_prefers_most_specific(self):
        trie = PrefixTrie(
            {
                Prefix.parse("10.0.0.0/8"): "short",
                Prefix.parse("10.1.0.0/16"): "mid",
                Prefix.parse("10.1.2.0/24"): "long",
            }
        )
        match = trie.longest_match(parse_ip("10.1.2.3"))
        assert match is not None
        prefix, value = match
        assert value == "long"
        assert prefix == Prefix.parse("10.1.2.0/24")
        prefix, value = trie.longest_match(parse_ip("10.1.9.9"))
        assert value == "mid"
        prefix, value = trie.longest_match(parse_ip("10.9.9.9"))
        assert value == "short"

    def test_longest_match_miss(self):
        trie = PrefixTrie({Prefix.parse("10.0.0.0/8"): 1})
        assert trie.longest_match(parse_ip("11.0.0.1")) is None

    def test_default_route_matches_everything(self):
        trie = PrefixTrie({Prefix.parse("0.0.0.0/0"): "default"})
        assert trie.longest_match(parse_ip("200.1.2.3"))[1] == "default"

    def test_covering_prefixes_order(self):
        trie = PrefixTrie(
            {
                Prefix.parse("10.0.0.0/8"): 8,
                Prefix.parse("10.1.0.0/16"): 16,
                Prefix.parse("10.1.2.0/24"): 24,
            }
        )
        covering = trie.covering_prefixes(parse_ip("10.1.2.3"))
        assert [v for _p, v in covering] == [8, 16, 24]

    def test_items_roundtrip(self):
        mapping = {
            Prefix.parse("10.0.0.0/8"): 1,
            Prefix.parse("10.128.0.0/9"): 2,
            Prefix.parse("192.168.0.0/16"): 3,
        }
        trie = PrefixTrie(mapping)
        assert dict(trie.items()) == mapping

    @given(
        st.dictionaries(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 32) - 1),
                st.integers(min_value=1, max_value=32),
            ).map(lambda t: Prefix(t[0], t[1])),
            st.integers(),
            max_size=40,
        ),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_longest_match_agrees_with_linear_scan(self, mapping, ip):
        trie = PrefixTrie(mapping)
        expected = None
        for prefix, value in mapping.items():
            if prefix.contains_ip(ip):
                if expected is None or prefix.length > expected[0].length:
                    expected = (prefix, value)
        got = trie.longest_match(ip)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got[0] == expected[0]
            # equal-length duplicates collapse in a dict, so values match too
            assert got[1] == expected[1]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 32) - 1),
                st.integers(min_value=0, max_value=32),
            ).map(lambda t: Prefix(t[0], t[1])),
            max_size=30,
        )
    )
    def test_size_tracks_distinct_prefixes(self, prefixes):
        trie = PrefixTrie()
        for p in prefixes:
            trie.insert(p)
        assert len(trie) == len(set(prefixes))


class TestRelayMapping:
    def test_maps_to_most_specific(self):
        announced = {
            Prefix.parse("78.46.0.0/15"): 100,
            Prefix.parse("78.46.1.0/24"): 200,
        }
        result = map_relays_to_prefixes(
            [("A", "78.46.1.5"), ("B", "78.47.0.1"), ("C", "9.9.9.9")], announced
        )
        assert result["A"] == (Prefix.parse("78.46.1.0/24"), 200)
        assert result["B"] == (Prefix.parse("78.46.0.0/15"), 100)
        assert "C" not in result  # uncovered relays dropped, as in the paper
