"""Property-based round-trip tests for every serialization format."""

import io
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.prefixes import Prefix
from repro.bgpsim.collector import UpdateRecord, UpdateStream
from repro.bgpsim.mrt import dumps_stream, iter_records, loads_stream, write_records
from repro.tor.exitpolicy import ExitPolicy, PolicyRule

_prefixes = st.builds(
    Prefix,
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)

_paths = st.lists(
    st.integers(min_value=1, max_value=70_000), min_size=1, max_size=6, unique=True
).map(tuple)

_records = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        _prefixes,
        st.one_of(st.none(), _paths),
        st.booleans(),
    ),
    max_size=30,
)


class TestMrtRoundTripProperty:
    @settings(deadline=None, max_examples=40)
    @given(_records)
    def test_any_stream_roundtrips(self, raw):
        records = [
            UpdateRecord(t, p, path, from_reset=reset and path is not None)
            for t, p, path, reset in sorted(raw, key=lambda r: r[0])
        ]
        stream = UpdateStream(("rrc00", 7), records)
        with pytest.warns(DeprecationWarning):
            parsed = loads_stream(dumps_stream(stream))
        assert parsed.session == stream.session
        assert len(parsed) == len(stream)
        for a, b in zip(parsed, stream):
            assert a.prefix == b.prefix
            assert a.as_path == b.as_path
            assert a.from_reset == b.from_reset
            assert a.time == pytest.approx(b.time, abs=1e-3)  # %.3f precision

    @settings(deadline=None, max_examples=40)
    @given(_records)
    def test_streaming_codec_roundtrips(self, raw):
        """iter_records(write_records(x)) == x for any record sequence."""
        records = [
            UpdateRecord(t, p, path, from_reset=reset and path is not None)
            for t, p, path, reset in sorted(raw, key=lambda r: r[0])
        ]
        buffer = io.StringIO()
        assert write_records(buffer, ("rrc00", 7), iter(records)) == len(records)
        buffer.seek(0)
        source = iter_records(buffer)
        assert source.session == ("rrc00", 7)
        parsed = list(source)
        assert len(parsed) == len(records)
        for a, b in zip(parsed, records):
            assert a.prefix == b.prefix
            assert a.as_path == b.as_path
            assert a.from_reset == b.from_reset
            assert a.time == pytest.approx(b.time, abs=1e-3)  # %.3f precision


_rule_tuples = st.tuples(
    st.booleans(),
    st.one_of(st.none(), _prefixes),
    st.integers(min_value=1, max_value=65535),
    st.integers(min_value=1, max_value=65535),
)


def _make_rules(raw_rules):
    return [
        PolicyRule(accept, prefix, min(lo, hi), max(lo, hi))
        for accept, prefix, lo, hi in raw_rules
    ]


class TestExitPolicyProperties:
    @settings(deadline=None, max_examples=60)
    @given(st.lists(_rule_tuples, min_size=1, max_size=8))
    def test_rule_roundtrip(self, raw_rules):
        policy = ExitPolicy(_make_rules(raw_rules))
        reparsed = ExitPolicy.parse(str(policy))
        assert reparsed == policy

    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(_rule_tuples, min_size=1, max_size=6),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=1, max_value=65535),
    )
    def test_first_match_semantics(self, raw_rules, ip, port):
        rules = _make_rules(raw_rules)
        policy = ExitPolicy(rules)
        expected = False
        for rule in rules:
            if rule.matches(ip, port):
                expected = rule.accept
                break
        assert policy.allows(ip, port) is expected


class TestOnionProperties:
    @settings(deadline=None, max_examples=15)
    @given(
        st.binary(min_size=0, max_size=200),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=1000),
    )
    def test_outbound_roundtrip_any_payload(self, payload, hops, seed):
        from repro.tor.onion import circuit_handshake

        client, relays = circuit_handshake(
            random.Random(seed), [random.Random(seed + i + 1) for i in range(hops)]
        )
        cell = client.encrypt_outbound(payload)
        for i, relay in enumerate(relays):
            cell = relay.peel(cell)
            got = relay.recognise(cell)
            if i < len(relays) - 1:
                assert got is None
            else:
                assert got == payload

    @settings(deadline=None, max_examples=15)
    @given(st.binary(min_size=1, max_size=200), st.integers(min_value=0, max_value=500))
    def test_inbound_roundtrip_any_payload(self, payload, seed):
        from repro.tor.onion import circuit_handshake

        client, relays = circuit_handshake(
            random.Random(seed), [random.Random(seed + i + 9) for i in range(3)]
        )
        cell = relays[-1].seal(payload)
        for relay in reversed(relays):
            cell = relay.wrap(cell)
        assert client.decrypt_inbound(cell) == payload


class TestScenarioIxps:
    def test_deterministic_per_scenario(self, small_scenario):
        a = small_scenario.ixps(num_ixps=5)
        b = small_scenario.ixps(num_ixps=5)
        assert [(x.name, x.links) for x in a.ixps] == [(y.name, y.links) for y in b.ixps]
