"""Tests for relays, the consensus document, and bandwidth weights."""

import pytest
from hypothesis import given, strategies as st

from repro.tor.consensus import BandwidthWeights, Consensus, Position
from repro.tor.relay import Flag, Relay


def relay(fp, flags=(), bw=1000, address="10.0.0.1", family=()):
    return Relay(
        fingerprint=fp,
        nickname=f"nick{fp}",
        address=address,
        or_port=9001,
        bandwidth=bw,
        flags=frozenset(set(flags) | {Flag.RUNNING, Flag.VALID}),
        family=frozenset(family),
    )


class TestRelay:
    def test_flag_predicates(self):
        g = relay("G", {Flag.GUARD})
        e = relay("E", {Flag.EXIT})
        d = relay("D", {Flag.GUARD, Flag.EXIT})
        m = relay("M")
        assert g.is_guard and not g.is_exit
        assert e.is_exit and not e.is_guard
        assert d.is_guard_and_exit
        assert not m.is_guard and not m.is_exit

    def test_badexit_disqualifies(self):
        r = relay("X", {Flag.EXIT, Flag.BADEXIT})
        assert not r.is_exit

    def test_slash16(self):
        assert relay("A", address="78.46.12.5").slash16 == relay("B", address="78.46.200.1").slash16
        assert relay("A", address="78.46.0.1").slash16 != relay("B", address="78.47.0.1").slash16

    def test_family_mutual(self):
        a = relay("A", family={"B"})
        b = relay("B")
        assert a.in_same_family(b)
        assert b.in_same_family(a)  # one-sided declarations still count
        assert not relay("C").in_same_family(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            relay("A", bw=-1)
        with pytest.raises(ValueError):
            Relay("", "n", "10.0.0.1", 9001, 10)
        with pytest.raises(ValueError):
            Relay("F", "n", "10.0.0.1", 0, 10)
        with pytest.raises(ValueError):
            Relay("F", "n", "not-an-ip", 9001, 10)

    def test_flag_from_name(self):
        assert Flag.from_name("Guard") is Flag.GUARD
        with pytest.raises(ValueError):
            Flag.from_name("Bogus")


class TestBandwidthWeights:
    def test_plentiful_case_balances(self):
        w = BandwidthWeights.compute(G=300, M=300, E=300, D=0)
        # each position should get about a third of the network
        assert w.Wgg == pytest.approx(1.0)
        assert w.Wee == pytest.approx(1.0)
        assert w.Wmm == 1.0

    def test_both_scarce_dedicates_classes(self):
        w = BandwidthWeights.compute(G=100, M=700, E=100, D=100)
        assert w.Wgg == 1.0
        assert w.Wee == 1.0
        assert w.Wmg == 0.0 and w.Wme == 0.0
        assert w.Wgd + w.Wed == pytest.approx(1.0)

    def test_exit_scarce_dedicates_duals_to_exit(self):
        w = BandwidthWeights.compute(G=400, M=400, E=100, D=50)
        assert w.Wed == 1.0
        assert w.Wee == 1.0
        assert w.Wgd == 0.0

    def test_guard_scarce_dedicates_duals_to_guard(self):
        w = BandwidthWeights.compute(G=100, M=400, E=400, D=50)
        assert w.Wgd == 1.0
        assert w.Wgg == 1.0
        assert w.Wed == 0.0

    def test_rejects_bad_totals(self):
        with pytest.raises(ValueError):
            BandwidthWeights.compute(G=-1, M=1, E=1, D=1)
        with pytest.raises(ValueError):
            BandwidthWeights.compute(G=0, M=0, E=0, D=0)

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=1, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
    )
    def test_all_weights_are_probabilities(self, G, M, E, D):
        w = BandwidthWeights.compute(G=G, M=M, E=E, D=D)
        for name in ("Wgg", "Wgd", "Wmg", "Wmm", "Wme", "Wmd", "Wee", "Wed"):
            assert 0.0 <= getattr(w, name) <= 1.0

    def test_weight_lookup_by_position(self):
        w = BandwidthWeights(Wgg=0.8, Wgd=0.3, Wmg=0.2, Wmm=1.0, Wme=0.1, Wmd=0.4, Wee=0.9, Wed=0.7)
        g = relay("G", {Flag.GUARD})
        d = relay("D", {Flag.GUARD, Flag.EXIT})
        e = relay("E", {Flag.EXIT})
        m = relay("M")
        assert w.weight(g, Position.GUARD) == 0.8
        assert w.weight(d, Position.GUARD) == 0.3
        assert w.weight(e, Position.GUARD) == 0.0
        assert w.weight(d, Position.EXIT) == 0.7
        assert w.weight(m, Position.MIDDLE) == 1.0
        assert w.weight(g, Position.MIDDLE) == 0.2
        with pytest.raises(ValueError):
            w.weight(g, "nonsense")


class TestConsensus:
    def build(self):
        return Consensus(
            [
                relay("G1", {Flag.GUARD}, bw=100, address="10.0.0.1"),
                relay("G2", {Flag.GUARD}, bw=300, address="10.1.0.1"),
                relay("E1", {Flag.EXIT}, bw=200, address="10.2.0.1"),
                relay("D1", {Flag.GUARD, Flag.EXIT}, bw=150, address="10.3.0.1"),
                relay("M1", (), bw=500, address="10.4.0.1", family={"M2"}),
                relay("M2", (), bw=50, address="10.5.0.1"),
            ]
        )

    def test_queries(self):
        c = self.build()
        assert len(c) == 6
        assert {r.fingerprint for r in c.guards()} == {"G1", "G2", "D1"}
        assert {r.fingerprint for r in c.exits()} == {"E1", "D1"}
        assert {r.fingerprint for r in c.guard_and_exit()} == {"D1"}
        assert c.relay("G1").bandwidth == 100
        assert "G1" in c and "ZZ" not in c
        assert c.total_bandwidth() == 1300

    def test_duplicate_fingerprints_rejected(self):
        with pytest.raises(ValueError):
            Consensus([relay("A"), relay("A")])

    def test_position_weight_zero_for_wrong_position(self):
        c = self.build()
        assert c.position_weight(c.relay("M1"), Position.GUARD) == 0.0
        assert c.position_weight(c.relay("G1"), Position.EXIT) == 0.0
        assert c.position_weight(c.relay("G1"), Position.GUARD) > 0.0

    def test_text_roundtrip(self):
        c = self.build()
        text = c.to_text()
        c2 = Consensus.from_text(text)
        assert len(c2) == len(c)
        for r in c.relays:
            r2 = c2.relay(r.fingerprint)
            assert (r2.nickname, r2.address, r2.or_port, r2.bandwidth) == (
                r.nickname,
                r.address,
                r.or_port,
                r.bandwidth,
            )
            assert r2.flags == r.flags
            assert r2.family == r.family
        for name in ("Wgg", "Wgd", "Wee", "Wed"):
            assert getattr(c2.weights, name) == pytest.approx(
                getattr(c.weights, name), abs=1e-4
            )

    def test_from_text_errors(self):
        with pytest.raises(ValueError):
            Consensus.from_text("r too few fields\n")
        with pytest.raises(ValueError):
            Consensus.from_text("s Guard\n")  # flags before any relay
        with pytest.raises(ValueError):
            Consensus.from_text("bogus line here\n")
