"""Tests for the max-min fluid bandwidth-sharing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic.fluid import FluidNetwork, max_min_rates


class TestMaxMinRates:
    def test_single_circuit_gets_bottleneck(self):
        rates = max_min_rates({"c": ["g", "m", "e"]}, {"g": 10, "m": 5, "e": 20})
        assert rates["c"] == 5

    def test_equal_split_at_shared_relay(self):
        rates = max_min_rates(
            {"a": ["r"], "b": ["r"]},
            {"r": 10},
        )
        assert rates["a"] == rates["b"] == 5

    def test_max_min_not_just_equal_split(self):
        """Classic example: one circuit bottlenecked elsewhere frees
        capacity for the other."""
        rates = max_min_rates(
            {"a": ["r", "slow"], "b": ["r"]},
            {"r": 10, "slow": 2},
        )
        assert rates["a"] == 2
        assert rates["b"] == 8

    def test_three_way_progressive_fill(self):
        rates = max_min_rates(
            {"a": ["x"], "b": ["x", "y"], "c": ["y"]},
            {"x": 6, "y": 10},
        )
        # x splits 3/3; b frozen at 3, then c gets remaining y: 7
        assert rates["a"] == 3
        assert rates["b"] == 3
        assert rates["c"] == 7

    def test_capacity_conservation(self):
        circuits = {"a": ["x"], "b": ["x", "y"], "c": ["y"], "d": ["x", "y"]}
        caps = {"x": 9.0, "y": 12.0}
        rates = max_min_rates(circuits, caps)
        for relay, cap in caps.items():
            load = sum(r for cid, r in rates.items() if relay in circuits[cid])
            assert load <= cap + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            max_min_rates({"a": []}, {})
        with pytest.raises(ValueError):
            max_min_rates({"a": ["x"]}, {})
        with pytest.raises(ValueError):
            max_min_rates({"a": ["x"]}, {"x": 0})

    @settings(deadline=None, max_examples=30)
    @given(
        st.dictionaries(
            st.sampled_from(["c1", "c2", "c3", "c4", "c5"]),
            st.lists(st.sampled_from(["r1", "r2", "r3"]), min_size=1, max_size=3),
            min_size=1,
        ),
        st.fixed_dictionaries(
            {
                "r1": st.floats(min_value=1, max_value=100),
                "r2": st.floats(min_value=1, max_value=100),
                "r3": st.floats(min_value=1, max_value=100),
            }
        ),
    )
    def test_feasibility_and_positivity(self, circuits, caps):
        rates = max_min_rates(circuits, caps)
        assert set(rates) == set(circuits)
        for rate in rates.values():
            assert rate > 0
        for relay, cap in caps.items():
            load = sum(
                rate for cid, rate in rates.items() if relay in set(circuits[cid])
            )
            assert load <= cap + 1e-6


class TestFluidNetwork:
    def test_add_remove(self):
        net = FluidNetwork({"r": 10})
        net.add_circuit("a", ["r"])
        assert net.rate_of("a") == 10
        net.add_circuit("b", ["r"])
        assert net.rate_of("a") == 5
        net.remove_circuit("b")
        assert net.rate_of("a") == 10

    def test_duplicate_and_unknown(self):
        net = FluidNetwork({"r": 10})
        net.add_circuit("a", ["r"])
        with pytest.raises(ValueError):
            net.add_circuit("a", ["r"])
        with pytest.raises(ValueError):
            net.add_circuit("b", ["zzz"])
        with pytest.raises(KeyError):
            net.remove_circuit("zzz")
        with pytest.raises(KeyError):
            net.rate_of("zzz")

    def test_empty_network(self):
        assert FluidNetwork({"r": 10}).rates() == {}
